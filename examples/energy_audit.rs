//! Where does the battery actually go?  Per-mode energy breakdown for all
//! four protocols on the same scenario — the decomposition behind the
//! paper's Fig. 5.
//!
//! ```sh
//! cargo run --release --example energy_audit
//! ```

use ecgrid_suite::manet::{EnergyAudit, NodeId};
use ecgrid_suite::runner::{ProtocolKind, Scenario};

fn main() {
    println!("== energy audit: 60 hosts, 1 m/s, 5 flows, 400 s ==\n");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>10} {:>11}",
        "proto", "tx J", "rx J", "idle J", "sleep J", "ack J", "awake s", "consumed J"
    );

    for p in ProtocolKind::ALL_EXT {
        let sc = Scenario {
            protocol: p,
            n_hosts: 60,
            max_speed: 1.0,
            pause_secs: 0.0,
            n_flows: 5,
            flow_rate_pps: 1.0,
            duration_secs: 400.0,
            seed: 77,
            model1_endpoints: 5,
        };
        // run_scenario returns aggregated metrics only; build the world by
        // hand for per-node audits — the runner's internals are public for
        // exactly this kind of analysis
        let audit = audit_run(&sc);
        println!(
            "{:>8} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} | {:>10.0} {:>11.1}",
            p.name(),
            audit.tx_j,
            audit.rx_j,
            audit.idle_j,
            audit.sleep_j,
            audit.direct_j,
            audit.awake_secs(),
            audit.total_j(),
        );
    }

    println!("\nreading: GRID's budget is almost pure idle listening; the");
    println!("energy-aware protocols convert most of it into sleep time.");
    println!("rx energy is overhearing — every awake host pays for every");
    println!("frame in range, which is why HELLO beacons show up here.");
}

/// Run one scenario and sum the finite-battery hosts' audits.
fn audit_run(sc: &Scenario) -> EnergyAudit {
    use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
    use ecgrid_suite::gaf::{GafConfig, GafProto};
    use ecgrid_suite::grid_routing::{GridConfig, GridProto};
    use ecgrid_suite::manet::{
        Battery, FlowSet, FlowSpec, HostSetup, PowerProfile, SimTime, World, WorldConfig,
    };
    use ecgrid_suite::mobility::{MobilityModel, RandomWaypoint};
    use ecgrid_suite::sim_engine::{RngFactory, SimDuration};
    use ecgrid_suite::span::{SpanConfig, SpanProto};

    let end = SimTime::from_secs_f64(sc.duration_secs);
    let horizon = end + SimDuration::from_secs(10);
    let rngs = RngFactory::new(sc.seed);
    let model = RandomWaypoint::paper(sc.max_speed, sc.pause_secs);
    let model2 = matches!(sc.protocol, ProtocolKind::Grid | ProtocolKind::Ecgrid);
    let total = if model2 {
        sc.n_hosts
    } else {
        sc.n_hosts + sc.model1_endpoints
    };
    let profile = if sc.protocol == ProtocolKind::Span {
        PowerProfile::paper_no_gps()
    } else {
        PowerProfile::paper_default()
    };
    let hosts: Vec<HostSetup> = (0..total)
        .map(|i| HostSetup {
            profile,
            battery: if i < sc.n_hosts {
                Battery::paper_default()
            } else {
                Battery::infinite()
            },
            ..HostSetup::paper(model.build_trace(&mut rngs.stream("mobility", i as u64), horizon))
        })
        .collect();
    let endpoints: Vec<NodeId> = if model2 {
        (0..sc.n_hosts as u32).map(NodeId).collect()
    } else {
        (sc.n_hosts as u32..total as u32).map(NodeId).collect()
    };
    let spec = FlowSpec {
        n_flows: sc.n_flows,
        packet_bytes: 512,
        rate_pps: sc.flow_rate_pps,
        start: SimTime::from_secs(5),
        stop: end,
        stagger: true,
    };
    let flows = FlowSet::random(&mut rngs.stream("traffic", 0), &endpoints, &spec);
    let cfg = WorldConfig::paper_default(sc.seed);
    let n = sc.n_hosts;

    let audits: Vec<EnergyAudit> = match sc.protocol {
        ProtocolKind::Grid => {
            let mut w = World::new(cfg, hosts, flows, |id| GridProto::new(GridConfig::default(), id));
            w.run_until(end);
            (0..n as u32).map(|i| w.node_energy_audit(NodeId(i))).collect()
        }
        ProtocolKind::Ecgrid => {
            let mut w = World::new(cfg, hosts, flows, |id| Ecgrid::new(EcgridConfig::default(), id));
            w.run_until(end);
            (0..n as u32).map(|i| w.node_energy_audit(NodeId(i))).collect()
        }
        ProtocolKind::Gaf => {
            let mut w = World::new(cfg, hosts, flows, move |id| {
                if id.index() < n {
                    GafProto::new(GafConfig::default(), id)
                } else {
                    GafProto::endpoint(GafConfig::default(), id)
                }
            });
            w.run_until(end);
            (0..n as u32).map(|i| w.node_energy_audit(NodeId(i))).collect()
        }
        ProtocolKind::Span => {
            let mut w = World::new(cfg, hosts, flows, move |id| {
                if id.index() < n {
                    SpanProto::new(SpanConfig::default(), id)
                } else {
                    SpanProto::endpoint(SpanConfig::default(), id)
                }
            });
            w.run_until(end);
            (0..n as u32).map(|i| w.node_energy_audit(NodeId(i))).collect()
        }
    };

    let mut sum = EnergyAudit::default();
    let count = audits.len() as f64;
    for a in audits {
        sum.tx_secs += a.tx_secs;
        sum.rx_secs += a.rx_secs;
        sum.idle_secs += a.idle_secs;
        sum.sleep_secs += a.sleep_secs;
        sum.tx_j += a.tx_j;
        sum.rx_j += a.rx_j;
        sum.idle_j += a.idle_j;
        sum.sleep_j += a.sleep_j;
        sum.direct_j += a.direct_j;
    }
    // report the per-host mean
    sum.tx_secs /= count;
    sum.rx_secs /= count;
    sum.idle_secs /= count;
    sum.sleep_secs /= count;
    sum.tx_j /= count;
    sum.rx_j /= count;
    sum.idle_j /= count;
    sum.sleep_j /= count;
    sum.direct_j /= count;
    sum
}
