//! A motivating scenario from the paper's introduction: an ad hoc network
//! deployed where infrastructure is gone (disaster relief).  Rescue teams
//! roam a 1 km² zone; command posts exchange status traffic.  We compare
//! how long each protocol keeps the network alive and how well it
//! delivers.
//!
//! ```sh
//! cargo run --release --example disaster_relief
//! ```

use ecgrid_suite::runner::{run_scenario, ProtocolKind, Scenario};

fn main() {
    println!("== disaster-relief comparison: GRID vs ECGRID vs GAF ==");
    println!("60 rescue-team hosts, speeds up to 2 m/s, 6 status flows, 900 s\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>16}",
        "proto", "PDR", "latency(ms)", "aen@end", "alive@end", "net death (s)"
    );

    for p in ProtocolKind::ALL {
        let sc = Scenario {
            protocol: p,
            n_hosts: 60,
            max_speed: 2.0,
            pause_secs: 30.0,
            n_flows: 6,
            flow_rate_pps: 1.0,
            duration_secs: 900.0,
            seed: 2026,
            model1_endpoints: 6,
        };
        let r = run_scenario(&sc);
        println!(
            "{:>8} {:>10} {:>12} {:>12.3} {:>14.2} {:>16}",
            p.name(),
            r.pdr
                .map(|x| format!("{:.1}%", 100.0 * x))
                .unwrap_or_else(|| "-".into()),
            r.latency_ms
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.aen.last_value().unwrap_or(0.0),
            r.alive.last_value().unwrap_or(1.0),
            r.network_death_s
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "survived".into()),
        );
    }

    println!("\nGRID burns idle power on every host and the whole network dies");
    println!("at ~10 minutes; ECGRID keeps most teams reachable through the");
    println!("entire exercise by sleeping everyone but one gateway per grid,");
    println!("waking hosts on demand via their RAS pagers.");
}
