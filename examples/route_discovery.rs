//! Route discovery walkthrough — the paper's Fig. 2 scenario.
//!
//! Source S in grid (1,1) discovers a route to destination D in grid
//! (5,3): the RREQ floods gateway-to-gateway inside the search rectangle
//! bounded by (1,1)-(5,3), the RREP unicasts back along the reverse grid
//! path, then data flows S → ... → D.  Run with:
//!
//! ```sh
//! cargo run --release --example route_discovery
//! ```

use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
use ecgrid_suite::manet::{FlowSet, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig};
use ecgrid_suite::mobility::MobilityTrace;
use ecgrid_suite::traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(200_000_000_000);

fn host(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

fn main() {
    // Hosts laid out like Fig. 2 (grid cells are 100 m squares):
    //   S(1,1) A(1,2) B(2,2) C(2,1) E(3,2) F(4,2) D(5,3) I(0,2)
    // plus non-gateway hosts J,K,L,H,G,M that will sleep.
    let names = [
        "S", "A", "B", "C", "D", "E", "F", "I", "J", "K", "L", "H", "G", "M",
    ];
    let hosts = vec![
        host(150.0, 150.0), // S  grid (1,1)
        host(150.0, 250.0), // A  grid (1,2)
        host(250.0, 250.0), // B  grid (2,2)
        host(250.0, 150.0), // C  grid (2,1)
        host(550.0, 350.0), // D  grid (5,3)
        host(350.0, 250.0), // E  grid (3,2)
        host(450.0, 250.0), // F  grid (4,2)
        host(50.0, 250.0),  // I  grid (0,2)
        host(130.0, 120.0), // J  grid (1,1), off-center -> sleeps
        host(270.0, 280.0), // K  grid (2,2), off-center -> sleeps
        host(320.0, 220.0), // L  grid (3,2), off-center -> sleeps
        host(80.0, 230.0),  // H  grid (0,2), off-center -> sleeps
        host(580.0, 320.0), // G  grid (5,3), off-center -> sleeps
        host(480.0, 290.0), // M  grid (4,2), off-center -> sleeps
    ];
    let s = NodeId(0);
    let d = NodeId(4);

    // one data packet from S to D at t = 5 s
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: s,
        dst: d,
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(6),
        burst: None,
    }]);

    let mut world = World::new(WorldConfig::paper_default(1), hosts, flows, move |id| {
        let mut p = Ecgrid::new(EcgridConfig::default(), id);
        // Fig. 2 supposes S knows D's area (location service): confine the
        // search to the rectangle over grids (1,1) and (5,3)
        if id == s {
            p.seed_location(d, ecgrid_suite::manet::GridCoord::new(5, 3));
        }
        p
    });
    world.enable_tracing();
    world.run_until(SimTime::from_secs(10));

    println!("== Fig. 2 walkthrough: RREQ flood + RREP reverse path ==\n");
    println!("roles after election:");
    for (i, name) in names.iter().enumerate() {
        let id = NodeId(i as u32);
        let p = world.protocol(id);
        println!("  {:>2} (host {:>2}) grid {}: {:?}", name, i, p.grid(), p.role());
    }

    println!("\nprotocol trace:");
    for (t, node, line) in world.trace_log() {
        let name = names[node.index()];
        println!("  t={:>9.4}s {:>2}: {}", t.as_secs_f64(), name, line);
    }

    let ledger = world.ledger();
    println!(
        "\npacket: sent {} delivered {} (latency {:?} ms)",
        ledger.sent_count(),
        ledger.delivered_count(),
        ledger.mean_latency_ms()
    );
    println!(
        "\nsearch-area check: RREQs forwarded only by gateways inside the\n\
         rectangle (1,1)-(5,3); I in grid (0,2) forwarded {} RREQs.",
        world.protocol(NodeId(7)).stats.rreqs_forwarded
    );
}
