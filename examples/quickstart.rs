//! Quickstart: build a small ECGRID network, run it, inspect what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
use ecgrid_suite::manet::{FlowSet, HostSetup, NodeId, SimTime, World, WorldConfig};
use ecgrid_suite::mobility::{MobilityModel, RandomWaypoint};
use ecgrid_suite::sim_engine::RngFactory;
use ecgrid_suite::traffic::FlowSpec;

fn main() {
    // 40 hosts roaming a 1000x1000 m field at up to 1 m/s (paper defaults:
    // 100 m grid cells, 250 m radio, 2 Mbps, 500 J batteries).
    let seed = 7;
    let n_hosts = 40;
    let end = SimTime::from_secs(300);

    let rngs = RngFactory::new(seed);
    let model = RandomWaypoint::paper(1.0, 0.0);
    let hosts: Vec<HostSetup> = (0..n_hosts)
        .map(|i| {
            HostSetup::paper(model.build_trace(
                &mut rngs.stream("mobility", i),
                end + ecgrid_suite::sim_engine::SimDuration::from_secs(10),
            ))
        })
        .collect();

    // 4 CBR flows of 1 pkt/s between random hosts
    let endpoints: Vec<NodeId> = (0..n_hosts as u32).map(NodeId).collect();
    let spec = FlowSpec {
        n_flows: 4,
        ..FlowSpec::paper_default(end)
    };
    let flows = FlowSet::random(&mut rngs.stream("traffic", 0), &endpoints, &spec);

    let mut world = World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    let out = world.run_until(end);

    println!("== ECGRID quickstart: {n_hosts} hosts, 300 s ==\n");
    println!("gateways by grid:");
    let mut gateways: Vec<(String, NodeId)> = (0..n_hosts as u32)
        .map(NodeId)
        .filter(|id| world.protocol(*id).is_gateway())
        .map(|id| (world.protocol(id).grid().to_string(), id))
        .collect();
    gateways.sort();
    for (grid, id) in &gateways {
        println!("  grid {grid}: host {id}");
    }
    let sleeping = (0..n_hosts as u32)
        .map(NodeId)
        .filter(|id| world.node_mode(*id) == ecgrid_suite::manet::RadioMode::Sleep)
        .count();
    println!("\n{} gateways awake, {} hosts sleeping", gateways.len(), sleeping);

    println!(
        "\ntraffic: {} packets sent, {} delivered (PDR {:.1}%)",
        out.ledger.sent_count(),
        out.ledger.delivered_count(),
        100.0 * out.ledger.delivery_rate().unwrap_or(0.0)
    );
    if let Some(lat) = out.ledger.mean_latency_ms() {
        println!("mean end-to-end latency: {lat:.2} ms");
    }
    println!(
        "\nenergy: aen = {:.4} (fraction of total battery consumed)",
        out.aen.last_value().unwrap_or(0.0)
    );
    println!("alive fraction: {:.2}", out.alive.last_value().unwrap_or(1.0));
    println!("\nframe stats: {:?}", out.stats);
}
