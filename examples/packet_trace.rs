//! Follow one packet hop by hop: the World's structured event trace.
//!
//! ```sh
//! cargo run --release --example packet_trace
//! ```

use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
use ecgrid_suite::manet::{
    EventKind, FlowSet, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig,
};
use ecgrid_suite::mobility::MobilityTrace;
use ecgrid_suite::traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(100_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

fn main() {
    // a 3-grid corridor with a sleeping destination
    let hosts = vec![
        still(50.0, 50.0),  // 0: gateway (0,0), source
        still(250.0, 50.0), // 1: gateway (2,0)
        still(450.0, 50.0), // 2: gateway (4,0)
        still(430.0, 80.0), // 3: sleeping member of (4,0), destination
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(3),
        packet_bytes: 512,
        interval: SimDuration::from_secs(10),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(6), // exactly one packet
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(3), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    w.enable_event_trace();
    w.run_until(SimTime::from_secs(8));

    println!("== one packet, gateway to gateway to paged sleeper ==\n");
    // skip the election chatter; show everything from just before the send
    let from = SimTime::from_secs_f64(4.9);
    let mut shown = 0;
    for ev in w.event_trace() {
        if ev.t < from {
            continue;
        }
        // HELLO beacons clutter the picture; keep MAC data frames (>100 B),
        // pages, and application events
        let keep = match ev.kind {
            EventKind::MacTx { bytes, .. } | EventKind::MacRx { bytes, .. } => bytes > 100,
            EventKind::PacketSent { .. }
            | EventKind::PacketForwarded { .. }
            | EventKind::PacketDelivered { .. }
            | EventKind::RasPage { .. } => true,
            _ => false,
        };
        if keep {
            println!("  {}", ev.to_line());
            shown += 1;
        }
    }
    println!(
        "\n({shown} events shown; {} recorded in total)",
        w.event_trace().len()
    );
    println!("trace digest: {}", w.trace_digest().expect("recorder enabled"));
    println!(
        "delivered {}/{} — the 'p … RAS host 3' line is the gateway paging \
         the sleeping destination before flushing its buffer.",
        w.ledger().delivered_count(),
        w.ledger().sent_count()
    );
}
