//! Load-balance demo: watch gateway duty rotate as batteries drain.
//!
//! Five hosts share one grid.  The gateway burns ~0.86 W while sleepers
//! burn ~0.16 W; every time the gateway's battery level drops a class
//! (upper → boundary → lower) it retires and the election picks the host
//! with the most remaining energy (§3.2's load-balance scheme).
//!
//! ```sh
//! cargo run --release --example gateway_rotation
//! ```

use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
use ecgrid_suite::manet::{FlowSet, HostSetup, NodeId, Point2, SimTime, World, WorldConfig};
use ecgrid_suite::mobility::MobilityTrace;

const HORIZON: SimTime = SimTime(3_000_000_000_000);

fn main() {
    let positions = [
        (50.0, 50.0),
        (30.0, 40.0),
        (70.0, 60.0),
        (40.0, 70.0),
        (60.0, 30.0),
    ];
    let hosts: Vec<HostSetup> = positions
        .iter()
        .map(|(x, y)| HostSetup::paper(MobilityTrace::stationary(Point2::new(*x, *y), HORIZON)))
        .collect();

    let mut world = World::new(WorldConfig::paper_default(3), hosts, FlowSet::default(), |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });

    println!("== gateway duty rotation in one grid (5 hosts, no traffic) ==\n");
    println!(
        "{:>7} {:>8} {:>40}",
        "t(s)", "gateway", "remaining energy per host (J)"
    );
    let mut last_gw = None;
    for step in 0..30 {
        let t = SimTime::from_secs(step * 60);
        world.run_until(t);
        let gw = (0..5u32).map(NodeId).find(|id| world.protocol(*id).is_gateway());
        let energies: Vec<String> = (0..5u32)
            .map(|i| format!("{:6.1}", 500.0 * world.node_rbrc(NodeId(i))))
            .collect();
        let marker = if gw != last_gw { "  <- rotated" } else { "" };
        println!(
            "{:>7} {:>8} {:>40}{marker}",
            t.as_secs_f64(),
            gw.map(|g| g.to_string()).unwrap_or_else(|| "-".into()),
            energies.join(" ")
        );
        last_gw = gw;
        if (0..5u32).all(|i| !world.node_alive(NodeId(i))) {
            println!("\nall hosts exhausted at ~{} s", t.as_secs_f64());
            break;
        }
    }

    let total_rotations: u64 = (0..5u32)
        .map(|i| world.protocol(NodeId(i)).stats.became_gateway)
        .sum();
    let lb_retires: u64 = (0..5u32)
        .map(|i| world.protocol(NodeId(i)).stats.load_balance_retires)
        .sum();
    println!("\n{total_rotations} gateway terms served, {lb_retires} load-balance retirements");
    println!("\nCompare: a single permanent gateway would die after 579 s;");
    println!("with rotation the grid stays served far longer and energy");
    println!("drains evenly across all five hosts.");
}
