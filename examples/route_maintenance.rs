//! Route maintenance walkthrough — the paper's Fig. 3 situations.
//!
//! A source host S (initially the gateway of its grid) streams data to a
//! destination D several grids away, then roams.  The route must survive
//! the gateway's departure: S retires, the abandoned grid re-elects, S
//! re-anchors to the gateway of its new grid, and data keeps flowing.
//!
//! ```sh
//! cargo run --release --example route_maintenance
//! ```

use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
use ecgrid_suite::manet::{FlowSet, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig};
use ecgrid_suite::mobility::{MobilityTrace, Segment};
use ecgrid_suite::traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(500_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

fn main() {
    // S starts at the center of grid (1,2) (it will win the election
    // there), dwells 30 s, then roams east through (2,2) toward (3,2) —
    // Fig. 3(a)'s case: the source moves into the next grid on its route.
    let dwell = Segment::rest(SimTime::ZERO, SimTime::from_secs(30), Point2::new(150.0, 250.0));
    let roam = Segment::travel(dwell.end, dwell.from, Point2::new(380.0, 250.0), 2.0);
    let rest = Segment::rest(roam.end, HORIZON, roam.end_position());
    let s_trace = MobilityTrace::new(vec![dwell, roam, rest]);

    let hosts = vec![
        HostSetup::paper(s_trace), // 0: S, roaming source
        still(130.0, 270.0),       // 1: stays to inherit grid (1,2)
        still(250.0, 250.0),       // 2: B, gateway grid (2,2)
        still(350.0, 250.0),       // 3: E, gateway grid (3,2)
        still(450.0, 250.0),       // 4: F, gateway grid (4,2)
        still(550.0, 250.0),       // 5: D, destination, grid (5,2)
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(5),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(180),
        burst: None,
    }]);

    let mut world = World::new(WorldConfig::paper_default(9), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    world.enable_tracing();

    println!("== Fig. 3 walkthrough: source roams while streaming ==\n");
    for checkpoint in [20u64, 60, 120, 180] {
        world.run_until(SimTime::from_secs(checkpoint));
        let s = world.protocol(NodeId(0));
        let ledger = world.ledger();
        println!(
            "t={checkpoint:>4}s  S in grid {} as {:?}; sent {} delivered {} (pdr {:.1}%)",
            world.node_cell(NodeId(0)),
            s.role(),
            ledger.sent_count(),
            ledger.delivered_count(),
            100.0 * ledger.delivery_rate().unwrap_or(0.0),
        );
    }

    println!("\nkey protocol events:");
    for (t, node, line) in world.trace_log() {
        if line.contains("retir") || line.contains("gateway") || line.contains("election") {
            println!("  t={:>9.3}s host {}: {}", t.as_secs_f64(), node, line);
        }
    }

    let retires = world.protocol(NodeId(0)).stats.retires;
    println!("\nS retired {retires} time(s) while roaming; the stream kept a");
    println!(
        "{:.1}% delivery rate across the gateway handoffs.",
        100.0 * world.ledger().delivery_rate().unwrap_or(0.0)
    );
}
