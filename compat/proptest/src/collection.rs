//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Admissible element counts for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
