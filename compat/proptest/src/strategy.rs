//! Value-generation strategies.

use crate::TestRng;
use rand::distributions::uniform::SampleUniform;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O,
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// `range.prop_map(f)` and friends.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> O, O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for primitives.
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

use rand::RngCore as _;
