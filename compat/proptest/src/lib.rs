//! Offline stand-in for `proptest`.
//!
//! Re-implements the subset of the proptest 1.x API this workspace's
//! property tests use: the [`proptest!`] macro, the `prop_assert*` /
//! [`prop_assume!`] family, range / tuple / [`prop_map`] /
//! [`collection::vec`] strategies, and [`any`].  Failing cases are
//! reported with their case index and a reproducible seed; there is no
//! shrinking (a failing input is printed in full via `Debug` where the
//! assertion message includes it).
//!
//! Case count defaults to 128 per property and can be overridden with
//! the `PROPTEST_CASES` environment variable, exactly like upstream.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Map, Strategy};

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The generated input was rejected by `prop_assume!` — try another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a, used to derive a stable per-test master seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Number of cases to run per property.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128)
}

/// Drive one property: run `cases` accepted inputs, tolerating
/// `prop_assume!` rejections up to a global attempt budget.
pub fn run_property(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let cases = case_count();
    let max_attempts = cases.saturating_mul(16).max(1024);
    let master = fnv1a(name.as_bytes());
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    while accepted < cases {
        if attempts >= max_attempts {
            panic!(
                "proptest '{name}': too many prop_assume rejections \
                 ({accepted}/{cases} cases after {attempts} attempts)"
            );
        }
        let seed = master ^ (attempts as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {accepted} (attempt seed {seed:#018x}):\n{msg}");
            }
        }
    }
}

/// The entry-point macro: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    stringify!($name),
                    |__proptest_rng: &mut $crate::TestRng|
                        -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: {:?}",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{TestCaseError, TestRng};

    /// Upstream exposes strategy modules under `prop::` as well.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i32..=5, f in 0.5..1.5f64) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(
            v in crate::collection::vec((0u32..50, 0.0..1.0f64).prop_map(|(a, b)| a as f64 + b), 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in &v {
                prop_assert!((0.0..50.0).contains(x));
            }
        }

        #[test]
        fn assume_filters_inputs(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn any_produces_both_booleans(v in crate::collection::vec(any::<bool>(), 64)) {
            prop_assert_eq!(v.len(), 64);
            prop_assert!(v.iter().any(|&b| b) && v.iter().any(|&b| !b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::run_property("always_fails", |_rng| Err(crate::TestCaseError::fail("nope")));
    }
}
