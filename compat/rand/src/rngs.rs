//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++.
///
/// Not bit-compatible with upstream `StdRng` (ChaCha12), but
/// deterministic per seed, platform-independent, and statistically
/// strong — which is all the simulator requires.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Raw output word (test hook).
    #[cfg(test)]
    pub(crate) fn next_u64_raw(&mut self) -> u64 {
        self.next()
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // an all-zero state is the xoshiro fixed point; nudge it
        if s == [0, 0, 0, 0] {
            s = [
                0x9E3779B97F4A7C15,
                0x6A09E667F3BCC909,
                0xBB67AE8584CAA73B,
                0x3C6EF372FE94F82B,
            ];
        }
        StdRng { s }
    }
}
