//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, so the handful of `rand 0.8` APIs the simulator uses are
//! re-implemented here with the same names, module paths, and trait
//! shapes.  The generator behind [`rngs::StdRng`] is xoshiro256++ seeded
//! through SplitMix64 — not bit-compatible with upstream `StdRng`
//! (ChaCha12), but every property the simulator relies on holds:
//! deterministic per seed, platform-independent, high quality, `Clone`
//! without shared state.
//!
//! Supported surface: [`Rng`] (`gen`, `gen_range`, `gen_bool`,
//! `sample_iter`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`seq::SliceRandom`] (`shuffle`, `choose`), and
//! [`distributions::{Distribution, Standard, Uniform}`].

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The raw generator interface: a source of uniformly random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample of `T` from the [`Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// An iterator of samples from `distr`, consuming the RNG.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seed from a single `u64` (the only constructor this workspace
    /// uses); expands the word through SplitMix64 like upstream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Minimal SplitMix64, used only for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_raw(), c.next_u64_raw());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let a = r.gen_range(3u32..=17);
            assert!((3..=17).contains(&a));
            let b = r.gen_range(5usize..8);
            assert!((5..8).contains(&b));
            let c = r.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&c));
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0u32..=3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range misses values: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "49! permutations — identity is effectively impossible");
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(2024);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[r.gen_range(0usize..16)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} too skewed");
        }
    }
}
