//! Distributions: `Standard`, `Uniform`, and the sampling traits.

use crate::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Types that can be sampled from a distribution `D`.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: Rng,
        Self: Sized,
    {
        DistIter {
            distr: self,
            rng,
            _marker: PhantomData,
        }
    }
}

/// Iterator returned by [`Distribution::sample_iter`].
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D: Distribution<T>, R: Rng, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// The "natural" uniform distribution of a type: full range for
/// integers, `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u8> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u32() >> 24) as u8
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with a 53-bit mantissa.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with a 24-bit mantissa.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling over ranges.

    use super::*;

    /// Types `gen_range` can produce.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Uniform sample from `[low, high)`; `high` is exclusive.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform sample from `[low, high]`; `high` is inclusive.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Range arguments accepted by `gen_range`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "gen_range: empty inclusive range");
            T::sample_inclusive(rng, lo, hi)
        }
    }

    /// Widening-multiply range reduction (Lemire).  The modulo bias over
    /// a 64-bit draw is at most 2⁻⁶⁴ · span — irrelevant for simulation,
    /// and crucially deterministic (exactly one draw per sample, so RNG
    /// stream alignment never depends on rejection luck).
    #[inline]
    fn reduce(word: u64, span: u64) -> u64 {
        ((word as u128 * span as u128) >> 64) as u64
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as i128 - low as i128) as u64;
                    low.wrapping_add(reduce(rng.next_u64(), span) as $t)
                }

                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as i128 - low as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // the only full-width case is `T::MIN..=T::MAX`
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(reduce(rng.next_u64(), span as u64) as $t)
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit: $t = Standard.sample(rng);
                    let x = low + (high - low) * unit;
                    // floating rounding can land exactly on `high`; fold back
                    if x >= high {
                        // the next representable value below `high`
                        <$t>::from_bits(high.to_bits() - 1)
                    } else {
                        x
                    }
                }

                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit: $t = Standard.sample(rng);
                    let x = low + (high - low) * unit;
                    if x > high {
                        high
                    } else {
                        x
                    }
                }
            }
        )*};
    }

    uniform_float!(f32, f64);
}

/// A pre-built uniform range distribution (constructed from a range).
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: uniform::SampleUniform> Uniform<T> {
    pub fn new(low: T, high: T) -> Self {
        Uniform {
            low,
            high,
            inclusive: false,
        }
    }

    pub fn new_inclusive(low: T, high: T) -> Self {
        Uniform {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_inclusive(rng, self.low, self.high)
        } else {
            T::sample_half_open(rng, self.low, self.high)
        }
    }
}
