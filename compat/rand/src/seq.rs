//! Sequence helpers (`rand::seq` subset).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, uniform over permutations.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly chosen element, `None` on an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
