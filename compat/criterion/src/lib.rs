//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! benchmark groups, `iter` / `iter_batched`, [`BatchSize`] and
//! [`black_box`] — with straightforward wall-clock timing: a short
//! warm-up, then `sample_size` timed samples whose min/median/mean are
//! printed.  No statistical analysis, plots, or baselines; the point is
//! that `cargo bench` builds and produces comparable numbers in a
//! hermetic environment.

use std::hint;
use std::time::{Duration, Instant};

/// Re-exported opaque-value barrier (stable `std::hint::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup between measurements.  The stub
/// times each routine invocation individually, so the variants only
/// document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; runs the measured code.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..2 {
            black_box(routine()); // warm-up
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// `criterion_group!(name, target1, target2, …)` — a function running
/// each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group1, group2, …)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
