//! Offline stand-in for `rayon`.
//!
//! Implements the one pattern this workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — with *real*
//! parallelism on `std::thread::scope`.  Work is split into contiguous
//! chunks, one per available core, and results are reassembled in input
//! order, so output ordering is identical to the serial path no matter
//! how many threads run (the property the golden-trace determinism
//! tests pin down).

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

use std::thread;

/// `.par_iter()` — entry point, mirrors rayon's trait of the same name.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

/// The operations our parallel iterators support.
pub trait ParallelIterator: Sized {
    type Item;

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
        Self: ExecutableParallel,
        Self::Item: Send,
    {
        C::from_par(self.run())
    }
}

/// Internal: iterators that know how to execute themselves to a `Vec`.
pub trait ExecutableParallel: ParallelIterator {
    fn run(self) -> Vec<Self::Item>;
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    fn from_par(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par(items: Vec<T>) -> Self {
        items
    }
}

/// A borrowed slice as a parallel iterator.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;
}

impl<'data, T: Sync> ExecutableParallel for ParSlice<'data, T> {
    fn run(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// A mapped parallel iterator — the stage that actually fans out.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<'data, T, F, R> ParallelIterator for Map<ParSlice<'data, T>, F>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    type Item = R;
}

impl<'data, T, F, R> ExecutableParallel for Map<ParSlice<'data, T>, F>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    fn run(self) -> Vec<R> {
        parallel_map(self.base.slice, &self.f)
    }
}

/// Split `items` into one contiguous chunk per worker, run chunks on
/// scoped threads, and reassemble the outputs in input order.
fn parallel_map<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon-compat worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let n = ids.lock().unwrap().len();
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert!(
            n > 1 || cores == 1,
            "expected multi-threaded execution, saw {n} thread(s)"
        );
    }
}
