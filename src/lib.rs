//! Meta-crate for the ECGRID reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can reach the whole stack with a single dependency.

pub use aodv;
pub use dsdv;
pub use ecgrid;
pub use energy;
pub use fault;
pub use gaf;
pub use geo;
pub use grid_common;
pub use grid_routing;
pub use manet;
pub use metrics;
pub use mobility;
pub use radio;
pub use runner;
pub use scenario;
pub use service;
pub use sim_engine;
pub use span;
pub use trace;
pub use traffic;
