//! # GAF — Geographic Adaptive Fidelity (baseline)
//!
//! The paper's second comparison protocol (Xu, Heidemann & Estrin,
//! MobiCom'01).  Like ECGRID, GAF partitions the field into grids and
//! keeps one host per grid awake; unlike ECGRID:
//!
//! * sleeping is **timer-driven** — a sleeper picks its sleep duration
//!   before turning the radio off and *must* wake periodically to
//!   re-negotiate, because nothing can reach it while asleep;
//! * there is **no paging**: "GAF includes no way to ensure that a
//!   destination host is active when packets are sent to it" (§1) — which
//!   is why the paper's Model 1 gives GAF ten always-on, infinite-energy
//!   endpoint hosts that neither run GAF nor forward traffic;
//! * routing is host-by-host **AODV** underneath (the GAF paper's setup),
//!   not grid-by-grid.
//!
//! The duty cycle follows the GAF state machine: *discovery* (radio on,
//! exchange discovery messages for a randomized T_d) → *active* (serve as
//! the grid's router for T_a, beaconing discovery messages) → back to
//! discovery; any node that hears a higher-ranked active node in its grid
//! sleeps for a fraction of that node's remaining active time.  Ranking
//! prefers active state, then longer expected lifetime (remaining
//! energy), then smaller id.

pub mod proto;

pub use proto::{GafConfig, GafProto, GafState, GafStats};
