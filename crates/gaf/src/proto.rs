//! The GAF duty-cycle state machine over an embedded AODV core.

use aodv::{Action, AodvConfig, AodvCore, AodvMsg, AodvStats, AodvTimer};
use manet::{AppPacket, Ctx, EventKind, FrameKind, GridCoord, NodeId, Protocol, WireSize};
use rand::Rng;

/// GAF parameters (times in seconds).
#[derive(Clone, Copy, Debug)]
pub struct GafConfig {
    /// Discovery dwell for freshly-woken contenders: uniform in
    /// `[0.1, discovery_max]`.
    pub discovery_max: f64,
    /// Discovery dwell for a node that just *finished* an active term:
    /// uniform in `[handoff_grace, handoff_grace + discovery_max]`, so a
    /// fresher waker claims the duty first and the drained ex-incumbent
    /// goes to sleep (GAF's load-balancing rotation).
    pub handoff_grace: f64,
    /// Active-state duration T_a (the GAF paper's "enat").
    pub active_time: f64,
    /// Discovery-message beacon period while active.
    pub beacon_interval: f64,
    /// Sleep duration as a fraction range of the active node's *announced
    /// remaining term*.  Waking slightly early makes the sleeper converge
    /// geometrically onto the term boundary (each early wake re-sleeps for
    /// the same fraction of the shrinking remainder), so it is awake and
    /// holding a fuller battery exactly when the incumbent stands down.
    pub sleep_frac_lo: f64,
    pub sleep_frac_hi: f64,
    /// AODV settings for the embedded router.
    pub aodv: AodvConfig,
}

impl Default for GafConfig {
    fn default() -> Self {
        GafConfig {
            discovery_max: 0.4,
            handoff_grace: 0.8,
            active_time: 120.0,
            beacon_interval: 1.0,
            sleep_frac_lo: 0.9,
            sleep_frac_hi: 1.0,
            aodv: AodvConfig::default(),
        }
    }
}

/// GAF node state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GafState {
    /// Radio on, negotiating who stays awake.
    Discovery,
    /// The grid's designated router.
    Active,
    /// Radio off until the sleep timer expires.
    Sleeping,
    /// Model-1 endpoint: always on, never negotiates, never forwards.
    Endpoint,
}

/// Discovery message contents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiscInfo {
    pub id: NodeId,
    pub grid: GridCoord,
    pub active: bool,
    /// Seconds of active duty remaining (0 while in discovery).
    pub remaining_active: f64,
    /// Remaining battery energy, joules (the lifetime rank).
    pub energy_j: f64,
}

/// Energy difference below which two discovery-state nodes count as
/// equally ranked (avoids thrash between near-equal contenders).
const ENERGY_HYSTERESIS_J: f64 = 2.0;

impl DiscInfo {
    /// True if `self` outranks `other` for staying awake.
    ///
    /// An active node holds its duty for the whole announced term (GAF's
    /// state ranking); among discovery-state contenders, longer expected
    /// lifetime — more remaining energy — wins, which is what rotates duty
    /// at each term boundary.
    pub fn outranks(&self, other: &DiscInfo) -> bool {
        if self.active != other.active {
            return self.active;
        }
        if (self.energy_j - other.energy_j).abs() > ENERGY_HYSTERESIS_J {
            return self.energy_j > other.energy_j;
        }
        self.id < other.id
    }
}

/// GAF wire messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GafMsg {
    Disc(DiscInfo),
    Aodv(AodvMsg),
}

impl WireSize for GafMsg {
    fn wire_bytes(&self) -> u32 {
        match self {
            // id 4 + grid 8 + state 1 + remaining 4 + energy 4 + header 3
            GafMsg::Disc(_) => 24,
            GafMsg::Aodv(m) => m.wire_bytes(),
        }
    }
}

/// GAF timers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GafTimer {
    /// Discovery dwell expired: become active.
    DiscoveryDone { epoch: u32 },
    /// Active duty expired: back to discovery.
    ActiveDone { epoch: u32 },
    /// Sleep expired: back to discovery.
    WakeUp { epoch: u32 },
    /// Active-state discovery beacon.
    Beacon { epoch: u32 },
    /// Embedded AODV timer.
    Aodv(AodvTimer),
}

/// Per-host counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GafStats {
    pub activations: u64,
    pub sleeps: u64,
    pub wakeups: u64,
    pub beacons: u64,
}

/// One GAF host.
pub struct GafProto {
    cfg: GafConfig,
    me: NodeId,
    state: GafState,
    my_grid: GridCoord,
    /// Absolute end of the current active duty (seconds).
    active_until: f64,
    epoch: u32,
    core: AodvCore,
    /// The cell the trace recorder believes this host is the active
    /// router of (GAF's analogue of a gateway; keeps GatewayElect /
    /// GatewayRetire strictly alternating per host).
    gw_traced: Option<GridCoord>,
    pub stats: GafStats,
}

impl GafProto {
    pub fn new(cfg: GafConfig, me: NodeId) -> Self {
        GafProto {
            cfg,
            me,
            state: GafState::Discovery,
            my_grid: GridCoord::new(0, 0),
            active_until: 0.0,
            epoch: 0,
            core: AodvCore::new(cfg.aodv, me),
            gw_traced: None,
            stats: GafStats::default(),
        }
    }

    /// A Model-1 endpoint: always on, does not run the GAF duty cycle and
    /// does not relay foreign traffic.
    pub fn endpoint(cfg: GafConfig, me: NodeId) -> Self {
        let mut p = Self::new(cfg, me);
        p.state = GafState::Endpoint;
        p.core.forwards = false;
        p
    }

    pub fn state(&self) -> GafState {
        self.state
    }

    pub fn aodv_stats(&self) -> &AodvStats {
        &self.core.stats
    }

    fn run(&self, ctx: &mut Ctx<'_, Self>, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Broadcast(m) => ctx.broadcast(GafMsg::Aodv(m)),
                Action::Unicast(to, m) => {
                    // a Data unicast whose source is someone else is this
                    // router relaying a foreign packet — a forward
                    if let AodvMsg::Data { packet, src, .. } = &m {
                        if *src != self.me {
                            let me = self.me;
                            let (flow, seq) = (packet.flow, packet.seq);
                            ctx.emit(|| EventKind::PacketForwarded { node: me, flow, seq });
                        }
                    }
                    ctx.unicast(to, GafMsg::Aodv(m));
                }
                Action::Deliver(p) => ctx.deliver_app(p),
                Action::Timer(secs, t) => {
                    ctx.set_timer_secs(secs, GafTimer::Aodv(t));
                }
            }
        }
    }

    /// Reconcile the trace's view of this host's router tenure with
    /// `state` (see the equivalent helper in `ecgrid`).
    fn sync_gateway_trace(&mut self, ctx: &mut Ctx<'_, Self>) {
        let me = self.me;
        let now_gw = self.state == GafState::Active;
        match (self.gw_traced, now_gw) {
            (None, true) => {
                let cell = self.my_grid;
                self.gw_traced = Some(cell);
                ctx.emit(|| EventKind::GatewayElect { node: me, cell });
            }
            (Some(old), false) => {
                self.gw_traced = None;
                ctx.emit(|| EventKind::GatewayRetire { node: me, cell: old });
            }
            (Some(old), true) if old != self.my_grid => {
                let cell = self.my_grid;
                self.gw_traced = Some(cell);
                ctx.emit(|| EventKind::GatewayRetire { node: me, cell: old });
                ctx.emit(|| EventKind::GatewayElect { node: me, cell });
            }
            _ => {}
        }
    }

    fn my_disc(&self, ctx: &mut Ctx<'_, Self>) -> DiscInfo {
        let now = ctx.now().as_secs_f64();
        DiscInfo {
            id: self.me,
            grid: self.my_grid,
            active: self.state == GafState::Active,
            remaining_active: (self.active_until - now).max(0.0),
            energy_j: ctx.remaining_j().min(1e12),
        }
    }

    fn send_disc(&mut self, ctx: &mut Ctx<'_, Self>) {
        let d = self.my_disc(ctx);
        self.stats.beacons += 1;
        ctx.broadcast(GafMsg::Disc(d));
    }

    fn enter_discovery(&mut self, ctx: &mut Ctx<'_, Self>, after_duty: bool) {
        self.state = GafState::Discovery;
        self.sync_gateway_trace(ctx);
        self.my_grid = ctx.cell();
        self.epoch += 1;
        self.send_disc(ctx);
        let td = if after_duty {
            // stand back: let a fresher waker claim the grid first
            self.cfg.handoff_grace + ctx.rng().gen_range(0.0..self.cfg.discovery_max.max(1e-3))
        } else {
            ctx.rng().gen_range(0.1..(0.1 + self.cfg.discovery_max.max(1e-3)))
        };
        ctx.set_timer_secs(td, GafTimer::DiscoveryDone { epoch: self.epoch });
    }

    fn enter_active(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.state = GafState::Active;
        self.sync_gateway_trace(ctx);
        self.stats.activations += 1;
        self.epoch += 1;
        self.active_until = ctx.now().as_secs_f64() + self.cfg.active_time;
        self.send_disc(ctx);
        ctx.set_timer_secs(self.cfg.active_time, GafTimer::ActiveDone { epoch: self.epoch });
        ctx.set_timer_secs(self.cfg.beacon_interval, GafTimer::Beacon { epoch: self.epoch });
    }

    fn enter_sleep(&mut self, ctx: &mut Ctx<'_, Self>, winner_remaining: f64) {
        self.state = GafState::Sleeping;
        self.sync_gateway_trace(ctx);
        self.stats.sleeps += 1;
        self.epoch += 1;
        let base = winner_remaining.max(1.0);
        let frac = ctx
            .rng()
            .gen_range(self.cfg.sleep_frac_lo..=self.cfg.sleep_frac_hi);
        // never sleep past the moment we might leave the grid
        let dwell = ctx.estimated_dwell_secs(base * frac);
        ctx.set_timer_secs(dwell.max(0.1), GafTimer::WakeUp { epoch: self.epoch });
        self.core.clear_pending();
        ctx.sleep();
    }

    fn on_disc(&mut self, ctx: &mut Ctx<'_, Self>, d: DiscInfo) {
        if d.grid != self.my_grid || d.id == self.me {
            return;
        }
        match self.state {
            GafState::Discovery | GafState::Active => {
                let mine = self.my_disc(ctx);
                // Yield only to a node that is *already serving*: sleeping
                // on a mere discovery-state rival would leave the grid with
                // no router until the rival's T_d expires (a delivery gap).
                // The outranking rival stays in discovery, activates at its
                // T_d, beacons, and only then do we stand down — a
                // make-before-break handoff.
                if d.active && d.outranks(&mine) {
                    if d.remaining_active > 2.0 {
                        self.enter_sleep(ctx, d.remaining_active);
                    } else if self.state == GafState::Active {
                        // both of us are (nearly) done; fall back to a fresh
                        // negotiation rather than serving two actives
                        self.enter_discovery(ctx, true);
                    }
                    // in discovery with the incumbent about to retire: stay
                    // awake — the renegotiation we are waiting for is here
                } else if self.state == GafState::Active && !d.outranks(&mine) {
                    // defend my duty so the lower-ranked node yields
                    self.send_disc(ctx);
                }
            }
            GafState::Sleeping => {
                // pre-quiesce window (sleep requested, MAC still draining)
            }
            GafState::Endpoint => {}
        }
    }
}

impl Protocol for GafProto {
    type Msg = GafMsg;
    type Timer = GafTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.my_grid = ctx.cell();
        if self.state == GafState::Endpoint {
            return; // always on, no duty cycle
        }
        // stagger entry into discovery
        let stagger = ctx.rng().gen_range(0.0..0.2);
        self.epoch += 1;
        ctx.set_timer_secs(stagger, GafTimer::WakeUp { epoch: self.epoch });
        self.state = GafState::Discovery; // formally in discovery until then
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, _kind: FrameKind, msg: &GafMsg) {
        match msg {
            GafMsg::Disc(d) => self.on_disc(ctx, *d),
            GafMsg::Aodv(m) => {
                // Only a committed router takes part in route construction:
                // a discovery-state node may sleep within the second, so
                // letting it relay or answer RREQs would mint routes that
                // break immediately.  (It still receives data/RREPs on
                // routes built while it served, and replies to RREQs that
                // target it.)
                if let AodvMsg::Rreq { dst, .. } = m {
                    let committed = matches!(self.state, GafState::Active | GafState::Endpoint);
                    if !committed && *dst != self.me {
                        return;
                    }
                }
                let acts = self.core.on_msg(ctx.now(), src, m);
                self.run(ctx, acts);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: GafTimer) {
        match timer {
            GafTimer::DiscoveryDone { epoch } => {
                if epoch == self.epoch && self.state == GafState::Discovery {
                    self.enter_active(ctx);
                }
            }
            GafTimer::ActiveDone { epoch } => {
                if epoch == self.epoch && self.state == GafState::Active {
                    // duty served; renegotiate, deferring to fresher wakers
                    self.enter_discovery(ctx, true);
                }
            }
            GafTimer::WakeUp { epoch } => {
                if epoch == self.epoch && matches!(self.state, GafState::Sleeping | GafState::Discovery) {
                    self.stats.wakeups += 1;
                    ctx.wake();
                    self.enter_discovery(ctx, false);
                }
            }
            GafTimer::Beacon { epoch } => {
                if epoch == self.epoch && self.state == GafState::Active {
                    self.send_disc(ctx);
                    ctx.set_timer_secs(self.cfg.beacon_interval, GafTimer::Beacon { epoch });
                }
            }
            GafTimer::Aodv(t) => {
                let acts = self.core.on_timer(ctx.now(), t);
                self.run(ctx, acts);
            }
        }
    }

    fn on_cell_change(&mut self, ctx: &mut Ctx<'_, Self>, _old: GridCoord, new: GridCoord) {
        self.my_grid = new;
        if matches!(self.state, GafState::Discovery | GafState::Active) {
            // renegotiate in the new grid
            self.enter_discovery(ctx, false);
        }
    }

    fn on_app_send(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, packet: AppPacket) {
        if self.state == GafState::Sleeping {
            // GAF has no ACQ handshake: the host simply powers up and joins
            // discovery, sending its data immediately
            ctx.wake();
            self.enter_discovery(ctx, false);
        }
        let acts = self.core.send_data(ctx.now(), dst, packet);
        self.run(ctx, acts);
    }

    fn on_unicast_failed(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, msg: &GafMsg) {
        if let GafMsg::Aodv(m) = msg {
            let acts = self.core.on_link_failure(ctx.now(), dst, m);
            self.run(ctx, acts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_prefers_incumbent_then_energy_then_id() {
        let base = DiscInfo {
            id: NodeId(5),
            grid: GridCoord::new(0, 0),
            active: false,
            remaining_active: 0.0,
            energy_j: 100.0,
        };
        // an active incumbent holds duty for its whole term, even against
        // a richer discovery-state rival (make-before-break: the rival
        // takes over at the term boundary instead)
        let richer = DiscInfo {
            id: NodeId(9),
            energy_j: 200.0,
            ..base
        };
        let incumbent = DiscInfo {
            active: true,
            remaining_active: 30.0,
            ..base
        };
        assert!(incumbent.outranks(&richer));
        assert!(!richer.outranks(&incumbent));
        // among discovery-state contenders, energy rules
        assert!(richer.outranks(&base));
        assert!(!base.outranks(&richer));
        // both idle, near-equal energy: smaller id wins
        let same_energy_lower_id = DiscInfo {
            id: NodeId(2),
            ..base
        };
        assert!(same_energy_lower_id.outranks(&base));
        assert!(!base.outranks(&same_energy_lower_id));
    }

    #[test]
    fn disc_wire_size() {
        let d = DiscInfo {
            id: NodeId(0),
            grid: GridCoord::new(0, 0),
            active: false,
            remaining_active: 0.0,
            energy_j: 0.0,
        };
        assert_eq!(GafMsg::Disc(d).wire_bytes(), 24);
    }
}
