//! End-to-end tests for GAF over the full simulator (Model 1 setup).

use gaf::{GafConfig, GafProto, GafState};
use manet::{FlowSet, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig};
use mobility::MobilityTrace;
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(3_000_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

fn still_infinite(x: f64, y: f64) -> HostSetup {
    HostSetup::infinite(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

/// 2 infinite-energy endpoints at the ends, GAF relays in between
/// (Model 1 in miniature).  Endpoints are nodes 0 and 1.
fn model1_world(seed: u64, stop_s: u64) -> World<GafProto> {
    let mut hosts = vec![still_infinite(30.0, 50.0), still_infinite(450.0, 50.0)];
    // two GAF relays per intermediate grid so there is sleep opportunity
    for x in [150.0, 170.0, 250.0, 270.0, 350.0, 370.0] {
        hosts.push(still(x, 50.0));
    }
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(3),
        stop: SimTime::from_secs(stop_s),
        burst: None,
    }]);
    World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        if id.index() < 2 {
            GafProto::endpoint(GafConfig::default(), id)
        } else {
            GafProto::new(GafConfig::default(), id)
        }
    })
}

#[test]
fn one_active_per_grid_and_redundant_nodes_sleep() {
    let mut w = model1_world(1, 3);
    w.run_until(SimTime::from_secs(20));
    // in each 2-relay grid, exactly one is active and one sleeps
    for (a, b) in [(2u32, 3u32), (4, 5), (6, 7)] {
        let sa = w.protocol(NodeId(a)).state();
        let sb = w.protocol(NodeId(b)).state();
        let actives = [sa, sb].iter().filter(|s| **s == GafState::Active).count();
        let sleepers = [sa, sb].iter().filter(|s| **s == GafState::Sleeping).count();
        assert_eq!(actives, 1, "grid of {a},{b}: {sa:?} {sb:?}");
        assert_eq!(sleepers, 1, "grid of {a},{b}: {sa:?} {sb:?}");
    }
    // endpoints never duty-cycle
    assert_eq!(w.protocol(NodeId(0)).state(), GafState::Endpoint);
}

#[test]
fn gaf_delivers_end_to_end_with_model1_endpoints() {
    let mut w = model1_world(2, 33);
    w.run_until(SimTime::from_secs(40));
    let pdr = w.ledger().delivery_rate().unwrap();
    assert!(pdr >= 0.9, "pdr {pdr}");
    let lat = w.ledger().mean_latency_ms().unwrap();
    assert!(lat < 60.0, "latency {lat} ms");
}

#[test]
fn gaf_sleepers_save_energy_and_duty_rotates() {
    let mut w = model1_world(3, 3);
    w.run_until(SimTime::from_secs(200));
    // with Ta=60 s, each pair should have rotated duty at least once
    let rotations: u64 = (2..8).map(|i| w.protocol(NodeId(i)).stats.activations).sum();
    assert!(rotations >= 6, "activations {rotations}");
    // and consumption per relay must be well below always-idle
    let idle_baseline = 200.0 * 0.863;
    for i in 2..8u32 {
        let j = w.node_consumed_j(NodeId(i));
        assert!(
            j < idle_baseline * 0.95,
            "node {i} consumed {j} J (idle would be {idle_baseline})"
        );
    }
}

#[test]
fn gaf_runs_deterministically() {
    let run = || {
        let mut w = model1_world(7, 20);
        w.run_until(SimTime::from_secs(30));
        (*w.stats(), w.ledger().delivered_count())
    };
    assert_eq!(run(), run());
}
