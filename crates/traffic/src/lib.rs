//! Application traffic: constant-bit-rate flows.
//!
//! "Each source host sends a CBR flow with one or ten 512-byte packets per
//! second" (§4).  The evaluation's network load of 10 pkt/s is realized as
//! ten concurrent 1 pkt/s flows (matching Model 1's ten endpoint hosts);
//! both the per-flow rate and the flow count are parameters.

use radio::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use sim_engine::{SimDuration, SimTime};

/// Identifier of one CBR flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// One constant-bit-rate flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CbrFlow {
    pub id: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Application payload per packet (512 B in the paper).
    pub packet_bytes: u32,
    /// Inter-packet gap (1 s for 1 pkt/s).
    pub interval: SimDuration,
    /// First packet instant.
    pub start: SimTime,
    /// No packets at or after this instant.
    pub stop: SimTime,
}

impl CbrFlow {
    /// Packets per second.
    pub fn rate_pps(&self) -> f64 {
        1.0 / self.interval.as_secs_f64()
    }

    /// Number of packets this flow emits in `[start, stop)`.
    pub fn packet_count(&self) -> u64 {
        if self.stop <= self.start {
            return 0;
        }
        let span = self.stop.since(self.start).as_nanos();
        // packets at start, start+i*interval, ... strictly before stop
        1 + (span - 1) / self.interval.as_nanos()
    }

    /// Emission time of packet `seq` (0-based); `None` past the stop time.
    pub fn packet_time(&self, seq: u64) -> Option<SimTime> {
        let at = self.start.checked_add(SimDuration::from_nanos(
            seq.checked_mul(self.interval.as_nanos())?,
        ))?;
        (at < self.stop).then_some(at)
    }
}

/// Specification for building a randomized flow set.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    pub n_flows: usize,
    pub packet_bytes: u32,
    pub rate_pps: f64,
    pub start: SimTime,
    pub stop: SimTime,
    /// Small per-flow start jitter spread over one interval, so ten 1 pkt/s
    /// flows don't all fire in the same microsecond.
    pub stagger: bool,
}

impl FlowSpec {
    /// Paper default: 10 flows x 1 pkt/s x 512 B = 10 pkt/s offered load.
    pub fn paper_default(stop: SimTime) -> Self {
        FlowSpec {
            n_flows: 10,
            packet_bytes: 512,
            rate_pps: 1.0,
            start: SimTime::from_secs(5),
            stop,
            stagger: true,
        }
    }
}

/// A set of flows with distinct (src, dst) endpoints.
#[derive(Clone, Debug, Default)]
pub struct FlowSet {
    flows: Vec<CbrFlow>,
}

impl FlowSet {
    pub fn new(flows: Vec<CbrFlow>) -> Self {
        FlowSet { flows }
    }

    /// Build a random flow set over `endpoints`.
    ///
    /// Sources are distinct hosts; destinations are distinct from their
    /// source (self-flows are useless).  Endpoint hosts may appear in
    /// multiple flows if there are fewer endpoints than 2×flows, matching
    /// Model 1 where ten hosts serve as both sources and destinations.
    pub fn random<R: Rng>(rng: &mut R, endpoints: &[NodeId], spec: &FlowSpec) -> Self {
        assert!(endpoints.len() >= 2, "need at least two endpoint hosts");
        let interval = SimDuration::from_secs_f64(1.0 / spec.rate_pps);
        let mut pool = endpoints.to_vec();
        pool.shuffle(rng);
        let mut flows = Vec::with_capacity(spec.n_flows);
        for i in 0..spec.n_flows {
            // walk the shuffled pool round-robin for sources; pick any
            // different host as destination
            let src = pool[i % pool.len()];
            let dst = loop {
                let d = endpoints[rng.gen_range(0..endpoints.len())];
                if d != src {
                    break d;
                }
            };
            let jitter = if spec.stagger {
                SimDuration::from_nanos(rng.gen_range(0..interval.as_nanos().max(1)))
            } else {
                SimDuration::ZERO
            };
            flows.push(CbrFlow {
                id: FlowId(i as u32),
                src,
                dst,
                packet_bytes: spec.packet_bytes,
                interval,
                start: spec.start + jitter,
                stop: spec.stop,
            });
        }
        FlowSet { flows }
    }

    #[inline]
    pub fn flows(&self) -> &[CbrFlow] {
        &self.flows
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    pub fn get(&self, id: FlowId) -> Option<&CbrFlow> {
        self.flows.iter().find(|f| f.id == id)
    }

    /// Total offered load in packets per second.
    pub fn offered_load_pps(&self) -> f64 {
        self.flows.iter().map(|f| f.rate_pps()).sum()
    }

    /// Every host that is a source or destination of some flow.
    pub fn endpoint_hosts(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.flows.iter().flat_map(|f| [f.src, f.dst]).collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flow(rate: f64, start_s: u64, stop_s: u64) -> CbrFlow {
        CbrFlow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            packet_bytes: 512,
            interval: SimDuration::from_secs_f64(1.0 / rate),
            start: SimTime::from_secs(start_s),
            stop: SimTime::from_secs(stop_s),
        }
    }

    #[test]
    fn packet_schedule() {
        let f = flow(1.0, 10, 15);
        assert_eq!(f.packet_count(), 5);
        assert_eq!(f.packet_time(0), Some(SimTime::from_secs(10)));
        assert_eq!(f.packet_time(4), Some(SimTime::from_secs(14)));
        assert_eq!(f.packet_time(5), None);
        assert_eq!(f.rate_pps(), 1.0);
    }

    #[test]
    fn ten_pps_flow() {
        let f = flow(10.0, 0, 1);
        assert_eq!(f.packet_count(), 10);
        assert_eq!(f.packet_time(9), Some(SimTime::from_millis(900)));
        assert_eq!(f.packet_time(10), None);
    }

    #[test]
    fn empty_window_has_no_packets() {
        let f = flow(1.0, 10, 10);
        assert_eq!(f.packet_count(), 0);
        assert_eq!(f.packet_time(0), None);
    }

    #[test]
    fn random_set_avoids_self_flows() {
        let mut rng = StdRng::seed_from_u64(1);
        let hosts: Vec<NodeId> = (0..10).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let set = FlowSet::random(&mut rng, &hosts, &spec);
        assert_eq!(set.len(), 10);
        for f in set.flows() {
            assert_ne!(f.src, f.dst);
            assert!(hosts.contains(&f.src) && hosts.contains(&f.dst));
        }
        assert!((set.offered_load_pps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn random_set_is_seed_deterministic() {
        let hosts: Vec<NodeId> = (0..50).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let a = FlowSet::random(&mut StdRng::seed_from_u64(7), &hosts, &spec);
        let b = FlowSet::random(&mut StdRng::seed_from_u64(7), &hosts, &spec);
        assert_eq!(a.flows(), b.flows());
    }

    #[test]
    fn stagger_spreads_starts() {
        let mut rng = StdRng::seed_from_u64(3);
        let hosts: Vec<NodeId> = (0..20).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let set = FlowSet::random(&mut rng, &hosts, &spec);
        let starts: std::collections::HashSet<_> = set.flows().iter().map(|f| f.start).collect();
        assert!(starts.len() > 5, "starts should be jittered");
    }

    #[test]
    fn endpoint_hosts_dedups() {
        let f1 = flow(1.0, 0, 10);
        let mut f2 = flow(1.0, 0, 10);
        f2.id = FlowId(1);
        f2.src = NodeId(1);
        f2.dst = NodeId(0);
        let set = FlowSet::new(vec![f1, f2]);
        assert_eq!(set.endpoint_hosts(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(set.get(FlowId(1)).unwrap().src, NodeId(1));
    }
}
