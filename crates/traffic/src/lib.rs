//! Application traffic: constant-bit-rate flows.
//!
//! "Each source host sends a CBR flow with one or ten 512-byte packets per
//! second" (§4).  The evaluation's network load of 10 pkt/s is realized as
//! ten concurrent 1 pkt/s flows (matching Model 1's ten endpoint hosts);
//! both the per-flow rate and the flow count are parameters.

use radio::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use sim_engine::{SimDuration, SimTime};

/// Identifier of one CBR flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// On/off gating for a bursty source: `on` seconds of CBR emission at the
/// flow's rate, then silence until `period` has elapsed, repeating.  The
/// schedule stays closed-form (`packet_time` is a pure function of the
/// sequence number), so the world's send loop needs no burst awareness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Burst {
    /// Length of each emission window.
    pub on: SimDuration,
    /// Full cycle length (`on` + silence); `period >= on`.
    pub period: SimDuration,
}

impl Burst {
    pub fn new(on_s: f64, off_s: f64) -> Self {
        assert!(on_s > 0.0 && off_s >= 0.0, "burst needs on > 0, off >= 0");
        Burst {
            on: SimDuration::from_secs_f64(on_s),
            period: SimDuration::from_secs_f64(on_s + off_s),
        }
    }

    /// Packet slots per cycle at `interval` spacing (slots at 0,
    /// interval, 2·interval, ... strictly inside the on-window).
    fn slots(&self, interval: SimDuration) -> u64 {
        1 + (self.on.as_nanos() - 1) / interval.as_nanos()
    }
}

/// One constant-bit-rate flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CbrFlow {
    pub id: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Application payload per packet (512 B in the paper).
    pub packet_bytes: u32,
    /// Inter-packet gap (1 s for 1 pkt/s).
    pub interval: SimDuration,
    /// First packet instant.
    pub start: SimTime,
    /// No packets at or after this instant.
    pub stop: SimTime,
    /// On/off burst gating; `None` is plain CBR.
    pub burst: Option<Burst>,
}

impl CbrFlow {
    /// Packets per second while emitting (the on-window rate).
    pub fn rate_pps(&self) -> f64 {
        1.0 / self.interval.as_secs_f64()
    }

    /// Number of packets this flow emits in `[start, stop)`.
    pub fn packet_count(&self) -> u64 {
        if self.stop <= self.start {
            return 0;
        }
        let span = self.stop.since(self.start).as_nanos();
        match self.burst {
            // packets at start, start+i*interval, ... strictly before stop
            None => 1 + (span - 1) / self.interval.as_nanos(),
            Some(b) => {
                let ppc = b.slots(self.interval);
                let full = span / b.period.as_nanos();
                let rem = span % b.period.as_nanos();
                let tail = if rem == 0 {
                    0
                } else {
                    // slots strictly inside the partial window [0, min(rem, on))
                    let r = rem.min(b.on.as_nanos());
                    1 + (r - 1) / self.interval.as_nanos()
                };
                full * ppc + tail
            }
        }
    }

    /// Emission time of packet `seq` (0-based); `None` past the stop time.
    pub fn packet_time(&self, seq: u64) -> Option<SimTime> {
        let offset = match self.burst {
            None => seq.checked_mul(self.interval.as_nanos())?,
            Some(b) => {
                let ppc = b.slots(self.interval);
                let cycle = seq / ppc;
                let slot = seq % ppc;
                cycle
                    .checked_mul(b.period.as_nanos())?
                    .checked_add(slot.checked_mul(self.interval.as_nanos())?)?
            }
        };
        let at = self.start.checked_add(SimDuration::from_nanos(offset))?;
        (at < self.stop).then_some(at)
    }
}

/// Specification for building a randomized flow set.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    pub n_flows: usize,
    pub packet_bytes: u32,
    pub rate_pps: f64,
    pub start: SimTime,
    pub stop: SimTime,
    /// Small per-flow start jitter spread over one interval, so ten 1 pkt/s
    /// flows don't all fire in the same microsecond.
    pub stagger: bool,
}

impl FlowSpec {
    /// Paper default: 10 flows x 1 pkt/s x 512 B = 10 pkt/s offered load.
    pub fn paper_default(stop: SimTime) -> Self {
        FlowSpec {
            n_flows: 10,
            packet_bytes: 512,
            rate_pps: 1.0,
            start: SimTime::from_secs(5),
            stop,
            stagger: true,
        }
    }
}

/// A set of flows with distinct (src, dst) endpoints.
#[derive(Clone, Debug, Default)]
pub struct FlowSet {
    flows: Vec<CbrFlow>,
}

impl FlowSet {
    pub fn new(flows: Vec<CbrFlow>) -> Self {
        FlowSet { flows }
    }

    /// Build a random flow set over `endpoints`.
    ///
    /// Sources are distinct hosts; destinations are distinct from their
    /// source (self-flows are useless).  Endpoint hosts may appear in
    /// multiple flows if there are fewer endpoints than 2×flows, matching
    /// Model 1 where ten hosts serve as both sources and destinations.
    pub fn random<R: Rng>(rng: &mut R, endpoints: &[NodeId], spec: &FlowSpec) -> Self {
        assert!(endpoints.len() >= 2, "need at least two endpoint hosts");
        FlowSet::random_between(rng, endpoints, endpoints, spec)
    }

    /// Build a random flow set with sources drawn from `srcs` and
    /// destinations from `dsts` (the pools may overlap; self-flows are
    /// never produced).  `random` is the `srcs == dsts` special case —
    /// and delegates here with an identical draw sequence, so existing
    /// golden digests are unaffected.
    pub fn random_between<R: Rng>(rng: &mut R, srcs: &[NodeId], dsts: &[NodeId], spec: &FlowSpec) -> Self {
        let interval = SimDuration::from_secs_f64(1.0 / spec.rate_pps);
        // a source is usable only if some destination differs from it
        let mut pool: Vec<NodeId> = srcs
            .iter()
            .copied()
            .filter(|s| dsts.iter().any(|d| d != s))
            .collect();
        assert!(
            spec.n_flows == 0 || !pool.is_empty(),
            "no (source, destination) pair exists"
        );
        pool.shuffle(rng);
        let mut flows = Vec::with_capacity(spec.n_flows);
        for i in 0..spec.n_flows {
            // walk the shuffled pool round-robin for sources; pick any
            // different host as destination
            let src = pool[i % pool.len()];
            let dst = loop {
                let d = dsts[rng.gen_range(0..dsts.len())];
                if d != src {
                    break d;
                }
            };
            let jitter = if spec.stagger {
                SimDuration::from_nanos(rng.gen_range(0..interval.as_nanos().max(1)))
            } else {
                SimDuration::ZERO
            };
            flows.push(CbrFlow {
                id: FlowId(i as u32),
                src,
                dst,
                packet_bytes: spec.packet_bytes,
                interval,
                start: spec.start + jitter,
                stop: spec.stop,
                burst: None,
            });
        }
        FlowSet { flows }
    }

    /// Build a many-to-one flow set: one sink is drawn from `dsts`, and
    /// every flow converges on it from sources drawn round-robin out of
    /// `srcs` (minus the sink itself) — the classic data-collection
    /// pattern.
    pub fn many_to_one<R: Rng>(rng: &mut R, srcs: &[NodeId], dsts: &[NodeId], spec: &FlowSpec) -> Self {
        assert!(!dsts.is_empty(), "many_to_one needs a sink candidate");
        let sink = dsts[rng.gen_range(0..dsts.len())];
        let interval = SimDuration::from_secs_f64(1.0 / spec.rate_pps);
        let mut pool: Vec<NodeId> = srcs.iter().copied().filter(|s| *s != sink).collect();
        assert!(
            spec.n_flows == 0 || !pool.is_empty(),
            "many_to_one needs a source besides the sink"
        );
        pool.shuffle(rng);
        let mut flows = Vec::with_capacity(spec.n_flows);
        for i in 0..spec.n_flows {
            let jitter = if spec.stagger {
                SimDuration::from_nanos(rng.gen_range(0..interval.as_nanos().max(1)))
            } else {
                SimDuration::ZERO
            };
            flows.push(CbrFlow {
                id: FlowId(i as u32),
                src: pool[i % pool.len()],
                dst: sink,
                packet_bytes: spec.packet_bytes,
                interval,
                start: spec.start + jitter,
                stop: spec.stop,
                burst: None,
            });
        }
        FlowSet { flows }
    }

    /// The same flows gated by an on/off burst schedule.
    pub fn with_burst(mut self, burst: Burst) -> Self {
        for f in &mut self.flows {
            f.burst = Some(burst);
        }
        self
    }

    #[inline]
    pub fn flows(&self) -> &[CbrFlow] {
        &self.flows
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    pub fn get(&self, id: FlowId) -> Option<&CbrFlow> {
        self.flows.iter().find(|f| f.id == id)
    }

    /// Total offered load in packets per second.
    pub fn offered_load_pps(&self) -> f64 {
        self.flows.iter().map(|f| f.rate_pps()).sum()
    }

    /// Every host that is a source or destination of some flow.
    pub fn endpoint_hosts(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.flows.iter().flat_map(|f| [f.src, f.dst]).collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flow(rate: f64, start_s: u64, stop_s: u64) -> CbrFlow {
        CbrFlow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            packet_bytes: 512,
            interval: SimDuration::from_secs_f64(1.0 / rate),
            start: SimTime::from_secs(start_s),
            stop: SimTime::from_secs(stop_s),
            burst: None,
        }
    }

    #[test]
    fn packet_schedule() {
        let f = flow(1.0, 10, 15);
        assert_eq!(f.packet_count(), 5);
        assert_eq!(f.packet_time(0), Some(SimTime::from_secs(10)));
        assert_eq!(f.packet_time(4), Some(SimTime::from_secs(14)));
        assert_eq!(f.packet_time(5), None);
        assert_eq!(f.rate_pps(), 1.0);
    }

    #[test]
    fn ten_pps_flow() {
        let f = flow(10.0, 0, 1);
        assert_eq!(f.packet_count(), 10);
        assert_eq!(f.packet_time(9), Some(SimTime::from_millis(900)));
        assert_eq!(f.packet_time(10), None);
    }

    #[test]
    fn empty_window_has_no_packets() {
        let f = flow(1.0, 10, 10);
        assert_eq!(f.packet_count(), 0);
        assert_eq!(f.packet_time(0), None);
    }

    #[test]
    fn random_set_avoids_self_flows() {
        let mut rng = StdRng::seed_from_u64(1);
        let hosts: Vec<NodeId> = (0..10).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let set = FlowSet::random(&mut rng, &hosts, &spec);
        assert_eq!(set.len(), 10);
        for f in set.flows() {
            assert_ne!(f.src, f.dst);
            assert!(hosts.contains(&f.src) && hosts.contains(&f.dst));
        }
        assert!((set.offered_load_pps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn random_set_is_seed_deterministic() {
        let hosts: Vec<NodeId> = (0..50).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let a = FlowSet::random(&mut StdRng::seed_from_u64(7), &hosts, &spec);
        let b = FlowSet::random(&mut StdRng::seed_from_u64(7), &hosts, &spec);
        assert_eq!(a.flows(), b.flows());
    }

    #[test]
    fn stagger_spreads_starts() {
        let mut rng = StdRng::seed_from_u64(3);
        let hosts: Vec<NodeId> = (0..20).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let set = FlowSet::random(&mut rng, &hosts, &spec);
        let starts: std::collections::HashSet<_> = set.flows().iter().map(|f| f.start).collect();
        assert!(starts.len() > 5, "starts should be jittered");
    }

    #[test]
    fn bursty_schedule_is_closed_form_and_consistent() {
        // 2 pkt/s, 3 s on / 7 s off: 6 slots per 10 s cycle
        let mut f = flow(2.0, 0, 25);
        f.burst = Some(Burst::new(3.0, 7.0));
        // first cycle: 0, 0.5, 1.0, 1.5, 2.0, 2.5 — then silence to 10 s
        assert_eq!(f.packet_time(0), Some(SimTime::ZERO));
        assert_eq!(f.packet_time(5), Some(SimTime::from_millis(2500)));
        assert_eq!(f.packet_time(6), Some(SimTime::from_secs(10)));
        assert_eq!(f.packet_time(11), Some(SimTime::from_millis(12_500)));
        assert_eq!(f.packet_time(12), Some(SimTime::from_secs(20)));
        // 25 s span = 2 full cycles (12 pkts) + slots in [20, 23): 6 more
        assert_eq!(f.packet_count(), 18);
        // packet_count agrees with the closed form exactly
        let mut n = 0;
        while f.packet_time(n).is_some() {
            n += 1;
        }
        assert_eq!(n, f.packet_count());
        // times strictly increase
        for s in 1..n {
            assert!(f.packet_time(s).unwrap() > f.packet_time(s - 1).unwrap());
        }
    }

    #[test]
    fn burst_with_sparse_rate_still_emits() {
        // interval (2 s) longer than the on-window (1 s): one slot per cycle
        let mut f = flow(0.5, 0, 20);
        f.burst = Some(Burst::new(1.0, 4.0));
        assert_eq!(f.packet_time(0), Some(SimTime::ZERO));
        assert_eq!(f.packet_time(1), Some(SimTime::from_secs(5)));
        assert_eq!(f.packet_count(), 4);
    }

    #[test]
    fn random_between_respects_the_pools() {
        let mut rng = StdRng::seed_from_u64(5);
        let srcs: Vec<NodeId> = (0..8).map(NodeId).collect();
        let dsts: Vec<NodeId> = (8..10).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let set = FlowSet::random_between(&mut rng, &srcs, &dsts, &spec);
        assert_eq!(set.len(), 10);
        for f in set.flows() {
            assert!(srcs.contains(&f.src));
            assert!(dsts.contains(&f.dst));
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn random_between_equals_random_on_a_shared_pool() {
        // the delegation keeps the draw sequence — and therefore every
        // digest downstream — bit-identical
        let hosts: Vec<NodeId> = (0..30).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let a = FlowSet::random(&mut StdRng::seed_from_u64(9), &hosts, &spec);
        let b = FlowSet::random_between(&mut StdRng::seed_from_u64(9), &hosts, &hosts, &spec);
        assert_eq!(a.flows(), b.flows());
    }

    #[test]
    fn many_to_one_converges_on_a_single_sink() {
        let mut rng = StdRng::seed_from_u64(2);
        let srcs: Vec<NodeId> = (0..12).map(NodeId).collect();
        let dsts: Vec<NodeId> = (10..13).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(100));
        let set = FlowSet::many_to_one(&mut rng, &srcs, &dsts, &spec);
        let sink = set.flows()[0].dst;
        assert!(dsts.contains(&sink));
        for f in set.flows() {
            assert_eq!(f.dst, sink);
            assert_ne!(f.src, sink);
        }
    }

    #[test]
    fn with_burst_gates_every_flow() {
        let hosts: Vec<NodeId> = (0..6).map(NodeId).collect();
        let spec = FlowSpec::paper_default(SimTime::from_secs(50));
        let set =
            FlowSet::random(&mut StdRng::seed_from_u64(1), &hosts, &spec).with_burst(Burst::new(2.0, 8.0));
        for f in set.flows() {
            assert_eq!(f.burst, Some(Burst::new(2.0, 8.0)));
            // gated flows emit strictly fewer packets than plain CBR would
            let plain = CbrFlow { burst: None, ..*f };
            assert!(f.packet_count() < plain.packet_count());
        }
    }

    #[test]
    fn endpoint_hosts_dedups() {
        let f1 = flow(1.0, 0, 10);
        let mut f2 = flow(1.0, 0, 10);
        f2.id = FlowId(1);
        f2.src = NodeId(1);
        f2.dst = NodeId(0);
        let set = FlowSet::new(vec![f1, f2]);
        assert_eq!(set.endpoint_hosts(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(set.get(FlowId(1)).unwrap().src, NodeId(1));
    }
}
