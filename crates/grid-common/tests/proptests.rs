//! Property tests for the GRID-family shared machinery.

use grid_common::{elect_gateway, HelloInfo, RouteTable};
use manet::{EnergyLevel, GridCoord, NodeId, SimDuration, SimTime};
use proptest::prelude::*;

fn hello_strategy() -> impl Strategy<Value = HelloInfo> {
    (0u32..50, 0u8..3, 0.0..80.0f64).prop_map(|(id, lvl, dist)| HelloInfo {
        id: NodeId(id),
        grid: GridCoord::new(0, 0),
        gflag: false,
        level: match lvl {
            0 => EnergyLevel::Lower,
            1 => EnergyLevel::Boundary,
            _ => EnergyLevel::Upper,
        },
        dist,
    })
}

proptest! {
    /// The election is order-independent: every permutation of the same
    /// candidate set yields the same winner (all hosts agree, §3.1).
    #[test]
    fn election_is_permutation_invariant(
        mut cands in proptest::collection::vec(hello_strategy(), 1..12),
        rot in 0usize..12
    ) {
        let a = elect_gateway(cands.iter(), true);
        let k = rot % cands.len();
        cands.rotate_left(k);
        let b = elect_gateway(cands.iter(), true);
        cands.reverse();
        let c = elect_gateway(cands.iter(), true);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
    }

    /// The winner is never beaten by anyone in the set (it is a maximum of
    /// the strict order).
    #[test]
    fn winner_is_unbeaten(cands in proptest::collection::vec(hello_strategy(), 1..12)) {
        let winner_id = elect_gateway(cands.iter(), true).unwrap();
        // the *first* candidate entry carrying the winning id (duplicates
        // by id may exist in the raw vec; the election dedups by beats)
        let winner = cands.iter().find(|c| c.id == winner_id).unwrap();
        for c in &cands {
            prop_assert!(!(c.beats(winner, true) && winner.beats(c, true)), "beats not antisymmetric");
        }
    }

    /// Energy-aware elections never pick a lower level when a strictly
    /// higher level is available (rule 1 dominates).
    #[test]
    fn rule1_dominates(cands in proptest::collection::vec(hello_strategy(), 1..12)) {
        let winner_id = elect_gateway(cands.iter(), true).unwrap();
        let winner_level = cands.iter().find(|c| c.id == winner_id).map(|c| c.level).unwrap();
        let best_level = cands.iter().map(|c| c.level).max().unwrap();
        // the winner must carry the best level present... except when the
        // same id also appears with another level (the last replaces the
        // candidate in real protocol state; raw vecs here may hold both,
        // in which case any of that id's entries may have won)
        let ids_at_best: Vec<NodeId> =
            cands.iter().filter(|c| c.level == best_level).map(|c| c.id).collect();
        prop_assert!(
            winner_level == best_level || ids_at_best.contains(&winner_id),
            "winner level {winner_level:?} but best present {best_level:?}"
        );
    }

    /// Route tables never resurrect expired entries and never lose a fresh
    /// upsert.
    #[test]
    fn route_table_freshness(ops in proptest::collection::vec((0u32..8, 0u32..6, 0u32..10, 0u64..100), 1..50)) {
        let mut rt = RouteTable::new(SimDuration::from_secs(30));
        let mut clock = 0u64;
        for (dst, via, seq, dt) in ops {
            clock += dt;
            let now = SimTime::from_secs(clock);
            let installed = rt.upsert(NodeId(dst), GridCoord::new(via as i32, 0), NodeId(via), seq, now);
            let entry = rt.lookup(NodeId(dst), now);
            // after any upsert there is a valid entry (either ours or a
            // strictly fresher survivor)
            prop_assert!(entry.is_some());
            let e = entry.unwrap();
            prop_assert!(e.expires > now);
            if installed {
                prop_assert_eq!(e.seq, seq);
            } else {
                prop_assert!(e.seq >= seq);
            }
        }
    }
}
