//! Search-area confinement strategies for route discovery.
//!
//! §3.3 confines each RREQ to a `range` "to alleviate the broadcast storm
//! problem", noting that "several ways of confining the searching area
//! have been presented in \[2\]" (the GRID paper).  This module implements
//! the catalogue so the policy is a configuration choice:
//!
//! * [`SearchStrategy::CoveringRect`] — the smallest rectangle covering
//!   the source and destination grids (the paper's running example);
//! * [`SearchStrategy::PaddedRect`] — the covering rectangle widened by a
//!   fixed margin of cells (tolerates a destination that drifted);
//! * [`SearchStrategy::Strip`] — all cells within a perpendicular
//!   distance of the source→destination line (a "thick corridor", cheaper
//!   than the rectangle for diagonal routes);
//! * [`SearchStrategy::Global`] — no confinement (the fallback §3.3
//!   mandates when confined rounds fail or no location is known).

use manet::{GridCoord, GridMap, GridRect};

/// How to build the RREQ `range` from the requester's grid and the
/// destination's last known grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SearchStrategy {
    /// Smallest rectangle covering source and destination grids.
    CoveringRect,
    /// Covering rectangle padded by `margin` cells on every side.
    PaddedRect { margin: i32 },
    /// Cells within `half_width` cells of the source→destination line.
    /// Realized as the padded covering rectangle *plus* a strip membership
    /// test at RREQ processing time; `range_for` returns the bounding
    /// rectangle and [`SearchStrategy::admits`] applies the strip cut.
    Strip { half_width: i32 },
    /// Search everywhere.
    Global,
}

impl SearchStrategy {
    /// The rectangle to embed in the RREQ.
    pub fn range_for(&self, src: GridCoord, dst: Option<GridCoord>) -> GridRect {
        let Some(dst) = dst else {
            return GridRect::everywhere();
        };
        match *self {
            SearchStrategy::CoveringRect => GridRect::covering(src, dst),
            SearchStrategy::PaddedRect { margin } => GridRect::covering(src, dst).expanded(margin.max(0)),
            SearchStrategy::Strip { half_width } => GridRect::covering(src, dst).expanded(half_width.max(0)),
            SearchStrategy::Global => GridRect::everywhere(),
        }
    }

    /// Whether a gateway in `cell` participates in a search from `src`
    /// toward `dst` (beyond the rectangle test the RREQ itself carries).
    pub fn admits(&self, cell: GridCoord, src: GridCoord, dst: Option<GridCoord>) -> bool {
        match (*self, dst) {
            (SearchStrategy::Strip { half_width }, Some(dst)) => {
                cells_within_strip(cell, src, dst, half_width.max(0) as f64 + 0.5)
            }
            _ => true,
        }
    }

    /// Expected number of participating cells for a `src`→`dst` search on
    /// `map` — the broadcast-storm cost the strategy trades against
    /// robustness (used by tests and the ablation report).
    pub fn cell_cost(&self, map: &GridMap, src: GridCoord, dst: Option<GridCoord>) -> u64 {
        let rect = self.range_for(src, dst);
        if rect.is_everywhere() {
            return map.cell_count() as u64;
        }
        rect.cells()
            .filter(|c| map.contains_cell(*c) && self.admits(*c, src, dst))
            .count() as u64
    }
}

/// Distance from the center of `cell` to the segment `src`→`dst`, in cell
/// units, compared against `limit`.
fn cells_within_strip(cell: GridCoord, src: GridCoord, dst: GridCoord, limit: f64) -> bool {
    let (px, py) = (cell.x as f64, cell.y as f64);
    let (ax, ay) = (src.x as f64, src.y as f64);
    let (bx, by) = (dst.x as f64, dst.y as f64);
    let (dx, dy) = (bx - ax, by - ay);
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq == 0.0 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    let (ex, ey) = (px - cx, py - cy);
    (ex * ex + ey * ey).sqrt() <= limit
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: GridCoord = GridCoord { x: 1, y: 1 };
    const D: GridCoord = GridCoord { x: 5, y: 3 };

    #[test]
    fn covering_rect_matches_paper_example() {
        let r = SearchStrategy::CoveringRect.range_for(S, Some(D));
        assert_eq!(r, GridRect::covering(S, D));
        assert_eq!(r.cell_count(), 15);
        assert!(SearchStrategy::CoveringRect.admits(GridCoord::new(3, 2), S, Some(D)));
    }

    #[test]
    fn padded_rect_expands() {
        let r = SearchStrategy::PaddedRect { margin: 1 }.range_for(S, Some(D));
        assert!(r.contains(GridCoord::new(0, 0)));
        assert!(r.contains(GridCoord::new(6, 4)));
        assert_eq!(r.cell_count(), 7 * 5);
    }

    #[test]
    fn strip_admits_corridor_only() {
        let strat = SearchStrategy::Strip { half_width: 1 };
        // on the line
        assert!(strat.admits(GridCoord::new(3, 2), S, Some(D)));
        // adjacent to the line
        assert!(strat.admits(GridCoord::new(3, 3), S, Some(D)));
        // far off the corridor (inside the bounding rect of a padded search
        // but beyond the strip)
        assert!(!strat.admits(GridCoord::new(1, 4), S, Some(D)));
    }

    #[test]
    fn unknown_destination_is_global() {
        for strat in [
            SearchStrategy::CoveringRect,
            SearchStrategy::PaddedRect { margin: 2 },
            SearchStrategy::Strip { half_width: 1 },
        ] {
            assert!(strat.range_for(S, None).is_everywhere());
            assert!(strat.admits(GridCoord::new(9, 9), S, None));
        }
    }

    #[test]
    fn cost_ordering_strip_leq_rect_leq_padded_leq_global() {
        let map = GridMap::paper_default();
        let rect = SearchStrategy::CoveringRect.cell_cost(&map, S, Some(D));
        let padded = SearchStrategy::PaddedRect { margin: 1 }.cell_cost(&map, S, Some(D));
        let strip = SearchStrategy::Strip { half_width: 1 }.cell_cost(&map, S, Some(D));
        let global = SearchStrategy::Global.cell_cost(&map, S, Some(D));
        assert!(strip <= padded, "strip {strip} vs padded {padded}");
        assert!(rect <= padded);
        assert!(padded <= global);
        assert_eq!(global, 100);
    }

    #[test]
    fn degenerate_same_cell_search() {
        let strat = SearchStrategy::Strip { half_width: 0 };
        assert!(strat.admits(S, S, Some(S)));
        let r = strat.range_for(S, Some(S));
        assert!(r.contains(S));
    }
}
