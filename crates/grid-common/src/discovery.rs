//! Route discovery packets (§3.3) and duplicate suppression.

use manet::{AppPacket, GridCoord, GridRect, NodeId, WireSize};
use std::collections::{HashSet, VecDeque};

/// Route request — `RREQ(S, s_seq, D, d_seq, id, range)` plus the grid the
/// packet was last rebroadcast from (carried so receivers can set up the
/// reverse pointer "to the grid coordinate of the previous sending
/// gateway").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rreq {
    pub src: NodeId,
    pub s_seq: u32,
    pub dst: NodeId,
    pub d_seq: u32,
    /// Per-source request id; `(src, id)` detects duplicates.
    pub id: u32,
    /// The confined search area; gateways outside ignore the packet.
    pub range: GridRect,
    /// Grid of the gateway that (re)broadcast this copy.
    pub last_grid: GridCoord,
}

impl WireSize for Rreq {
    fn wire_bytes(&self) -> u32 {
        // src 4 + s_seq 4 + dst 4 + d_seq 4 + id 4 + range 16 + last_grid 8
        44
    }
}

/// Route reply — `RREP(S, D, d_seq)` unicast hop-by-hop along the reverse
/// path, plus the replying/forwarding gateway's grid for the forward
/// pointer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rrep {
    pub src: NodeId,
    pub dst: NodeId,
    pub d_seq: u32,
    /// Grid of the gateway that sent this copy (the receiver's next hop
    /// toward `dst`).
    pub from_grid: GridCoord,
    /// The destination's own grid, carried unchanged along the reverse
    /// path — every relaying gateway (and finally the source) learns D's
    /// location, so the *next* discovery can confine its search area to
    /// the covering rectangle (§3.3).
    pub dst_grid: GridCoord,
}

impl WireSize for Rrep {
    fn wire_bytes(&self) -> u32 {
        // src 4 + dst 4 + d_seq 4 + from_grid 8 + dst_grid 8
        28
    }
}

/// A data packet in transit through the grid overlay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataMsg {
    pub packet: AppPacket,
    pub src: NodeId,
    pub dst: NodeId,
    /// The grid this copy is addressed to (its gateway forwards it); lets
    /// a broadcast fallback reach the right gateway when the concrete
    /// gateway node is unknown.
    pub via_grid: GridCoord,
}

impl WireSize for DataMsg {
    fn wire_bytes(&self) -> u32 {
        // payload + src 4 + dst 4 + via 8 + flow/seq 12
        self.packet.bytes + 28
    }
}

/// Bounded duplicate-RREQ filter keyed on `(src, id)`.
#[derive(Clone, Debug)]
pub struct RreqSeen {
    set: HashSet<(NodeId, u32)>,
    order: VecDeque<(NodeId, u32)>,
    cap: usize,
}

impl Default for RreqSeen {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl RreqSeen {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        RreqSeen {
            set: HashSet::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Record `(src, id)`; returns true if it was new (process it), false
    /// if it is a duplicate (ignore it).
    pub fn insert(&mut self, src: NodeId, id: u32) -> bool {
        if !self.set.insert((src, id)) {
            return false;
        }
        self.order.push_back((src, id));
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    pub fn contains(&self, src: NodeId, id: u32) -> bool {
        self.set.contains(&(src, id))
    }

    pub fn len(&self) -> usize {
        self.set.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_suppression() {
        let mut seen = RreqSeen::default();
        assert!(seen.insert(NodeId(1), 0));
        assert!(!seen.insert(NodeId(1), 0));
        assert!(seen.insert(NodeId(1), 1));
        assert!(seen.insert(NodeId(2), 0));
        assert!(seen.contains(NodeId(1), 0));
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn bounded_capacity_evicts_oldest() {
        let mut seen = RreqSeen::new(2);
        seen.insert(NodeId(1), 1);
        seen.insert(NodeId(1), 2);
        seen.insert(NodeId(1), 3); // evicts (1,1)
        assert!(!seen.contains(NodeId(1), 1));
        assert!(seen.contains(NodeId(1), 2));
        assert!(seen.contains(NodeId(1), 3));
        // an evicted id would be processed again — acceptable, it is stale
        assert!(seen.insert(NodeId(1), 1));
    }

    #[test]
    fn wire_sizes() {
        let rreq = Rreq {
            src: NodeId(0),
            s_seq: 0,
            dst: NodeId(1),
            d_seq: 0,
            id: 0,
            range: GridRect::covering(GridCoord::new(0, 0), GridCoord::new(1, 1)),
            last_grid: GridCoord::new(0, 0),
        };
        assert_eq!(rreq.wire_bytes(), 44);
        let rrep = Rrep {
            src: NodeId(0),
            dst: NodeId(1),
            d_seq: 0,
            from_grid: GridCoord::new(0, 0),
            dst_grid: GridCoord::new(0, 0),
        };
        assert_eq!(rrep.wire_bytes(), 28);
        let data = DataMsg {
            packet: AppPacket {
                flow: 0,
                seq: 0,
                bytes: 512,
            },
            src: NodeId(0),
            dst: NodeId(1),
            via_grid: GridCoord::new(0, 0),
        };
        assert_eq!(data.wire_bytes(), 540);
    }

    #[test]
    fn search_range_confinement_example() {
        // the Fig. 2 scenario: search confined to the rectangle over
        // S=(1,1), D=(5,3); gateway in (0,2) must ignore the RREQ
        let range = GridRect::covering(GridCoord::new(1, 1), GridCoord::new(5, 3));
        assert!(range.contains(GridCoord::new(2, 2)));
        assert!(!range.contains(GridCoord::new(0, 2)));
    }
}
