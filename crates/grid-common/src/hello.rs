//! The HELLO message and the gateway-election rules (§3, §3.1).

use manet::{EnergyLevel, GridCoord, NodeId, WireSize};

/// The five HELLO fields of §3.1: id, grid, gflag, level, dist.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HelloInfo {
    /// Host ID (also the paging sequence).
    pub id: NodeId,
    /// Grid coordinate of the sender.
    pub grid: GridCoord,
    /// Gateway flag — set when the sender is (declaring itself) the
    /// gateway of `grid`.
    pub gflag: bool,
    /// Remaining battery-capacity level.
    pub level: EnergyLevel,
    /// Distance to the geographic center of `grid`, meters.
    pub dist: f64,
}

impl WireSize for HelloInfo {
    fn wire_bytes(&self) -> u32 {
        // id 4 + grid 8 + gflag/level packed 1 + dist 4 + header 3
        20
    }
}

impl HelloInfo {
    /// Election key: better gateways sort first.
    ///
    /// Rule 1 — higher battery level wins (when `energy_aware`).
    /// Rule 2 — among equals, smaller distance to grid center wins.
    /// Rule 3 — remaining ties break on smaller host ID.
    fn election_rank(&self, energy_aware: bool) -> (u8, f64, u32) {
        let level_rank = if energy_aware {
            match self.level {
                EnergyLevel::Upper => 0u8,
                EnergyLevel::Boundary => 1,
                EnergyLevel::Lower => 2,
            }
        } else {
            0
        };
        (level_rank, self.dist, self.id.0)
    }

    /// True if `self` beats `other` under the election rules.
    pub fn beats(&self, other: &HelloInfo, energy_aware: bool) -> bool {
        let a = self.election_rank(energy_aware);
        let b = other.election_rank(energy_aware);
        match a.0.cmp(&b.0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match a.1.total_cmp(&b.1) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a.2 < b.2,
            },
        }
    }
}

/// Apply the gateway-election rules to a candidate set; returns the
/// winner's id (`None` on an empty set).  Every host computes this from the
/// same HELLO set, so all hosts in a grid agree on the winner.
///
/// ```
/// use grid_common::{elect_gateway, HelloInfo};
/// use manet::{EnergyLevel, GridCoord, NodeId};
///
/// let grid = GridCoord::new(2, 2);
/// let cands = [
///     HelloInfo { id: NodeId(5), grid, gflag: false, level: EnergyLevel::Boundary, dist: 3.0 },
///     HelloInfo { id: NodeId(9), grid, gflag: false, level: EnergyLevel::Upper, dist: 40.0 },
/// ];
/// // rule 1: the upper-level host wins despite being farther out
/// assert_eq!(elect_gateway(cands.iter(), true), Some(NodeId(9)));
/// // GRID ignores energy: the center-closest host wins
/// assert_eq!(elect_gateway(cands.iter(), false), Some(NodeId(5)));
/// ```
pub fn elect_gateway<'a, I>(candidates: I, energy_aware: bool) -> Option<NodeId>
where
    I: IntoIterator<Item = &'a HelloInfo>,
{
    let mut best: Option<&HelloInfo> = None;
    for c in candidates {
        best = match best {
            None => Some(c),
            Some(b) if c.beats(b, energy_aware) => Some(c),
            other => other,
        };
    }
    best.map(|b| b.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(id: u32, level: EnergyLevel, dist: f64) -> HelloInfo {
        HelloInfo {
            id: NodeId(id),
            grid: GridCoord::new(0, 0),
            gflag: false,
            level,
            dist,
        }
    }

    #[test]
    fn rule1_higher_level_wins() {
        let cands = [h(1, EnergyLevel::Boundary, 1.0), h(2, EnergyLevel::Upper, 60.0)];
        assert_eq!(elect_gateway(cands.iter(), true), Some(NodeId(2)));
    }

    #[test]
    fn rule2_distance_breaks_level_ties() {
        let cands = [h(5, EnergyLevel::Upper, 30.0), h(2, EnergyLevel::Upper, 10.0)];
        assert_eq!(elect_gateway(cands.iter(), true), Some(NodeId(2)));
    }

    #[test]
    fn rule3_smallest_id_breaks_full_ties() {
        let cands = [
            h(9, EnergyLevel::Upper, 10.0),
            h(3, EnergyLevel::Upper, 10.0),
            h(7, EnergyLevel::Upper, 10.0),
        ];
        assert_eq!(elect_gateway(cands.iter(), true), Some(NodeId(3)));
    }

    #[test]
    fn energy_unaware_mode_ignores_levels() {
        // GRID: node 1 is nearly empty but closest to the center — it wins
        let cands = [h(1, EnergyLevel::Lower, 5.0), h(2, EnergyLevel::Upper, 20.0)];
        assert_eq!(elect_gateway(cands.iter(), false), Some(NodeId(1)));
        // the same set under ECGRID rules elects node 2
        assert_eq!(elect_gateway(cands.iter(), true), Some(NodeId(2)));
    }

    #[test]
    fn empty_candidate_set_elects_nobody() {
        assert_eq!(elect_gateway([].iter(), true), None);
    }

    #[test]
    fn election_is_order_independent() {
        let a = [
            h(4, EnergyLevel::Upper, 12.0),
            h(2, EnergyLevel::Boundary, 1.0),
            h(9, EnergyLevel::Upper, 12.0),
        ];
        let mut b = a;
        b.reverse();
        assert_eq!(elect_gateway(a.iter(), true), elect_gateway(b.iter(), true));
        assert_eq!(elect_gateway(a.iter(), true), Some(NodeId(4)));
    }

    #[test]
    fn beats_is_a_strict_order() {
        let x = h(1, EnergyLevel::Upper, 5.0);
        let y = h(2, EnergyLevel::Upper, 5.0);
        assert!(x.beats(&y, true));
        assert!(!y.beats(&x, true));
        assert!(!x.beats(&x, true));
    }

    #[test]
    fn wire_size_is_compact() {
        assert_eq!(h(1, EnergyLevel::Upper, 0.0).wire_bytes(), 20);
    }
}
