//! The neighbour-gateway cache.
//!
//! A gateway at a grid center is in radio range of every gateway of its
//! eight neighbouring grids (the `d = sqrt(2) r / 3` rule), so it overhears
//! their periodic HELLOs.  This cache maps grid coordinates to the last
//! known gateway node of that grid, with staleness expiry.

use manet::{GridCoord, NodeId, SimDuration, SimTime};
use std::collections::HashMap;

/// Grid → (gateway node, last heard) with TTL.
#[derive(Clone, Debug)]
pub struct NeighborGateways {
    map: HashMap<GridCoord, (NodeId, SimTime)>,
    ttl: SimDuration,
}

impl NeighborGateways {
    pub fn new(ttl: SimDuration) -> Self {
        NeighborGateways {
            map: HashMap::new(),
            ttl,
        }
    }

    /// Record a gateway HELLO from `grid`.
    pub fn note(&mut self, grid: GridCoord, gw: NodeId, now: SimTime) {
        self.map.insert(grid, (gw, now));
    }

    /// Current gateway of `grid`, if fresh.
    pub fn get(&self, grid: GridCoord, now: SimTime) -> Option<NodeId> {
        self.map
            .get(&grid)
            .filter(|(_, heard)| now.since(*heard) < self.ttl)
            .map(|(id, _)| *id)
    }

    /// Forget a node everywhere (it retired or was seen without gflag).
    pub fn forget_node(&mut self, node: NodeId) {
        self.map.retain(|_, (id, _)| *id != node);
    }

    /// Forget a grid's entry.
    pub fn forget_grid(&mut self, grid: GridCoord) {
        self.map.remove(&grid);
    }

    /// Drop stale entries.
    pub fn purge(&mut self, now: SimTime) {
        let ttl = self.ttl;
        self.map.retain(|_, (_, heard)| now.since(*heard) < ttl);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    const G: GridCoord = GridCoord { x: 2, y: 3 };

    #[test]
    fn note_and_get_with_ttl() {
        let mut n = NeighborGateways::new(SimDuration::from_secs(3));
        n.note(G, NodeId(7), t(10));
        assert_eq!(n.get(G, t(12)), Some(NodeId(7)));
        assert_eq!(n.get(G, t(13)), None, "stale after ttl");
    }

    #[test]
    fn newer_note_replaces() {
        let mut n = NeighborGateways::new(SimDuration::from_secs(3));
        n.note(G, NodeId(7), t(10));
        n.note(G, NodeId(9), t(11));
        assert_eq!(n.get(G, t(12)), Some(NodeId(9)));
    }

    #[test]
    fn forget_node_clears_all_its_grids() {
        let mut n = NeighborGateways::new(SimDuration::from_secs(30));
        n.note(G, NodeId(7), t(0));
        n.note(GridCoord::new(0, 0), NodeId(7), t(0));
        n.note(GridCoord::new(1, 1), NodeId(8), t(0));
        n.forget_node(NodeId(7));
        assert_eq!(n.get(G, t(1)), None);
        assert_eq!(n.get(GridCoord::new(1, 1), t(1)), Some(NodeId(8)));
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn purge_drops_stale() {
        let mut n = NeighborGateways::new(SimDuration::from_secs(3));
        n.note(G, NodeId(7), t(0));
        n.note(GridCoord::new(1, 1), NodeId(8), t(5));
        n.purge(t(6));
        assert!(n.get(G, t(6)).is_none());
        assert_eq!(n.len(), 1);
        n.forget_grid(GridCoord::new(1, 1));
        assert!(n.is_empty());
    }
}
