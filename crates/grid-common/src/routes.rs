//! Grid-by-grid routing tables (§3.3).
//!
//! Entries map a destination *host* to the neighbouring *grid* through
//! which it is reachable (plus the concrete gateway node the entry was
//! learned from, so data can be unicast without an extra lookup).  Entries
//! carry the destination sequence number for freshness comparison and an
//! expiry time.

use manet::{GridCoord, NodeId, SimDuration, SimTime};
use std::collections::HashMap;

/// One routing-table entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteEntry {
    /// Next-hop grid toward the destination.
    pub next_grid: GridCoord,
    /// The gateway node this entry was learned from (next-hop node).
    pub via_node: NodeId,
    /// Destination sequence number (freshness, §3.3).
    pub seq: u32,
    /// Entry expiry.
    pub expires: SimTime,
}

/// Serializable snapshot: the `rtab` transferred by RETIRE / gateway
/// handoff messages.
pub type RouteSnapshot = Vec<(NodeId, RouteEntry)>;

/// The gateway's routing table.
#[derive(Clone, Debug)]
pub struct RouteTable {
    map: HashMap<NodeId, RouteEntry>,
    ttl: SimDuration,
}

impl RouteTable {
    /// `ttl` is the lifetime of newly-installed entries.
    pub fn new(ttl: SimDuration) -> Self {
        RouteTable {
            map: HashMap::new(),
            ttl,
        }
    }

    #[inline]
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Install/refresh a route to `dst`.  An existing entry is replaced
    /// only by a fresher one (higher seq) or an equally-fresh one (which
    /// refreshes the expiry / moves to a newer neighbour).
    pub fn upsert(
        &mut self,
        dst: NodeId,
        next_grid: GridCoord,
        via_node: NodeId,
        seq: u32,
        now: SimTime,
    ) -> bool {
        let entry = RouteEntry {
            next_grid,
            via_node,
            seq,
            expires: now + self.ttl,
        };
        match self.map.get(&dst) {
            Some(old) if old.seq > seq && old.expires > now => false,
            _ => {
                self.map.insert(dst, entry);
                true
            }
        }
    }

    /// Valid (unexpired) route to `dst`.
    pub fn lookup(&self, dst: NodeId, now: SimTime) -> Option<RouteEntry> {
        self.map.get(&dst).copied().filter(|e| e.expires > now)
    }

    /// Drop the route to `dst` (route error handling).
    pub fn remove(&mut self, dst: NodeId) -> Option<RouteEntry> {
        self.map.remove(&dst)
    }

    /// Drop every route through the given next-hop node (it retired/died).
    pub fn remove_via(&mut self, via: NodeId) {
        self.map.retain(|_, e| e.via_node != via);
    }

    /// Remove expired entries.
    pub fn purge(&mut self, now: SimTime) {
        self.map.retain(|_, e| e.expires > now);
    }

    /// Snapshot for a RETIRE / handoff transfer.
    pub fn snapshot(&self) -> RouteSnapshot {
        let mut v: RouteSnapshot = self.map.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Install a received snapshot, keeping fresher local entries.
    pub fn install(&mut self, snap: &RouteSnapshot, now: SimTime) {
        for (dst, e) in snap {
            if e.expires <= now {
                continue;
            }
            match self.map.get(dst) {
                Some(old) if old.seq > e.seq && old.expires > now => {}
                _ => {
                    self.map.insert(*dst, *e);
                }
            }
        }
    }

    /// Estimated wire size of the snapshot in a RETIRE message.
    pub fn snapshot_wire_bytes(&self) -> u32 {
        // dst 4 + grid 8 + via 4 + seq 4 = 20 per entry
        20 * self.map.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RouteTable {
        RouteTable::new(SimDuration::from_secs(30))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    const G1: GridCoord = GridCoord { x: 1, y: 0 };
    const G2: GridCoord = GridCoord { x: 2, y: 0 };

    #[test]
    fn upsert_and_lookup() {
        let mut rt = table();
        assert!(rt.upsert(NodeId(9), G1, NodeId(5), 1, t(0)));
        let e = rt.lookup(NodeId(9), t(10)).unwrap();
        assert_eq!(e.next_grid, G1);
        assert_eq!(e.via_node, NodeId(5));
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn entries_expire() {
        let mut rt = table();
        rt.upsert(NodeId(9), G1, NodeId(5), 1, t(0));
        assert!(rt.lookup(NodeId(9), t(29)).is_some());
        assert!(rt.lookup(NodeId(9), t(30)).is_none());
        rt.purge(t(31));
        assert!(rt.is_empty());
    }

    #[test]
    fn stale_seq_does_not_replace_fresh_route() {
        let mut rt = table();
        rt.upsert(NodeId(9), G1, NodeId(5), 5, t(0));
        assert!(!rt.upsert(NodeId(9), G2, NodeId(6), 3, t(1)));
        assert_eq!(rt.lookup(NodeId(9), t(2)).unwrap().next_grid, G1);
        // but a stale entry that has *expired* can be replaced
        assert!(rt.upsert(NodeId(9), G2, NodeId(6), 3, t(40)));
    }

    #[test]
    fn equal_seq_refreshes() {
        let mut rt = table();
        rt.upsert(NodeId(9), G1, NodeId(5), 5, t(0));
        assert!(rt.upsert(NodeId(9), G2, NodeId(6), 5, t(10)));
        let e = rt.lookup(NodeId(9), t(11)).unwrap();
        assert_eq!(e.next_grid, G2);
        assert_eq!(e.expires, t(40));
    }

    #[test]
    fn remove_via_clears_broken_neighbor() {
        let mut rt = table();
        rt.upsert(NodeId(1), G1, NodeId(5), 1, t(0));
        rt.upsert(NodeId(2), G2, NodeId(5), 1, t(0));
        rt.upsert(NodeId(3), G2, NodeId(6), 1, t(0));
        rt.remove_via(NodeId(5));
        assert!(rt.lookup(NodeId(1), t(1)).is_none());
        assert!(rt.lookup(NodeId(2), t(1)).is_none());
        assert!(rt.lookup(NodeId(3), t(1)).is_some());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut rt = table();
        rt.upsert(NodeId(1), G1, NodeId(5), 7, t(0));
        rt.upsert(NodeId(2), G2, NodeId(6), 2, t(0));
        let snap = rt.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(rt.snapshot_wire_bytes(), 40);

        let mut other = table();
        // other has a fresher route to 1 — must survive the install
        other.upsert(NodeId(1), G2, NodeId(9), 9, t(1));
        other.install(&snap, t(1));
        assert_eq!(other.lookup(NodeId(1), t(2)).unwrap().seq, 9);
        assert_eq!(other.lookup(NodeId(2), t(2)).unwrap().via_node, NodeId(6));
    }

    #[test]
    fn install_skips_expired_entries() {
        let mut rt = table();
        rt.upsert(NodeId(1), G1, NodeId(5), 7, t(0));
        let snap = rt.snapshot();
        let mut other = table();
        other.install(&snap, t(100)); // entries expired at t=30
        assert!(other.is_empty());
    }

    #[test]
    fn remove_returns_entry() {
        let mut rt = table();
        rt.upsert(NodeId(1), G1, NodeId(5), 7, t(0));
        assert!(rt.remove(NodeId(1)).is_some());
        assert!(rt.remove(NodeId(1)).is_none());
    }
}
