//! Machinery shared by the GRID protocol family (GRID and ECGRID):
//!
//! * the HELLO message and the paper's three gateway-election rules (§3);
//! * grid-by-grid routing tables with freshness and expiry (§3.3);
//! * route discovery packets (RREQ/RREP) with search-area confinement and
//!   duplicate suppression;
//! * the neighbour-gateway cache every gateway builds from overheard
//!   HELLOs.
//!
//! GRID uses the distance-only election (it is not energy-aware); ECGRID
//! uses the full three rules.  Both route identically: the routing table is
//! "established in a grid-by-grid manner, instead of in a host-by-host
//! manner" — entries name a destination *host* but point at a next-hop
//! *grid*.

pub mod discovery;
pub mod hello;
pub mod neighbors;
pub mod routes;
pub mod search;

pub use discovery::{DataMsg, Rrep, Rreq, RreqSeen};
pub use hello::{elect_gateway, HelloInfo};
pub use neighbors::NeighborGateways;
pub use routes::{RouteEntry, RouteSnapshot, RouteTable};
pub use search::SearchStrategy;
