//! Scenario definitions mirroring §4's simulation environment.

/// Which protocol a scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The GRID baseline (no energy conservation).
    Grid,
    /// The paper's contribution.
    Ecgrid,
    /// GAF over AODV, with Model-1 endpoints.
    Gaf,
    /// Span (extension baseline, §1): coordinators + PSM duty cycling,
    /// not location-aware; Model-1 endpoints like GAF.
    Span,
}

impl ProtocolKind {
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Grid => "GRID",
            ProtocolKind::Ecgrid => "ECGRID",
            ProtocolKind::Gaf => "GAF",
            ProtocolKind::Span => "Span",
        }
    }

    /// The paper's three evaluated protocols (Figs. 4–8).
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::Grid, ProtocolKind::Ecgrid, ProtocolKind::Gaf];

    /// All implemented protocols, including the Span extension.
    pub const ALL_EXT: [ProtocolKind; 4] = [
        ProtocolKind::Grid,
        ProtocolKind::Ecgrid,
        ProtocolKind::Gaf,
        ProtocolKind::Span,
    ];
}

/// One experiment configuration (§4 defaults unless noted).
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    pub protocol: ProtocolKind,
    /// Finite-battery hosts running the protocol (50–200 in Fig. 8).
    pub n_hosts: usize,
    /// Random-waypoint speed: uniform in (0, max_speed] m/s (1 or 10).
    pub max_speed: f64,
    /// Random-waypoint pause time, seconds (0–600 in Figs. 6–7).
    pub pause_secs: f64,
    /// Concurrent CBR flows.
    pub n_flows: usize,
    /// Packets per second per flow ("one or ten 512-byte packets per
    /// second"); 10 flows x 1 pkt/s = the 10 pkt/s network load.
    pub flow_rate_pps: f64,
    /// Simulated time, seconds (2000 in Figs. 4–5, 590 horizon in 6–7).
    pub duration_secs: f64,
    /// Master seed (mobility, traffic, protocol jitter all derive from it,
    /// so two protocols with the same seed see identical scenarios).
    pub seed: u64,
    /// Model-1 endpoints added for GAF: infinite-energy hosts that neither
    /// run GAF nor forward (the paper uses 10).
    pub model1_endpoints: usize,
}

impl Scenario {
    /// §4 base configuration: 100 hosts, 10 flows x 1 pkt/s, pause 0.
    pub fn paper_base(protocol: ProtocolKind, max_speed: f64, seed: u64) -> Self {
        Scenario {
            protocol,
            n_hosts: 100,
            max_speed,
            pause_secs: 0.0,
            n_flows: 10,
            flow_rate_pps: 1.0,
            duration_secs: 2000.0,
            seed,
            model1_endpoints: 10,
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        format!(
            "{} n={} v={}m/s pause={}s load={}pps",
            self.protocol.name(),
            self.n_hosts,
            self.max_speed,
            self.pause_secs,
            self.n_flows as f64 * self.flow_rate_pps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_matches_section4() {
        let s = Scenario::paper_base(ProtocolKind::Ecgrid, 1.0, 42);
        assert_eq!(s.n_hosts, 100);
        assert_eq!(s.n_flows as f64 * s.flow_rate_pps, 10.0);
        assert_eq!(s.pause_secs, 0.0);
        assert_eq!(s.duration_secs, 2000.0);
        assert_eq!(s.model1_endpoints, 10);
    }

    #[test]
    fn labels_name_the_protocol() {
        for p in ProtocolKind::ALL {
            assert!(Scenario::paper_base(p, 1.0, 0).label().contains(p.name()));
        }
    }
}
