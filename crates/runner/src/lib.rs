//! The experiment harness: builds paper-faithful scenarios, runs them
//! (in parallel across seeds with rayon), and prints/saves the series the
//! paper's figures plot.
//!
//! One binary per figure regenerates it:
//!
//! | binary | paper figure | metric |
//! |--------|--------------|--------|
//! | `fig4` | Fig. 4(a)(b) | fraction of alive hosts vs time |
//! | `fig5` | Fig. 5(a)(b) | mean energy consumption per host (aen) vs time |
//! | `fig6` | Fig. 6(a)(b) | packet delivery latency vs pause time |
//! | `fig7` | Fig. 7(a)(b) | packet delivery rate vs pause time |
//! | `fig8` | Fig. 8(a)(b) | alive fraction vs time across host densities |
//!
//! `experiments` runs everything and writes `results/*.csv`.

pub mod figures;
pub mod report;
pub mod run;
pub mod scenario;
pub mod serve;
pub mod spec_run;
pub mod supervisor;
pub mod sweep;

pub use report::{render_ascii_chart, render_series_table, write_atomic, write_csv};
pub use run::{
    replica_seed, run_replicas, run_scenario, run_scenario_probed, run_scenario_with, RunOptions,
    ScenarioResult,
};
pub use scenario::{ProtocolKind, Scenario};
pub use serve::EcgridJobHandler;
pub use spec_run::{run_spec, run_spec_probed, GroupReport};
pub use supervisor::{
    sweep_resumable, sweep_supervised, sweep_supervised_with, FailureKind, QuarantinedPoint, ReplicaRecord,
    RunFailure, SupervisorConfig, SweepReport,
};
pub use sweep::{average_results, average_results_degraded, sweep, AveragedResult, ReplicaMetrics};
