//! The ECGRID glue behind the sweep service: a [`JobHandler`] that turns
//! service job specs into supervised scenario runs.
//!
//! The service crate knows connections, queues and manifests; this
//! module knows simulations.  Each replica runs under the full
//! supervisor stack ([`run_point`]: panic isolation, event/wall
//! watchdogs, bounded retry), streams its trace events to subscribers
//! through the job's hub, and checkpoints its result to the same
//! journal format the batch sweep uses — so batch and service runs of
//! the same (config-hash, seed) are interchangeable, and a drained or
//! crashed service resumes bit for bit: journal-loaded replicas are
//! folded into the average in replica order exactly as fresh ones are.

use crate::run::{replica_seed, run_scenario_streamed, RunOptions, ScenarioResult};
use crate::scenario::{ProtocolKind, Scenario};
use crate::spec_run::{representative, run_spec_streamed};
use crate::supervisor::{
    config_hash, encode_line, load_journal_indexed, run_point, ReplicaRecord, SupervisorConfig,
};
use crate::sweep::average_results_degraded;
use manet::progress::ProgressProbe;
use manet::trace::{Fnv64, Registry};
use manet::FaultPlan;
use scenario::ScenarioSpec;
use service::proto::{
    frame_counter, frame_failure, frame_gauge, frame_replica_done, frame_replica_quarantined,
    scenario_hex_decode,
};
use service::{JobCtx, JobHandler, JobOutcome, JobSpec, JobState, ReplicaLookup};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Parse a protocol by its lowercase CLI name.
pub fn parse_protocol(s: &str) -> Option<ProtocolKind> {
    Some(match s.to_lowercase().as_str() {
        "grid" => ProtocolKind::Grid,
        "ecgrid" => ProtocolKind::Ecgrid,
        "gaf" => ProtocolKind::Gaf,
        "span" => ProtocolKind::Span,
        _ => return None,
    })
}

/// The production job handler: base run options (backend, engine,
/// budgets) fixed at server start, scenario shape and fault plan taken
/// from each job spec.
pub struct EcgridJobHandler {
    opts: RunOptions,
    sup: SupervisorConfig,
}

impl EcgridJobHandler {
    pub fn new(opts: RunOptions, sup: SupervisorConfig) -> Self {
        EcgridJobHandler { opts, sup }
    }

    /// The shared checkpoint journal under the service state dir.
    pub fn journal_path(state_dir: &Path) -> PathBuf {
        state_dir.join("journal.jsonl")
    }

    fn kind_of(spec: &JobSpec) -> Result<JobKind, String> {
        let protocol = parse_protocol(&spec.protocol)
            .ok_or_else(|| format!("unknown protocol \"{}\" (grid|ecgrid|gaf|span)", spec.protocol))?;
        if !spec.scenario.is_empty() {
            let text = scenario_hex_decode(&spec.scenario)?;
            let parsed = scenario::parse(&text).map_err(|e| format!("scenario: {e}"))?;
            return Ok(JobKind::Spec(Box::new(parsed), protocol));
        }
        if spec.n_hosts == 0 || spec.duration_secs <= 0.0 {
            return Err("n_hosts and duration_secs must be positive".into());
        }
        Ok(JobKind::Classic(Scenario {
            protocol,
            n_hosts: spec.n_hosts as usize,
            max_speed: spec.max_speed,
            pause_secs: spec.pause_secs,
            n_flows: spec.n_flows as usize,
            flow_rate_pps: spec.flow_rate_pps,
            duration_secs: spec.duration_secs,
            seed: spec.seed,
            model1_endpoints: spec.model1_endpoints as usize,
        }))
    }

    /// Effective run options for a job: the server's base options with
    /// the spec's fault plan, and tracing forced on (streaming and the
    /// digest both need a recorder).  Deterministic, so the config hash
    /// computed from these options is stable across submit / run /
    /// restart.
    fn opts_of(&self, spec: &JobSpec) -> Result<RunOptions, String> {
        let mut opts = self.opts;
        if !spec.faults.is_empty() {
            opts.faults = FaultPlan::parse(&spec.faults).map_err(|e| format!("faults: {e}"))?;
        }
        if opts.trace.is_none() {
            opts.trace = Some(manet::trace::TraceMode::DigestOnly);
        }
        Ok(opts)
    }

    fn key_of(&self, spec: &JobSpec) -> Result<(JobKind, RunOptions, u64), String> {
        let kind = Self::kind_of(spec)?;
        let opts = self.opts_of(spec)?;
        let cfg = match &kind {
            JobKind::Classic(sc) => config_hash(sc, &opts),
            JobKind::Spec(sp, protocol) => spec_config_hash(sp, *protocol, &opts),
        };
        Ok((kind, opts, cfg))
    }
}

/// How a job describes its fleet: the classic scalar shape, or a parsed
/// scenario file (heterogeneous groups, protocol still from the spec).
enum JobKind {
    Classic(Scenario),
    Spec(Box<ScenarioSpec>, ProtocolKind),
}

/// [`config_hash`] analogue for scenario-file jobs: the canonical
/// re-emitted scenario text with the seed forced to zero (replicas of
/// the same scenario must share a config, exactly like classic jobs),
/// plus the protocol, fault plan, and trace mode.
fn spec_config_hash(sp: &ScenarioSpec, protocol: ProtocolKind, opts: &RunOptions) -> u64 {
    let mut seedless = sp.clone();
    seedless.seed = 0;
    let mut h = Fnv64::new();
    h.write(b"scenario-file\n");
    h.write(protocol.name().as_bytes());
    h.write(seedless.to_text().as_bytes());
    h.write(format!("{:?}", opts.faults).as_bytes());
    h.write_u8(match opts.trace {
        None => 0,
        Some(manet::trace::TraceMode::DigestOnly) => 1,
        Some(manet::trace::TraceMode::Full) => 2,
    });
    h.finish()
}

fn digest_str(rec: &ReplicaRecord) -> String {
    rec.digest.map(|d| d.to_string()).unwrap_or_default()
}

/// Per-replica metric frames: a small registry snapshot of the result,
/// published in the registry's deterministic iteration order.
fn publish_metrics(ctx: &JobCtx<'_>, replica: u64, res: &ScenarioResult) {
    let mut reg = Registry::new();
    reg.counter_add("app.sent", res.ledger.sent_count());
    reg.counter_add("app.delivered", res.ledger.delivered_count());
    if let Some(r) = &res.recorder {
        reg.counter_add("trace.events", r.count());
    }
    if let Some(p) = res.pdr {
        reg.gauge_set("app.pdr", p);
    }
    if let Some(l) = res.latency_ms {
        reg.gauge_set("app.latency_ms", l);
    }
    if let Some(d) = res.network_death_s {
        reg.gauge_set("energy.network_death_s", d);
    }
    // scenario-file jobs label metrics by group so subscribers can tell
    // relay exhaustion from endpoint behaviour
    for g in &res.groups {
        reg.counter_add(&format!("group.{}.sent", g.name), g.sent);
        reg.counter_add(&format!("group.{}.delivered", g.name), g.delivered);
        reg.gauge_set(
            &format!("group.{}.alive_fraction", g.name),
            g.stats.alive_fraction(),
        );
        reg.gauge_set(&format!("group.{}.aen", g.name), g.stats.aen());
    }
    for (name, v) in reg.counters() {
        ctx.hub
            .publish_frame(ctx.job, &frame_counter(ctx.job, replica, name, v));
    }
    for (name, v) in reg.gauges() {
        ctx.hub
            .publish_frame(ctx.job, &frame_gauge(ctx.job, replica, name, v));
    }
}

impl JobHandler for EcgridJobHandler {
    fn config_hash(&self, spec: &JobSpec) -> Result<u64, String> {
        self.key_of(spec).map(|(_, _, cfg)| cfg)
    }

    fn run(&self, spec: &JobSpec, ctx: &JobCtx<'_>) -> JobOutcome {
        let (kind, opts, cfg) = match self.key_of(spec) {
            Ok(k) => k,
            Err(e) => {
                // submit validated the spec already; a failure here means
                // the manifest was edited or the handler changed — refuse
                // loudly rather than crash
                return JobOutcome {
                    state: JobState::Quarantined,
                    error: Some(e),
                    ..JobOutcome::interrupted()
                };
            }
        };
        // the supervisor and the replica loop speak classic `Scenario`
        // points; a scenario-file job runs through a representative shape
        // (host count, duration) whose per-replica seed the runner binds
        // back onto the parsed spec
        let (sc, pname) = match &kind {
            JobKind::Classic(sc) => (*sc, sc.protocol.name()),
            JobKind::Spec(sp, protocol) => (representative(sp, *protocol), protocol.name()),
        };
        let journal = Self::journal_path(ctx.state_dir);
        let (mut journaled, malformed) = load_journal_indexed(&journal);
        if let Some(dir) = journal.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let mut writer = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal)
            .ok();

        let mut records: Vec<ReplicaRecord> = Vec::new();
        let mut digests: Vec<String> = Vec::new();
        let mut from_journal = 0u64;
        let mut quarantined = 0u64;
        let mut interrupted = false;
        for k in 0..spec.replicas {
            // drain point: between replicas, never mid-replica — the
            // current replica always reaches its journal append first
            if ctx.cancelled() {
                interrupted = true;
                break;
            }
            let seed = replica_seed(sc.seed, k);
            let point = Scenario { seed, ..sc };
            if let Some(mut e) = journaled.remove(&(cfg, seed)) {
                e.replica = k; // trust our indexing over the file's
                let rec = e.into_record(point);
                ctx.hub.publish_frame(
                    ctx.job,
                    &frame_replica_done(
                        ctx.job,
                        k,
                        seed,
                        true,
                        Some(&digest_str(&rec)),
                        rec.pdr,
                        rec.latency_ms,
                    ),
                );
                digests.push(digest_str(&rec));
                records.push(rec);
                from_journal += 1;
                continue;
            }
            // fresh replica: run under full supervision, streaming each
            // recorded event to this job's subscribers as it happens
            let hub = ctx.hub.clone();
            let job_id = ctx.job;
            let out = match &kind {
                JobKind::Classic(_) => {
                    let runner = move |s: &Scenario, o: RunOptions, p: Option<Arc<ProgressProbe>>| {
                        let hub = hub.clone();
                        let sink: manet::trace::EventSink =
                            Arc::new(move |ev| hub.publish_event(job_id, k, pname, ev));
                        run_scenario_streamed(s, o, p, sink)
                    };
                    run_point(&runner, &point, opts, &self.sup)
                }
                JobKind::Spec(sp, protocol) => {
                    let sp = sp.clone();
                    let protocol = *protocol;
                    let runner = move |s: &Scenario, o: RunOptions, p: Option<Arc<ProgressProbe>>| {
                        let hub = hub.clone();
                        let sink: manet::trace::EventSink =
                            Arc::new(move |ev| hub.publish_event(job_id, k, pname, ev));
                        // the supervisor varies only the seed between
                        // replicas; rebind it onto the parsed spec
                        let mut sp = (*sp).clone();
                        sp.seed = s.seed;
                        run_spec_streamed(&sp, protocol, o, p, sink)
                    };
                    run_point(&runner, &point, opts, &self.sup)
                }
            };
            for f in &out.failures {
                ctx.hub
                    .publish_frame(ctx.job, &frame_failure(ctx.job, k, f.attempt, &f.to_string()));
            }
            match out.result {
                Some(res) => {
                    let rec = ReplicaRecord::from_result(k, &res);
                    if let Some(w) = writer.as_mut() {
                        let _ = writeln!(w, "{}", encode_line(cfg, seed, &rec));
                        let _ = w.flush();
                    }
                    publish_metrics(ctx, k, &res);
                    ctx.hub.publish_frame(
                        ctx.job,
                        &frame_replica_done(
                            ctx.job,
                            k,
                            seed,
                            false,
                            Some(&digest_str(&rec)),
                            rec.pdr,
                            rec.latency_ms,
                        ),
                    );
                    digests.push(digest_str(&rec));
                    records.push(rec);
                }
                None => {
                    quarantined += 1;
                    let last = out.failures.last().map(|f| f.to_string()).unwrap_or_default();
                    ctx.hub.publish_frame(
                        ctx.job,
                        &frame_replica_quarantined(ctx.job, k, out.failures.len() as u32, &last),
                    );
                }
            }
        }

        // replicas fold in replica-k order (fresh and journal-loaded
        // alike), so a resumed job averages bit-identically to a fresh one
        records.sort_by_key(|r| r.replica);
        let averaged = average_results_degraded(&records, spec.replicas as usize);
        let state = if interrupted {
            JobState::Interrupted
        } else if records.is_empty() && quarantined > 0 {
            JobState::Quarantined
        } else {
            JobState::Done
        };
        JobOutcome {
            state,
            replicas_done: records.len() as u64,
            from_journal,
            quarantined,
            digests,
            pdr: averaged.as_ref().and_then(|a| a.pdr),
            latency_ms: averaged.as_ref().and_then(|a| a.latency_ms),
            malformed_journal_lines: malformed as u64,
            error: (quarantined > 0).then(|| format!("{quarantined} replica(s) quarantined")),
        }
    }

    fn lookup(&self, state_dir: &Path, config: u64, seed: u64) -> Option<ReplicaLookup> {
        let (index, _) = load_journal_indexed(&Self::journal_path(state_dir));
        index.get(&(config, seed)).map(|e| ReplicaLookup {
            digest: e.digest.map(|d| d.to_string()),
            pdr: e.pdr,
            latency_ms: e.latency_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use service::proto::scenario_hex_encode;

    const SPEC_TEXT: &str = r#"
[scenario]
name = "svc"
duration_s = 10
seed = 7

[[group]]
name = "walkers"
count = 12
mobility = "waypoint"
max_speed = 1.0

[traffic]
flows = 2
rate_pps = 1.0
"#;

    fn spec_job(text: &str) -> JobSpec {
        JobSpec {
            scenario: scenario_hex_encode(text),
            ..JobSpec::default()
        }
    }

    #[test]
    fn scenario_jobs_get_their_own_stable_config_hash() {
        let h = EcgridJobHandler::new(RunOptions::default(), SupervisorConfig::default());
        let a = h.config_hash(&spec_job(SPEC_TEXT)).unwrap();
        assert_eq!(a, h.config_hash(&spec_job(SPEC_TEXT)).unwrap());
        // distinct from the classic job carrying the same scalar fields
        assert_ne!(a, h.config_hash(&JobSpec::default()).unwrap());
        // the base seed is replica identity, not config identity —
        // reseeded submissions share the journal like classic jobs do
        let reseeded = SPEC_TEXT.replace("seed = 7", "seed = 8");
        assert_eq!(a, h.config_hash(&spec_job(&reseeded)).unwrap());
        // the fleet shape and the protocol both are config identity
        let bigger = SPEC_TEXT.replace("count = 12", "count = 13");
        assert_ne!(a, h.config_hash(&spec_job(&bigger)).unwrap());
        let gaf = JobSpec {
            protocol: "gaf".into(),
            ..spec_job(SPEC_TEXT)
        };
        assert_ne!(a, h.config_hash(&gaf).unwrap());
    }

    #[test]
    fn malformed_scenario_jobs_are_rejected_at_hash_time() {
        let h = EcgridJobHandler::new(RunOptions::default(), SupervisorConfig::default());
        let bad_hex = JobSpec {
            scenario: "abc".into(), // odd length
            ..JobSpec::default()
        };
        assert!(h.config_hash(&bad_hex).is_err());
        let bad_text = spec_job("[scenario]\nbogus = 1\n");
        let err = h.config_hash(&bad_text).unwrap_err();
        assert!(err.contains("scenario:"), "diagnostic names the layer: {err}");
    }

    #[test]
    fn protocol_names_parse_case_insensitively() {
        assert_eq!(parse_protocol("ECGRID"), Some(ProtocolKind::Ecgrid));
        assert_eq!(parse_protocol("grid"), Some(ProtocolKind::Grid));
        assert_eq!(parse_protocol("Span"), Some(ProtocolKind::Span));
        assert_eq!(parse_protocol("aodv"), None);
    }

    #[test]
    fn config_hash_is_stable_across_handler_instances() {
        let spec = JobSpec::default();
        let a = EcgridJobHandler::new(RunOptions::default(), SupervisorConfig::default());
        let b = EcgridJobHandler::new(RunOptions::default(), SupervisorConfig::default());
        assert_eq!(a.config_hash(&spec).unwrap(), b.config_hash(&spec).unwrap());
        // budgets are watchdogs, not result identity: they must not
        // perturb the resume key
        let c = EcgridJobHandler::new(
            RunOptions::default(),
            SupervisorConfig::default().with_wall_budget_ms(Some(60_000)),
        );
        assert_eq!(a.config_hash(&spec).unwrap(), c.config_hash(&spec).unwrap());
    }

    #[test]
    fn bad_specs_are_rejected_at_hash_time() {
        let h = EcgridJobHandler::new(RunOptions::default(), SupervisorConfig::default());
        let bad_proto = JobSpec {
            protocol: "aodv".into(),
            ..JobSpec::default()
        };
        assert!(h.config_hash(&bad_proto).is_err());
        let bad_faults = JobSpec {
            faults: "loss=banana".into(),
            ..JobSpec::default()
        };
        assert!(h.config_hash(&bad_faults).is_err());
        let zero_hosts = JobSpec {
            n_hosts: 0,
            ..JobSpec::default()
        };
        assert!(h.config_hash(&zero_hosts).is_err());
    }
}
