//! One function per paper figure: build the scenario matrix, sweep it,
//! and render the series/rows the figure plots.
//!
//! Environment knobs (read by the binaries):
//! * `ECGRID_REPLICAS`     — seeds averaged per configuration (default 3);
//! * `ECGRID_FAST=1`       — shrink durations/densities for a smoke run;
//! * `ECGRID_JOURNAL`      — checkpoint journal path: sweeps run supervised
//!   and a rerun skips already-journaled replicas;
//! * `ECGRID_MAX_RETRIES`  — supervised retry budget per replica;
//! * `ECGRID_EVENT_BUDGET` — supervised watchdog ceiling on events/run.

use crate::report::{render_ascii_chart, render_series_table, series_csv_rows, write_csv};
use crate::run::RunOptions;
use crate::scenario::{ProtocolKind, Scenario};
use crate::supervisor::{sweep_supervised, SupervisorConfig};
use crate::sweep::{sweep, AveragedResult};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Shared run options.
#[derive(Clone, Debug)]
pub struct FigOpts {
    pub replicas: usize,
    /// Shrinks the experiment for smoke testing.
    pub fast: bool,
    pub base_seed: u64,
    /// Supervised retry budget; `Some` switches sweeps to the supervised
    /// path even without a journal.
    pub max_retries: Option<u32>,
    /// Supervised watchdog ceiling on dispatched events per replica.
    pub event_budget: Option<u64>,
    /// Checkpoint journal: `Some` makes every figure sweep resumable.
    pub journal: Option<PathBuf>,
}

impl FigOpts {
    /// Read options from the environment.
    pub fn from_env() -> Self {
        let replicas = std::env::var("ECGRID_REPLICAS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        let fast = std::env::var("ECGRID_FAST").map(|v| v == "1").unwrap_or(false);
        FigOpts {
            replicas,
            fast,
            base_seed: 42,
            max_retries: std::env::var("ECGRID_MAX_RETRIES")
                .ok()
                .and_then(|v| v.parse().ok()),
            event_budget: std::env::var("ECGRID_EVENT_BUDGET")
                .ok()
                .and_then(|v| v.parse().ok()),
            journal: std::env::var("ECGRID_JOURNAL").ok().map(PathBuf::from),
        }
    }

    /// Whether any supervision knob is set.
    pub fn supervised(&self) -> bool {
        self.max_retries.is_some() || self.event_budget.is_some() || self.journal.is_some()
    }

    fn duration(&self, full: f64) -> f64 {
        if self.fast {
            (full / 10.0).max(60.0)
        } else {
            full
        }
    }

    fn hosts(&self, full: usize) -> usize {
        if self.fast {
            (full / 2).max(10)
        } else {
            full
        }
    }
}

/// Every figure sweeps through here: plain [`sweep`] by default, or the
/// supervised path (isolation + watchdog + journal resume) when any
/// supervision knob is set.  An all-healthy supervised sweep averages the
/// same replicas in the same order as the plain one, so the figures are
/// bit-identical either way.
fn run_sweep(opts: &FigOpts, scenarios: &[Scenario]) -> Vec<AveragedResult> {
    if !opts.supervised() {
        return sweep(scenarios, opts.replicas);
    }
    let mut sup = SupervisorConfig::default()
        .with_max_retries(opts.max_retries.unwrap_or(2))
        .with_event_budget(opts.event_budget);
    if let Some(j) = &opts.journal {
        sup = sup.with_journal(j.clone());
    }
    let report = sweep_supervised(scenarios, opts.replicas, RunOptions::default(), &sup);
    if !report.quarantined.is_empty() || report.from_journal > 0 || !report.failures.is_empty() {
        eprint!("{}", report.render());
    }
    report.averaged
}

fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("ECGRID_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

fn save_series(name: &str, labelled: &[(&str, &metrics::TimeSeries)]) {
    let rows = series_csv_rows(labelled);
    let path = results_dir().join(name);
    if let Err(e) = write_csv(&path, &rows) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(wrote {})", path.display());
    }
}

/// The Fig. 4/5 scenario matrix: 3 protocols at one speed.
fn lifetime_matrix(opts: &FigOpts, speed: f64) -> Vec<Scenario> {
    ProtocolKind::ALL
        .iter()
        .map(|p| {
            let mut sc = Scenario::paper_base(*p, speed, opts.base_seed);
            sc.duration_secs = opts.duration(2000.0);
            sc.n_hosts = opts.hosts(100);
            sc
        })
        .collect()
}

/// Figs. 4 and 5 share their runs; compute both from one sweep.
pub fn lifetime_and_energy(opts: &FigOpts, speed: f64) -> Vec<AveragedResult> {
    run_sweep(opts, &lifetime_matrix(opts, speed))
}

/// Fig. 4: fraction of alive hosts vs simulation time.
pub fn fig4(opts: &FigOpts) -> String {
    let mut out = String::new();
    for speed in [1.0, 10.0] {
        let res = lifetime_and_energy(opts, speed);
        let labelled: Vec<(&str, &metrics::TimeSeries)> = res
            .iter()
            .map(|r| (r.scenario.protocol.name(), &r.alive))
            .collect();
        let _ = write!(
            out,
            "{}",
            render_series_table(
                &format!("Fig. 4 — fraction of alive hosts vs time (speed {speed} m/s)"),
                &labelled,
                10
            )
        );
        for r in &res {
            let spread = r
                .network_death_sd
                .map(|s| format!(" (±{s:.0})"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "   {:>7}: network death at {}{spread}",
                r.scenario.protocol.name(),
                r.network_death_s
                    .map(|t| format!("{t:.0} s"))
                    .unwrap_or_else(|| "none (survived)".into())
            );
        }
        let _ = write!(
            out,
            "{}",
            render_ascii_chart(&format!("Fig. 4 curve shapes ({speed} m/s)"), &labelled, 66, 14)
        );
        save_series(&format!("fig4_speed{speed}.csv"), &labelled);
        let _ = writeln!(out);
    }
    out
}

/// Fig. 5: mean energy consumption per host (aen) vs simulation time.
pub fn fig5(opts: &FigOpts) -> String {
    let mut out = String::new();
    for speed in [1.0, 10.0] {
        let res = lifetime_and_energy(opts, speed);
        let labelled: Vec<(&str, &metrics::TimeSeries)> =
            res.iter().map(|r| (r.scenario.protocol.name(), &r.aen)).collect();
        let _ = write!(
            out,
            "{}",
            render_series_table(
                &format!("Fig. 5 — mean energy consumption per host (aen) vs time (speed {speed} m/s)"),
                &labelled,
                10
            )
        );
        save_series(&format!("fig5_speed{speed}.csv"), &labelled);
        // the paper's headline ratio: aen(GRID) vs others before 590 s
        let at = 500.0f64.min(res[0].aen.points().last().map(|p| p.t_secs).unwrap_or(500.0));
        let grid = res.iter().find(|r| r.scenario.protocol == ProtocolKind::Grid);
        for r in &res {
            if let (Some(g), Some(v), Some(gv)) =
                (grid, r.aen.value_at(at), grid.and_then(|g| g.aen.value_at(at)))
            {
                if r.scenario.protocol != ProtocolKind::Grid && v > 0.0 {
                    let _ = writeln!(
                        out,
                        "   aen(GRID)/aen({}) at t={at:.0}s = {:.2} (paper: ~1.3-1.4)",
                        r.scenario.protocol.name(),
                        gv / v
                    );
                }
                let _ = g;
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// The Fig. 6/7 matrix: pause times 0..600 at one speed, horizon 590 s.
fn delivery_matrix(opts: &FigOpts, speed: f64, pause: f64) -> Vec<Scenario> {
    ProtocolKind::ALL
        .iter()
        .map(|p| {
            let mut sc = Scenario::paper_base(*p, speed, opts.base_seed);
            sc.pause_secs = pause;
            sc.duration_secs = opts.duration(590.0);
            sc.n_hosts = opts.hosts(100);
            sc
        })
        .collect()
}

const PAUSES: [f64; 5] = [0.0, 150.0, 300.0, 450.0, 600.0];

fn delivery_rows(
    opts: &FigOpts,
    value: impl Fn(&AveragedResult) -> Option<f64>,
) -> (String, Vec<Vec<String>>) {
    let mut out = String::new();
    let mut csv: Vec<Vec<String>> = vec![vec![
        "speed".into(),
        "pause_s".into(),
        "GRID".into(),
        "ECGRID".into(),
        "GAF".into(),
    ]];
    for speed in [1.0, 10.0] {
        let _ = writeln!(out, "  speed {speed} m/s");
        let _ = writeln!(
            out,
            "{:>10} {:>10} {:>10} {:>10}",
            "pause(s)", "GRID", "ECGRID", "GAF"
        );
        for pause in PAUSES {
            let res = run_sweep(opts, &delivery_matrix(opts, speed, pause));
            let mut row = vec![format!("{speed}"), format!("{pause}")];
            let _ = write!(out, "{pause:>10}");
            for r in &res {
                let v = value(r);
                let _ = write!(
                    out,
                    " {:>10}",
                    v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into())
                );
                row.push(v.map(|x| format!("{x}")).unwrap_or_default());
            }
            let _ = writeln!(out);
            csv.push(row);
        }
        let _ = writeln!(out);
    }
    (out, csv)
}

/// Fig. 6: packet delivery latency (ms) vs pause time, horizon 590 s.
pub fn fig6(opts: &FigOpts) -> String {
    let (body, csv) = delivery_rows(opts, |r| r.latency_ms_590);
    let path = results_dir().join("fig6_latency.csv");
    let _ = write_csv(&path, &csv);
    format!(
        "## Fig. 6 — packet delivery latency (ms) vs pause time (<=590 s)\n{body}(wrote {})\n",
        path.display()
    )
}

/// Fig. 7: packet delivery rate vs pause time, horizon 590 s.
pub fn fig7(opts: &FigOpts) -> String {
    let (body, csv) = delivery_rows(opts, |r| r.pdr_590);
    let path = results_dir().join("fig7_delivery_rate.csv");
    let _ = write_csv(&path, &csv);
    format!(
        "## Fig. 7 — packet delivery rate vs pause time (<=590 s)\n{body}(wrote {})\n",
        path.display()
    )
}

/// Fig. 8: alive fraction vs time for GRID and ECGRID at 50/100/150/200
/// hosts.
pub fn fig8(opts: &FigOpts) -> String {
    let densities: &[usize] = if opts.fast {
        &[25, 50]
    } else {
        &[50, 100, 150, 200]
    };
    let mut out = String::new();
    for speed in [1.0, 10.0] {
        let mut scenarios = Vec::new();
        for p in [ProtocolKind::Grid, ProtocolKind::Ecgrid] {
            for &n in densities {
                let mut sc = Scenario::paper_base(p, speed, opts.base_seed);
                sc.n_hosts = n;
                sc.duration_secs = opts.duration(2000.0);
                scenarios.push(sc);
            }
        }
        let res = run_sweep(opts, &scenarios);
        let labels: Vec<String> = res
            .iter()
            .map(|r| format!("{}-{}", r.scenario.protocol.name(), r.scenario.n_hosts))
            .collect();
        let labelled: Vec<(&str, &metrics::TimeSeries)> = res
            .iter()
            .zip(&labels)
            .map(|(r, l)| (l.as_str(), &r.alive))
            .collect();
        let _ = write!(
            out,
            "{}",
            render_series_table(
                &format!("Fig. 8 — alive fraction vs time across host densities (speed {speed} m/s)"),
                &labelled,
                10
            )
        );
        for r in &res {
            let first_drop = r.alive.first_time_at_or_below(0.999);
            let _ = writeln!(
                out,
                "   {:>10}: first death {}",
                format!("{}-{}", r.scenario.protocol.name(), r.scenario.n_hosts),
                first_drop
                    .map(|t| format!("{t:.0} s"))
                    .unwrap_or_else(|| "none".into())
            );
        }
        save_series(&format!("fig8_speed{speed}.csv"), &labelled);
        let _ = writeln!(out);
    }
    out
}
