//! Building and running one scenario.

use crate::scenario::{ProtocolKind, Scenario};
use ecgrid::{Ecgrid, EcgridConfig};
use gaf::{GafConfig, GafProto};
use grid_routing::{GridConfig, GridProto};
use manet::progress::ProgressProbe;
use manet::trace::{Recorder, TraceDigest, TraceMode};
use manet::{
    Backend, Battery, FaultPlan, FlowSet, FlowSpec, GatherFallback, HostSetup, NeighborIndex, NodeId,
    PowerProfile, SimTime, World, WorldConfig,
};
use metrics::{PacketLedger, TimeSeries};
use mobility::{MobilityModel, RandomWaypoint};
use rayon::prelude::*;
use sim_engine::{derive_seed, BudgetExceeded, RngFactory, RunBudget};
use span::{SpanConfig, SpanProto};
use std::sync::Arc;

/// Knobs orthogonal to the scenario itself: which scheduler backend the
/// world runs on and whether a trace recorder is attached.  The defaults
/// (heap backend, no tracing) reproduce `run_scenario` exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    pub backend: Backend,
    pub trace: Option<TraceMode>,
    /// Fault-injection plan.  The default (all-zero) plan performs no RNG
    /// draws and leaves every run bit-identical to a fault-free build.
    pub faults: FaultPlan,
    /// Watchdog: maximum dispatched events per run.  `None` (the default)
    /// is unbounded; a bounded run that trips the ceiling terminates with
    /// [`ScenarioResult::budget_exceeded`] set instead of hanging.
    pub event_budget: Option<u64>,
    /// Watchdog: maximum wall-clock milliseconds per run — the axis that
    /// catches runs whose every event is legitimate but pathologically
    /// slow.  Non-deterministic by nature (the trip point depends on the
    /// host), so a tripped run is a failure to quarantine, never a result
    /// to average.
    pub wall_budget_ms: Option<u64>,
    /// Neighbor-query strategy: the spatial grid-bucket index (default) or
    /// the brute-force reference scan.  Results — including trace digests
    /// — are bit-identical either way; the toggle keeps the baseline
    /// runnable for equivalence tests and benchmarks.
    pub neighbor_index: NeighborIndex,
    /// Grid-mode low-occupancy fallback policy (adaptive by default).
    /// Another digest-neutral knob: all three settings produce identical
    /// candidate lists, only the query path differs.  Ignored under
    /// `NeighborIndex::Brute`.
    pub gather_fallback: GatherFallback,
    /// Run on the sharded conservative-sync engine instead of the serial
    /// one.  Digest-neutral by construction (proven by
    /// `tests/parallel_equivalence.rs`); the engines differ only in cost.
    pub parallel_world: bool,
    /// Shard count when `parallel_world` is set (`0` = auto from the
    /// host's `available_parallelism`).
    pub shards: usize,
    /// Worker-lane count of the parallel engine's host-plane kernels
    /// (`0` = auto: `min(shards, available_parallelism)`; `1` = inline).
    /// Digest-neutral at every value (proven by
    /// `tests/parallel_equivalence.rs`).
    pub threads: usize,
}

impl RunOptions {
    /// Digest-only tracing on the default backend — what the golden-trace
    /// tests use.
    pub fn digest() -> Self {
        RunOptions {
            backend: Backend::Heap,
            trace: Some(TraceMode::DigestOnly),
            faults: FaultPlan::none(),
            event_budget: None,
            wall_budget_ms: None,
            neighbor_index: NeighborIndex::default(),
            gather_fallback: GatherFallback::default(),
            parallel_world: false,
            shards: 1,
            threads: 1,
        }
    }

    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    pub fn with_event_budget(mut self, budget: Option<u64>) -> Self {
        self.event_budget = budget;
        self
    }

    pub fn with_wall_budget_ms(mut self, ms: Option<u64>) -> Self {
        self.wall_budget_ms = ms;
        self
    }

    pub fn with_neighbor_index(mut self, neighbor_index: NeighborIndex) -> Self {
        self.neighbor_index = neighbor_index;
        self
    }

    pub fn with_gather_fallback(mut self, gather_fallback: GatherFallback) -> Self {
        self.gather_fallback = gather_fallback;
        self
    }

    /// Same options on the sharded engine with `shards` strips (`0` =
    /// auto from the host's parallelism).
    pub fn with_parallel_world(mut self, shards: usize) -> Self {
        self.parallel_world = true;
        self.shards = shards;
        self
    }

    /// Same options with `threads` worker lanes for the parallel engine
    /// (`0` = auto: `min(shards, available_parallelism)`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The engine these options will select, with auto values resolved
    /// against this host: `Some((shards, threads))` on the parallel
    /// engine, `None` on the serial one.  Matches what
    /// [`ScenarioResult::engine`] reports after a run (the resolution
    /// rule lives in `manet::WorldConfig::resolved_shards/threads`).
    pub fn resolved_engine(&self) -> Option<(usize, usize)> {
        if !self.parallel_world {
            return None;
        }
        let k = if self.shards == 0 {
            manet::host_parallelism()
        } else {
            self.shards
        }
        .max(1);
        let t = if self.threads == 0 {
            manet::host_parallelism().min(k)
        } else {
            self.threads
        }
        .max(1);
        Some((k, t))
    }
}

/// Engine override from the environment, for running an existing test or
/// tool corpus through the threaded engine without touching its code:
/// `ECGRID_PARALLEL_OVERRIDE="K,T"` forces every run onto the parallel
/// engine with K shards and T worker lanes (each `0` = auto).  Runs that
/// already requested the parallel engine keep their own settings.  Safe
/// for any corpus because the engine choice is digest-neutral.
pub(crate) fn parallel_override() -> Option<(usize, usize)> {
    let v = std::env::var("ECGRID_PARALLEL_OVERRIDE").ok()?;
    let (k, t) = v.split_once(',')?;
    Some((k.trim().parse().ok()?, t.trim().parse().ok()?))
}

/// Everything a figure needs from one finished run.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    pub scenario: Scenario,
    /// Alive fraction over time (finite-battery hosts only).
    pub alive: TimeSeries,
    /// aen over time.
    pub aen: TimeSeries,
    /// Full packet accounting.
    pub ledger: PacketLedger,
    /// Delivery rate over the whole run.
    pub pdr: Option<f64>,
    /// Mean latency (ms) over the whole run.
    pub latency_ms: Option<f64>,
    /// Delivery rate restricted to packets sent before 590 s (the paper's
    /// comparison horizon in Figs. 6–7).
    pub pdr_590: Option<f64>,
    /// Mean latency (ms) restricted to the same horizon.
    pub latency_ms_590: Option<f64>,
    /// First time the alive fraction reached zero, if it did.
    pub network_death_s: Option<f64>,
    pub stats: manet::WorldStats,
    /// Canonical digest of the run's trace (`None` unless tracing was
    /// requested).  Identical for identical (scenario, seed) regardless of
    /// scheduler backend or sweep parallelism.
    pub trace_digest: Option<TraceDigest>,
    /// The full recorder (events in [`TraceMode::Full`], profiling data in
    /// either mode; `None` unless tracing was requested).
    pub recorder: Option<Recorder>,
    /// `Some` when the run's watchdog budget cut it short — the metrics
    /// above cover the truncated run, and a supervisor should treat this
    /// result as a failure, not average it.
    pub budget_exceeded: Option<BudgetExceeded>,
    /// The engine the run actually used: `(shards, threads)` with auto
    /// requests resolved against the host; `None` on the serial engine.
    pub engine: Option<(usize, usize)>,
    /// Per-group rollup when the run came from a scenario file (empty for
    /// the classic homogeneous scenarios).
    pub groups: Vec<crate::spec_run::GroupReport>,
}

/// Build the mobility traces for `count` hosts, identical across protocols
/// for a given seed.
fn build_traces(sc: &Scenario, count: usize, horizon: SimTime) -> Vec<mobility::MobilityTrace> {
    let rngs = RngFactory::new(sc.seed);
    let model = RandomWaypoint::paper(sc.max_speed, sc.pause_secs);
    (0..count)
        .map(|i| model.build_trace(&mut rngs.stream("mobility", i as u64), horizon))
        .collect()
}

/// Build the flow set.  Endpoints are chosen among `endpoint_ids`,
/// identically across protocols for a given seed.
fn build_flows(sc: &Scenario, endpoint_ids: &[NodeId], stop: SimTime) -> FlowSet {
    let rngs = RngFactory::new(sc.seed);
    let spec = FlowSpec {
        n_flows: sc.n_flows,
        packet_bytes: 512,
        rate_pps: sc.flow_rate_pps,
        start: SimTime::from_secs(5),
        stop,
        stagger: true,
    };
    FlowSet::random(&mut rngs.stream("traffic", 0), endpoint_ids, &spec)
}

pub(crate) fn finish<P: manet::Protocol>(
    sc: &Scenario,
    opts: RunOptions,
    probe: Option<Arc<ProgressProbe>>,
    sink: Option<manet::trace::EventSink>,
    mut world: World<P>,
    end: SimTime,
) -> ScenarioResult {
    match (opts.trace, sink) {
        (Some(mode), Some(s)) => world.enable_trace_with_sink(mode, s),
        (Some(mode), None) => world.enable_trace(mode),
        (None, _) => {}
    }
    if let Some(p) = probe {
        world.attach_probe(p);
    }
    let engine = world.shard_stats().map(|s| (s.shards, s.threads));
    let out = world.run_until(end);
    let recorder = world.take_recorder();
    let cutoff = SimTime::from_secs(590);
    let early = out.ledger.before(cutoff);
    ScenarioResult {
        scenario: *sc,
        pdr: out.ledger.delivery_rate(),
        latency_ms: out.ledger.mean_latency_ms(),
        pdr_590: early.delivery_rate(),
        latency_ms_590: early.mean_latency_ms(),
        network_death_s: out.alive.first_time_at_or_below(0.0),
        alive: out.alive,
        aen: out.aen,
        ledger: out.ledger,
        stats: out.stats,
        trace_digest: recorder.as_ref().map(|r| r.digest()),
        recorder,
        budget_exceeded: out.budget_exceeded,
        engine,
        groups: Vec::new(),
    }
}

/// Run one scenario to completion with default options.
pub fn run_scenario(sc: &Scenario) -> ScenarioResult {
    run_scenario_with(sc, RunOptions::default())
}

/// Run one scenario to completion on an explicit backend / trace setting.
pub fn run_scenario_with(sc: &Scenario, opts: RunOptions) -> ScenarioResult {
    run_scenario_probed(sc, opts, None)
}

/// [`run_scenario_with`], sharing a [`ProgressProbe`] with a supervisor.
/// The probe is updated throughout the run, so if the run panics the
/// supervisor can still report how far it got (the probe outlives the
/// poisoned world).
pub fn run_scenario_probed(
    sc: &Scenario,
    opts: RunOptions,
    probe: Option<Arc<ProgressProbe>>,
) -> ScenarioResult {
    run_scenario_inner(sc, opts, probe, None)
}

/// [`run_scenario_probed`] with a live event sink: every recorded trace
/// event is also handed to `sink` as it is recorded — the sweep
/// service's streaming path.  Digest-neutral by construction: the sink
/// observes recording, it cannot alter it.
pub fn run_scenario_streamed(
    sc: &Scenario,
    opts: RunOptions,
    probe: Option<Arc<ProgressProbe>>,
    sink: manet::trace::EventSink,
) -> ScenarioResult {
    run_scenario_inner(sc, opts, probe, Some(sink))
}

fn run_scenario_inner(
    sc: &Scenario,
    opts: RunOptions,
    probe: Option<Arc<ProgressProbe>>,
    sink: Option<manet::trace::EventSink>,
) -> ScenarioResult {
    let end = SimTime::from_secs_f64(sc.duration_secs);
    // traces must outlive the run comfortably
    let horizon = end + sim_engine::SimDuration::from_secs(10);
    // the effective fault seed folds the scenario seed in, so replicas of
    // the same plan see different (but each fully deterministic) faults
    let faults = opts
        .faults
        .with_seed(derive_seed(sc.seed, "fault", opts.faults.seed));
    let mut budget = RunBudget::UNLIMITED;
    if let Some(n) = opts.event_budget {
        budget = budget.with_max_events(n);
    }
    if let Some(ms) = opts.wall_budget_ms {
        budget = budget.with_max_wall_ms(ms);
    }
    let mut cfg = WorldConfig::paper_default(sc.seed)
        .with_backend(opts.backend)
        .with_faults(faults)
        .with_budget(budget)
        .with_neighbor_index(opts.neighbor_index)
        .with_gather_fallback(opts.gather_fallback);
    if opts.parallel_world {
        cfg = cfg.with_parallel_world(opts.shards).with_threads(opts.threads);
    } else if let Some((k, t)) = parallel_override() {
        cfg = cfg.with_parallel_world(k).with_threads(t);
    }

    match sc.protocol {
        ProtocolKind::Grid | ProtocolKind::Ecgrid => {
            // Model 2: endpoints are ordinary finite-battery hosts
            let traces = build_traces(sc, sc.n_hosts, horizon);
            let hosts: Vec<HostSetup> = traces.into_iter().map(HostSetup::paper).collect();
            let all_ids: Vec<NodeId> = (0..sc.n_hosts as u32).map(NodeId).collect();
            let flows = build_flows(sc, &all_ids, end);
            match sc.protocol {
                ProtocolKind::Grid => {
                    let world = World::new(cfg, hosts, flows, |id| GridProto::new(GridConfig::default(), id));
                    finish(sc, opts, probe, sink, world, end)
                }
                ProtocolKind::Ecgrid => {
                    let world = World::new(cfg, hosts, flows, |id| Ecgrid::new(EcgridConfig::default(), id));
                    finish(sc, opts, probe, sink, world, end)
                }
                ProtocolKind::Gaf | ProtocolKind::Span => unreachable!(),
            }
        }
        ProtocolKind::Gaf | ProtocolKind::Span => {
            // Model 1: n_hosts duty-cycling hosts (metered) + endpoints
            // with infinite energy that neither duty-cycle nor forward.
            // Span is not location-aware, so its hosts carry no GPS.
            let total = sc.n_hosts + sc.model1_endpoints;
            let traces = build_traces(sc, total, horizon);
            let n = sc.n_hosts;
            let profile = if sc.protocol == ProtocolKind::Span {
                PowerProfile::paper_no_gps()
            } else {
                PowerProfile::paper_default()
            };
            let hosts: Vec<HostSetup> = traces
                .into_iter()
                .enumerate()
                .map(|(i, trace)| HostSetup {
                    profile,
                    battery: if i < n {
                        Battery::paper_default()
                    } else {
                        Battery::infinite()
                    },
                    ..HostSetup::paper(trace)
                })
                .collect();
            let endpoint_ids: Vec<NodeId> = (n as u32..total as u32).map(NodeId).collect();
            let flows = build_flows(sc, &endpoint_ids, end);
            match sc.protocol {
                ProtocolKind::Gaf => {
                    let world = World::new(cfg, hosts, flows, move |id| {
                        if id.index() < n {
                            GafProto::new(GafConfig::default(), id)
                        } else {
                            GafProto::endpoint(GafConfig::default(), id)
                        }
                    });
                    finish(sc, opts, probe, sink, world, end)
                }
                ProtocolKind::Span => {
                    let world = World::new(cfg, hosts, flows, move |id| {
                        if id.index() < n {
                            SpanProto::new(SpanConfig::default(), id)
                        } else {
                            SpanProto::endpoint(SpanConfig::default(), id)
                        }
                    });
                    finish(sc, opts, probe, sink, world, end)
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Seed for replica `k` of a base seed.  Replica 0 keeps the base seed
/// (so a one-replica run IS the plain run of that scenario); later
/// replicas are hash-derived, because the old `seed + k` scheme made
/// replica 1 of seed 42 identical to replica 0 of seed 43 — adjacent
/// sweep points silently shared runs.
pub fn replica_seed(base: u64, k: u64) -> u64 {
    if k == 0 {
        base
    } else {
        derive_seed(base, "replica", k)
    }
}

/// Run `replicas` copies of one scenario (replica `k` uses
/// [`replica_seed`]`(sc.seed, k)`), either serially or fanned out across
/// threads.  A run's result — including its trace digest — is a pure
/// function of (scenario, seed, options), so both paths return identical
/// results; the golden-trace tests hold this to account.
pub fn run_replicas(sc: &Scenario, replicas: usize, opts: RunOptions, parallel: bool) -> Vec<ScenarioResult> {
    let jobs: Vec<Scenario> = (0..replicas as u64)
        .map(|k| Scenario {
            seed: replica_seed(sc.seed, k),
            ..*sc
        })
        .collect();
    if parallel {
        jobs.par_iter().map(|j| run_scenario_with(j, opts)).collect()
    } else {
        jobs.iter().map(|j| run_scenario_with(j, opts)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(protocol: ProtocolKind) -> Scenario {
        Scenario {
            protocol,
            n_hosts: 40,
            max_speed: 1.0,
            pause_secs: 0.0,
            n_flows: 3,
            flow_rate_pps: 1.0,
            duration_secs: 60.0,
            seed: 7,
            model1_endpoints: 4,
        }
    }

    #[test]
    fn all_protocols_run_a_tiny_scenario() {
        for p in ProtocolKind::ALL {
            let r = run_scenario(&tiny(p));
            assert!(
                r.ledger.sent_count() > 100,
                "{p:?} sent {}",
                r.ledger.sent_count()
            );
            // 40 hosts over 100 cells is still sparse (mean degree ~8);
            // partitions cost some delivery, so this is a liveness floor,
            // not the paper's dense-network PDR
            let pdr = r.pdr.unwrap();
            assert!(pdr > 0.4, "{p:?} pdr {pdr}");
            assert!(!r.alive.is_empty());
            assert_eq!(r.alive.points()[0].value, 1.0);
        }
    }

    #[test]
    fn identical_seeds_reproduce_identical_results() {
        let a = run_scenario(&tiny(ProtocolKind::Ecgrid));
        let b = run_scenario(&tiny(ProtocolKind::Ecgrid));
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.pdr, b.pdr);
        assert_eq!(a.latency_ms, b.latency_ms);
    }

    #[test]
    fn protocols_share_the_same_mobility_per_seed() {
        let sc = tiny(ProtocolKind::Grid);
        let horizon = SimTime::from_secs(70);
        let a = build_traces(&sc, 20, horizon);
        let sc2 = Scenario {
            protocol: ProtocolKind::Ecgrid,
            ..sc
        };
        let b = build_traces(&sc2, 20, horizon);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.position_at(SimTime::from_secs(33)),
                y.position_at(SimTime::from_secs(33))
            );
        }
    }
}
