//! Sweep supervision: panic isolation, runaway watchdogs, bounded retry
//! with quarantine, and a journaled checkpoint/resume protocol.
//!
//! A paper-scale sweep is hours of (scenario × replica) jobs; this module
//! makes the harness survive its own failures the way the protocols under
//! test must survive theirs:
//!
//! * **Isolation** — every replica runs under `catch_unwind`, so one
//!   panicking job becomes a structured [`RunFailure`] instead of
//!   poisoning the whole rayon sweep.
//! * **Watchdog** — replicas run with the supervisor's event budget; an
//!   event storm terminates with a `BudgetExceeded` failure rather than
//!   hanging CI (see `sim_engine::RunBudget`).
//! * **Retry + quarantine** — a failed point retries up to
//!   [`SupervisorConfig::max_retries`] times on re-derived seeds (each
//!   attempted seed is preserved in its failure record for replay); points
//!   that never succeed land on the [`SweepReport::quarantined`] list, and
//!   the surviving replicas still average.
//! * **Checkpoint/resume** — an append-only JSONL journal keyed by
//!   (config hash, seed) records every completed replica's metrics and
//!   trace digest with bit-exact float encoding, so a resumed sweep skips
//!   finished work and reproduces the fresh run's [`AveragedResult`]s
//!   bit for bit.

use crate::run::{replica_seed, run_scenario_probed, RunOptions, ScenarioResult};
use crate::scenario::Scenario;
use crate::sweep::{average_results_degraded, AveragedResult, ReplicaMetrics};
use manet::progress::ProgressProbe;
use manet::trace::{Fnv64, TraceDigest};
use metrics::TimeSeries;
use rayon::prelude::*;
use sim_engine::{derive_seed, BudgetExceeded};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Supervision knobs, orthogonal to [`RunOptions`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Retry attempts after the first failure of a point (0 = fail fast).
    /// Retries run on re-derived seeds — replaying the same seed of a
    /// deterministic simulation would fail identically.
    pub max_retries: u32,
    /// Watchdog ceiling on dispatched events per replica; overrides
    /// `RunOptions::event_budget` when set.
    pub event_budget: Option<u64>,
    /// Watchdog ceiling on wall-clock milliseconds per replica; overrides
    /// `RunOptions::wall_budget_ms` when set.  Unlike the event budget
    /// this axis is non-deterministic (host-dependent), so a tripped run
    /// is quarantined, never averaged.
    pub wall_budget_ms: Option<u64>,
    /// Checkpoint journal path.  `None` disables journaling.
    pub journal: Option<PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            event_budget: None,
            wall_budget_ms: None,
            journal: None,
        }
    }
}

impl SupervisorConfig {
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    pub fn with_event_budget(mut self, n: Option<u64>) -> Self {
        self.event_budget = n;
        self
    }

    pub fn with_wall_budget_ms(mut self, ms: Option<u64>) -> Self {
        self.wall_budget_ms = ms;
        self
    }

    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Fold the supervisor's watchdog ceilings into a run's options (the
    /// supervisor's settings win where both are present).
    pub fn apply_budgets(&self, opts: RunOptions) -> RunOptions {
        opts.with_event_budget(self.event_budget.or(opts.event_budget))
            .with_wall_budget_ms(self.wall_budget_ms.or(opts.wall_budget_ms))
    }
}

/// Why one attempt of one replica failed.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// The job panicked; the payload message is preserved.
    Panic(String),
    /// The watchdog cut the run short.
    Budget(BudgetExceeded),
}

/// Post-mortem of one failed attempt.  `seed` is the seed this attempt
/// actually ran (for retries, the re-derived one), so
/// `run_one --seed <seed>` replays the failure exactly; the progress
/// fields come from the [`ProgressProbe`], which outlives the crashed
/// world.
#[derive(Clone, Debug)]
pub struct RunFailure {
    pub scenario: Scenario,
    pub seed: u64,
    /// 0 = first try, n = n-th retry.
    pub attempt: u32,
    pub kind: FailureKind,
    /// Events the run had dispatched when it died.
    pub events_processed: u64,
    /// Virtual time the run had reached when it died.
    pub virtual_time_s: f64,
    /// Trace digest as of the last completed sample window, for bisecting
    /// the crash against a healthy replay.
    pub partial_digest: Option<TraceDigest>,
}

impl RunFailure {
    /// The panic payload, when the failure was a panic.
    pub fn panic_msg(&self) -> Option<&str> {
        match &self.kind {
            FailureKind::Panic(msg) => Some(msg),
            FailureKind::Budget(_) => None,
        }
    }
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            FailureKind::Panic(msg) => format!("panic: {msg}"),
            FailureKind::Budget(b) => b.to_string(),
        };
        write!(
            f,
            "{} seed={} attempt={}: {what} ({} events, t={:.1}s{})",
            self.scenario.label(),
            self.seed,
            self.attempt,
            self.events_processed,
            self.virtual_time_s,
            self.partial_digest
                .map(|d| format!(", partial digest {d}"))
                .unwrap_or_default()
        )
    }
}

/// A (scenario, replica) point that exhausted its retries.
#[derive(Clone, Debug)]
pub struct QuarantinedPoint {
    pub scenario: Scenario,
    /// Replica index within its scenario.
    pub replica: u64,
    /// Every failed attempt, in order (attempt 0 first).
    pub failures: Vec<RunFailure>,
}

/// A completed replica in the form the journal stores and averaging
/// consumes — the metric subset of [`ScenarioResult`] plus the digest.
#[derive(Clone, Debug)]
pub struct ReplicaRecord {
    pub scenario: Scenario,
    /// Replica index within its scenario (orders averaging, so a resumed
    /// sweep folds floats in exactly the fresh run's order).
    pub replica: u64,
    pub alive: TimeSeries,
    pub aen: TimeSeries,
    pub pdr: Option<f64>,
    pub latency_ms: Option<f64>,
    pub pdr_590: Option<f64>,
    pub latency_ms_590: Option<f64>,
    pub network_death_s: Option<f64>,
    pub digest: Option<TraceDigest>,
}

impl ReplicaRecord {
    pub fn from_result(replica: u64, r: &ScenarioResult) -> Self {
        ReplicaRecord {
            scenario: r.scenario,
            replica,
            alive: r.alive.clone(),
            aen: r.aen.clone(),
            pdr: r.pdr,
            latency_ms: r.latency_ms,
            pdr_590: r.pdr_590,
            latency_ms_590: r.latency_ms_590,
            network_death_s: r.network_death_s,
            digest: r.trace_digest,
        }
    }
}

impl ReplicaMetrics for ReplicaRecord {
    fn scenario(&self) -> &Scenario {
        &self.scenario
    }
    fn alive(&self) -> &TimeSeries {
        &self.alive
    }
    fn aen(&self) -> &TimeSeries {
        &self.aen
    }
    fn pdr(&self) -> Option<f64> {
        self.pdr
    }
    fn latency_ms(&self) -> Option<f64> {
        self.latency_ms
    }
    fn pdr_590(&self) -> Option<f64> {
        self.pdr_590
    }
    fn latency_ms_590(&self) -> Option<f64> {
        self.latency_ms_590
    }
    fn network_death_s(&self) -> Option<f64> {
        self.network_death_s
    }
}

/// Everything a supervised sweep produced.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Per-scenario averages over the replicas that survived (scenarios
    /// whose every replica was quarantined are absent).
    pub averaged: Vec<AveragedResult>,
    /// Every contributing replica (journal-loaded and freshly run),
    /// sorted by (scenario, replica) — carries the per-replica digests.
    pub replicas: Vec<ReplicaRecord>,
    /// Points that exhausted their retries.
    pub quarantined: Vec<QuarantinedPoint>,
    /// Every failed attempt, including ones a retry later recovered.
    pub failures: Vec<RunFailure>,
    /// Replicas freshly run (and journaled) by this invocation.
    pub completed: usize,
    /// Replicas skipped because the journal already had them.
    pub from_journal: usize,
    /// Points that failed at least once and then succeeded on a retry.
    pub recovered: usize,
    /// Journal lines that failed to parse (e.g. a line truncated by a
    /// kill mid-append) and were ignored.
    pub malformed_journal_lines: usize,
}

impl SweepReport {
    /// Human-readable supervision summary (the "quarantine report").
    pub fn render(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "## Sweep supervision: {} averaged, {} fresh, {} from journal, {} recovered, {} quarantined",
            self.averaged.len(),
            self.completed,
            self.from_journal,
            self.recovered,
            self.quarantined.len()
        );
        if self.malformed_journal_lines > 0 {
            let _ = writeln!(
                out,
                "   ({} malformed journal line(s) ignored)",
                self.malformed_journal_lines
            );
        }
        for q in &self.quarantined {
            let _ = writeln!(out, "QUARANTINED {} replica {}:", q.scenario.label(), q.replica);
            for f in &q.failures {
                let _ = writeln!(out, "   {f}");
            }
        }
        for f in &self.failures {
            if !self.quarantined.iter().any(|q| {
                q.failures
                    .iter()
                    .any(|qf| qf.seed == f.seed && qf.attempt == f.attempt)
            }) {
                let _ = writeln!(out, "recovered after failure: {f}");
            }
        }
        out
    }
}

/// The job a supervisor isolates: anything that runs one scenario to a
/// [`ScenarioResult`].  Production sweeps pass [`run_scenario_probed`];
/// tests substitute deliberately crashing protocols.
pub type ScenarioRunner = dyn Fn(&Scenario, RunOptions, Option<Arc<ProgressProbe>>) -> ScenarioResult + Sync;

/// Outcome of one (scenario, replica) point after retries.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// The successful result, if any attempt succeeded.
    pub result: Option<ScenarioResult>,
    /// Every failed attempt, in order.
    pub failures: Vec<RunFailure>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// One isolated attempt: run `sc` with `seed` substituted, converting a
/// panic or a tripped watchdog into a [`RunFailure`].
fn attempt_one(
    runner: &ScenarioRunner,
    sc: &Scenario,
    seed: u64,
    attempt: u32,
    opts: RunOptions,
) -> Result<ScenarioResult, Box<RunFailure>> {
    let job = Scenario { seed, ..*sc };
    let probe = Arc::new(ProgressProbe::new());
    let shared = probe.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| runner(&job, opts, Some(shared))));
    let failure = |kind| {
        Box::new(RunFailure {
            scenario: job,
            seed,
            attempt,
            kind,
            events_processed: probe.events(),
            virtual_time_s: probe.virtual_time().as_secs_f64(),
            partial_digest: probe.partial_digest(),
        })
    };
    match outcome {
        Ok(res) => match res.budget_exceeded {
            Some(b) => Err(failure(FailureKind::Budget(b))),
            None => Ok(res),
        },
        Err(payload) => Err(failure(FailureKind::Panic(panic_message(payload)))),
    }
}

/// Run one point under full supervision: isolation, watchdog, bounded
/// retry on re-derived seeds.  Attempt 0 runs `sc.seed` itself; attempt
/// `a` runs `derive_seed(sc.seed, "retry", a)` so the retry explores a
/// different deterministic trajectory while every attempted seed stays
/// replayable from its failure record.
pub fn run_point(
    runner: &ScenarioRunner,
    sc: &Scenario,
    opts: RunOptions,
    sup: &SupervisorConfig,
) -> PointOutcome {
    let opts = sup.apply_budgets(opts);
    let mut failures = Vec::new();
    for attempt in 0..=sup.max_retries {
        let seed = if attempt == 0 {
            sc.seed
        } else {
            derive_seed(sc.seed, "retry", attempt as u64)
        };
        match attempt_one(runner, sc, seed, attempt, opts) {
            Ok(res) => {
                return PointOutcome {
                    result: Some(res),
                    failures,
                }
            }
            Err(f) => failures.push(*f),
        }
    }
    PointOutcome {
        result: None,
        failures,
    }
}

// ----- checkpoint journal -----------------------------------------------

/// Hash of everything that determines a replica's result except its seed:
/// with the seed it keys the journal, so identical points in different
/// sweep campaigns share completed work.  The scheduler backend is
/// deliberately excluded (results are bit-identical across backends); the
/// trace mode is included because it decides whether a digest exists.
pub fn config_hash(sc: &Scenario, opts: &RunOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write(sc.protocol.name().as_bytes());
    h.write_u64(sc.n_hosts as u64);
    h.write_u64(sc.max_speed.to_bits());
    h.write_u64(sc.pause_secs.to_bits());
    h.write_u64(sc.n_flows as u64);
    h.write_u64(sc.flow_rate_pps.to_bits());
    h.write_u64(sc.duration_secs.to_bits());
    h.write_u64(sc.model1_endpoints as u64);
    // the fault plan is all-Copy scalars; its Debug form is a canonical
    // rendering of every knob
    h.write(format!("{:?}", opts.faults).as_bytes());
    h.write_u8(match opts.trace {
        None => 0,
        Some(manet::trace::TraceMode::DigestOnly) => 1,
        Some(manet::trace::TraceMode::Full) => 2,
    });
    h.finish()
}

fn hex_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn enc_f64_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("\"{}\"", hex_bits(x)),
        None => "null".into(),
    }
}

/// `t_bits:v_bits` pairs joined by `;` — bit-exact and comma-free, so the
/// line stays trivially splittable.
fn enc_series(s: &TimeSeries) -> String {
    let body: Vec<String> = s
        .points()
        .iter()
        .map(|p| format!("{:016x}:{:016x}", p.t_secs.to_bits(), p.value.to_bits()))
        .collect();
    body.join(";")
}

fn dec_series(s: &str) -> Option<TimeSeries> {
    let mut out = TimeSeries::new();
    if s.is_empty() {
        return Some(out);
    }
    for pair in s.split(';') {
        let (t, v) = pair.split_once(':')?;
        out.push(
            f64::from_bits(u64::from_str_radix(t, 16).ok()?),
            f64::from_bits(u64::from_str_radix(v, 16).ok()?),
        );
    }
    Some(out)
}

/// One parsed journal line (scenario-free; the sweep re-binds it to its
/// in-memory scenario via the config hash).  `pub(crate)` so the sweep
/// service's job handler can reuse the journal as its resume store.
#[derive(Clone, Debug)]
pub(crate) struct JournalEntry {
    pub(crate) config: u64,
    pub(crate) seed: u64,
    pub(crate) replica: u64,
    pub(crate) alive: TimeSeries,
    pub(crate) aen: TimeSeries,
    pub(crate) pdr: Option<f64>,
    pub(crate) latency_ms: Option<f64>,
    pub(crate) pdr_590: Option<f64>,
    pub(crate) latency_ms_590: Option<f64>,
    pub(crate) network_death_s: Option<f64>,
    pub(crate) digest: Option<TraceDigest>,
}

impl JournalEntry {
    pub(crate) fn into_record(self, scenario: Scenario) -> ReplicaRecord {
        ReplicaRecord {
            scenario,
            replica: self.replica,
            alive: self.alive,
            aen: self.aen,
            pdr: self.pdr,
            latency_ms: self.latency_ms,
            pdr_590: self.pdr_590,
            latency_ms_590: self.latency_ms_590,
            network_death_s: self.network_death_s,
            digest: self.digest,
        }
    }
}

/// Encode one completed replica as a journal line.  No value may contain
/// a comma or `}` — hex, digits, `:` and `;` only — which keeps the
/// decoder a flat split.
pub(crate) fn encode_line(config: u64, seed: u64, rec: &ReplicaRecord) -> String {
    format!(
        "{{\"v\":1,\"config\":\"{:016x}\",\"seed\":{},\"replica\":{},\
         \"pdr\":{},\"latency_ms\":{},\"pdr_590\":{},\"latency_ms_590\":{},\"death_s\":{},\
         \"digest\":{},\"alive\":\"{}\",\"aen\":\"{}\"}}",
        config,
        seed,
        rec.replica,
        enc_f64_opt(rec.pdr),
        enc_f64_opt(rec.latency_ms),
        enc_f64_opt(rec.pdr_590),
        enc_f64_opt(rec.latency_ms_590),
        enc_f64_opt(rec.network_death_s),
        rec.digest
            .map(|d| format!("\"{d}\""))
            .unwrap_or_else(|| "null".into()),
        enc_series(&rec.alive),
        enc_series(&rec.aen),
    )
}

/// Raw value token of `"key":<token>` within a journal line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim_matches('"'))
}

fn dec_f64_opt(tok: &str) -> Option<Option<f64>> {
    if tok == "null" {
        Some(None)
    } else {
        Some(Some(f64::from_bits(u64::from_str_radix(tok, 16).ok()?)))
    }
}

fn parse_entry(line: &str) -> Option<JournalEntry> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return None; // e.g. a line truncated by a kill mid-append
    }
    if field(line, "v")? != "1" {
        return None;
    }
    let digest_tok = field(line, "digest")?;
    Some(JournalEntry {
        config: u64::from_str_radix(field(line, "config")?, 16).ok()?,
        seed: field(line, "seed")?.parse().ok()?,
        replica: field(line, "replica")?.parse().ok()?,
        alive: dec_series(field(line, "alive")?)?,
        aen: dec_series(field(line, "aen")?)?,
        pdr: dec_f64_opt(field(line, "pdr")?)?,
        latency_ms: dec_f64_opt(field(line, "latency_ms")?)?,
        pdr_590: dec_f64_opt(field(line, "pdr_590")?)?,
        latency_ms_590: dec_f64_opt(field(line, "latency_ms_590")?)?,
        network_death_s: dec_f64_opt(field(line, "death_s")?)?,
        digest: if digest_tok == "null" {
            None
        } else {
            Some(TraceDigest::parse(digest_tok)?)
        },
    })
}

/// Load a journal, tolerating a missing file and skipping (but counting)
/// malformed lines.  The file is read as raw bytes and decoded lossily:
/// garbage bytes mid-file (a torn write, disk corruption) poison only the
/// lines they touch — which then fail to parse and are counted — instead
/// of making the whole journal unreadable and silently re-running
/// everything.
fn load_journal(path: &Path) -> (Vec<JournalEntry>, usize) {
    let Ok(bytes) = fs::read(path) else {
        return (Vec::new(), 0);
    };
    let body = String::from_utf8_lossy(&bytes);
    let mut entries = Vec::new();
    let mut malformed = 0;
    for line in body.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(line) {
            Some(e) => entries.push(e),
            None => malformed += 1,
        }
    }
    (entries, malformed)
}

/// [`load_journal`] indexed by the resume key (config hash, seed).
/// Duplicate keys — e.g. two interrupted sweeps appending the same
/// replica — deduplicate with last-write-wins (the later line is the
/// more recent run of an identical, deterministic job) and are counted
/// with the malformed lines so the dedup is observable.
pub(crate) fn load_journal_indexed(path: &Path) -> (HashMap<(u64, u64), JournalEntry>, usize) {
    let (entries, mut anomalies) = load_journal(path);
    let mut index: HashMap<(u64, u64), JournalEntry> = HashMap::new();
    for e in entries {
        if index.insert((e.config, e.seed), e).is_some() {
            anomalies += 1;
        }
    }
    (index, anomalies)
}

// ----- the supervised sweep ---------------------------------------------

/// [`sweep_supervised_with`] running the production scenario runner.
pub fn sweep_supervised(
    scenarios: &[Scenario],
    replicas: usize,
    opts: RunOptions,
    sup: &SupervisorConfig,
) -> SweepReport {
    sweep_supervised_with(scenarios, replicas, opts, sup, &|sc, o, p| {
        run_scenario_probed(sc, o, p)
    })
}

/// Run every (scenario × replica) pair under supervision.
///
/// Replica `k` of a scenario keeps its plain-sweep identity
/// ([`replica_seed`]`(sc.seed, k)`), so the averaged results of an
/// all-healthy supervised sweep are bit-identical to [`crate::sweep`].
/// With a journal configured, already-journaled replicas are skipped and
/// re-read instead of re-run; each fresh completion is appended (and
/// flushed) immediately, so a killed sweep loses at most the replicas
/// that were mid-flight.
pub fn sweep_supervised_with(
    scenarios: &[Scenario],
    replicas: usize,
    opts: RunOptions,
    sup: &SupervisorConfig,
    runner: &ScenarioRunner,
) -> SweepReport {
    assert!(replicas >= 1);
    let opts = sup.apply_budgets(opts);

    // resume: index the journal by (config hash, seed)
    let mut journaled: HashMap<(u64, u64), JournalEntry> = HashMap::new();
    let mut malformed = 0;
    if let Some(path) = &sup.journal {
        let (index, bad) = load_journal_indexed(path);
        journaled = index;
        malformed = bad;
    }

    // split the grid into journal hits and jobs still to run
    let mut loaded: Vec<(usize, ReplicaRecord)> = Vec::new();
    let mut jobs: Vec<(usize, u64, Scenario, u64)> = Vec::new();
    for (idx, sc) in scenarios.iter().enumerate() {
        let cfg = config_hash(sc, &opts);
        for k in 0..replicas as u64 {
            let seed = replica_seed(sc.seed, k);
            let point = Scenario { seed, ..*sc };
            match journaled.remove(&(cfg, seed)) {
                Some(mut e) => {
                    e.replica = k; // trust our own indexing over the file's
                    loaded.push((idx, e.into_record(point)));
                }
                None => jobs.push((idx, k, point, cfg)),
            }
        }
    }
    let from_journal = loaded.len();

    // append-only journal writer, shared across rayon workers; every line
    // is written under the lock and flushed before the next job can commit
    let writer: Option<Mutex<fs::File>> = sup.journal.as_ref().map(|path| {
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        Mutex::new(
            fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .expect("open sweep journal"),
        )
    });

    let outcomes: Vec<(usize, u64, PointOutcome)> = jobs
        .par_iter()
        .map(|(idx, k, sc, cfg)| {
            let out = run_point(runner, sc, opts, sup);
            if let (Some(w), Some(res)) = (&writer, &out.result) {
                let rec = ReplicaRecord::from_result(*k, res);
                let line = encode_line(*cfg, sc.seed, &rec);
                let mut f = w.lock().expect("journal lock");
                let _ = writeln!(f, "{line}");
                let _ = f.flush();
            }
            (*idx, *k, out)
        })
        .collect();

    // assemble per-scenario groups in deterministic (replica k) order, so
    // resume-vs-fresh float accumulation is identical
    let mut groups: Vec<Vec<ReplicaRecord>> = (0..scenarios.len()).map(|_| Vec::new()).collect();
    for (idx, rec) in loaded {
        groups[idx].push(rec);
    }
    let mut report = SweepReport {
        from_journal,
        malformed_journal_lines: malformed,
        ..SweepReport::default()
    };
    for (idx, k, out) in outcomes {
        report.failures.extend(out.failures.iter().cloned());
        match out.result {
            Some(res) => {
                report.completed += 1;
                if !out.failures.is_empty() {
                    report.recovered += 1;
                }
                groups[idx].push(ReplicaRecord::from_result(k, &res));
            }
            None => report.quarantined.push(QuarantinedPoint {
                scenario: scenarios[idx],
                replica: k,
                failures: out.failures,
            }),
        }
    }
    for group in &mut groups {
        group.sort_by_key(|r| r.replica);
    }
    report.averaged = groups
        .iter()
        .filter_map(|g| average_results_degraded(g, replicas))
        .collect();
    report.replicas = groups.into_iter().flatten().collect();
    report
}

/// A journal-aware resumable sweep: [`sweep_supervised`] with a journal
/// required rather than optional.  After a kill, rerunning with the same
/// journal skips completed replicas and returns averaged results (and
/// per-replica digests) bit-identical to an uninterrupted run.
pub fn sweep_resumable(
    scenarios: &[Scenario],
    replicas: usize,
    opts: RunOptions,
    sup: &SupervisorConfig,
    journal: impl Into<PathBuf>,
) -> SweepReport {
    let sup = sup.clone().with_journal(journal);
    sweep_supervised(scenarios, replicas, opts, &sup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ProtocolKind;

    fn rec(seed: u64) -> ReplicaRecord {
        ReplicaRecord {
            scenario: Scenario {
                protocol: ProtocolKind::Ecgrid,
                n_hosts: 10,
                max_speed: 1.0,
                pause_secs: 0.0,
                n_flows: 2,
                flow_rate_pps: 1.0,
                duration_secs: 30.0,
                seed,
                model1_endpoints: 2,
            },
            replica: 3,
            alive: [(0.0, 1.0), (10.0, 0.75)].into_iter().collect(),
            aen: [(0.0, 0.0), (10.0, 0.1)].into_iter().collect(),
            pdr: Some(0.1 + 0.2), // deliberately non-representable exactly
            latency_ms: None,
            pdr_590: Some(f64::MIN_POSITIVE),
            latency_ms_590: Some(-0.0),
            network_death_s: None,
            digest: Some(TraceDigest(0xabcd_ef01_2345_6789)),
        }
    }

    #[test]
    fn journal_line_roundtrips_bit_exactly() {
        let r = rec(99);
        let line = encode_line(0xdead_beef, 99, &r);
        let e = parse_entry(&line).expect("parse");
        assert_eq!(e.config, 0xdead_beef);
        assert_eq!(e.seed, 99);
        assert_eq!(e.replica, 3);
        assert_eq!(e.pdr.map(f64::to_bits), r.pdr.map(f64::to_bits));
        assert_eq!(e.latency_ms, None);
        assert_eq!(e.pdr_590.map(f64::to_bits), r.pdr_590.map(f64::to_bits));
        // -0.0 survives (bits differ from +0.0)
        assert_eq!(e.latency_ms_590.map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(e.digest, r.digest);
        assert_eq!(e.alive.points().len(), 2);
        assert_eq!(e.alive.value_at(10.0), Some(0.75));
        assert_eq!(e.aen.value_at(10.0), Some(0.1));
    }

    #[test]
    fn truncated_and_garbage_lines_are_skipped() {
        let r = rec(7);
        let good = encode_line(1, 7, &r);
        let truncated = &good[..good.len() / 2];
        let dir = std::env::temp_dir().join("ecgrid_journal_parse_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        fs::write(&path, format!("{good}\n{truncated}\nnot json at all\n")).unwrap();
        let (entries, malformed) = load_journal(&path);
        assert_eq!(entries.len(), 1);
        assert_eq!(malformed, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty_not_an_error() {
        let (entries, malformed) = load_journal(Path::new("/nonexistent/definitely/not/here.jsonl"));
        assert!(entries.is_empty());
        assert_eq!(malformed, 0);
    }

    #[test]
    fn config_hash_ignores_seed_and_backend_but_not_shape() {
        let a = rec(1).scenario;
        let b = Scenario { seed: 999, ..a };
        let opts = RunOptions::default();
        assert_eq!(config_hash(&a, &opts), config_hash(&b, &opts));
        let c = Scenario { n_hosts: 11, ..a };
        assert_ne!(config_hash(&a, &opts), config_hash(&c, &opts));
        let calendar = RunOptions::default().with_backend(manet::Backend::Calendar);
        assert_eq!(config_hash(&a, &opts), config_hash(&a, &calendar));
        let traced = crate::run::RunOptions::digest();
        assert_ne!(config_hash(&a, &opts), config_hash(&a, &traced));
    }

    #[test]
    fn retry_seeds_are_rederived_not_repeated() {
        let s0 = 42;
        let s1 = derive_seed(s0, "retry", 1);
        let s2 = derive_seed(s0, "retry", 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
    }
}
