//! Rendering experiment output: paper-style ASCII tables and CSV files.

use metrics::TimeSeries;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Render several labelled series (sharing sample times) as a table whose
/// first column is time — the row/series format of Figs. 4, 5 and 8.
/// `every` subsamples rows (e.g. 10 = every 10th sample).
pub fn render_series_table(title: &str, labelled: &[(&str, &TimeSeries)], every: usize) -> String {
    assert!(!labelled.is_empty());
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = write!(out, "{:>8}", "t(s)");
    for (name, _) in labelled {
        let _ = write!(out, " {name:>10}");
    }
    let _ = writeln!(out);
    let n = labelled[0].1.len();
    for (_, s) in labelled {
        assert_eq!(s.len(), n, "series must share sample times");
    }
    let step = every.max(1);
    for i in (0..n).step_by(step) {
        let t = labelled[0].1.points()[i].t_secs;
        let _ = write!(out, "{t:>8.0}");
        for (_, s) in labelled {
            let _ = write!(out, " {:>10.4}", s.points()[i].value);
        }
        let _ = writeln!(out);
    }
    out
}

/// Crash-safe file write: the contents land in `<path>.tmp` first and are
/// renamed over `path` only once fully flushed, so a sweep killed mid-write
/// never leaves a truncated result file — readers see either the old
/// complete file or the new complete file.  Durable against power loss,
/// not just process death: the temp file is fsynced before the rename and
/// the parent directory after it (the rename itself lives in the
/// directory, so without the second fsync a crash can forget it).
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let tmp = tmp_sibling(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// `<path>.tmp`, appended to the full file name (not swapping the
/// extension, so `a.csv` and `a.jsonl` in one directory cannot collide on
/// the same temp name).
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write rows as CSV under `results/`.  The first row should be a header.
/// Atomic: see [`write_atomic`].
pub fn write_csv(path: &Path, rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut body = String::new();
    for row in rows {
        let _ = writeln!(body, "{}", row.join(","));
    }
    write_atomic(path, body.as_bytes())
}

/// CSV rows for labelled series sharing sample times.
pub fn series_csv_rows(labelled: &[(&str, &TimeSeries)]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut header = vec!["t_secs".to_string()];
    header.extend(labelled.iter().map(|(n, _)| n.to_string()));
    rows.push(header);
    let n = labelled[0].1.len();
    for i in 0..n {
        let mut row = vec![format!("{}", labelled[0].1.points()[i].t_secs)];
        for (_, s) in labelled {
            row.push(format!("{}", s.points()[i].value));
        }
        rows.push(row);
    }
    rows
}

/// Render labelled series (sharing sample times) as an ASCII chart —
/// value on the y axis, time on the x axis, one plot character per series.
/// Good enough to eyeball the paper's curve shapes in a terminal.
pub fn render_ascii_chart(
    title: &str,
    labelled: &[(&str, &TimeSeries)],
    width: usize,
    height: usize,
) -> String {
    assert!(!labelled.is_empty() && width >= 10 && height >= 4);
    const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let n = labelled[0].1.len();
    for (_, s) in labelled {
        assert_eq!(s.len(), n, "series must share sample times");
    }
    if n == 0 {
        return format!(
            "## {title}
(no samples)
"
        );
    }
    let t_min = labelled[0].1.points()[0].t_secs;
    let t_max = labelled[0].1.points()[n - 1].t_secs.max(t_min + 1e-9);
    let mut v_max = f64::MIN;
    let mut v_min = f64::MAX;
    for (_, s) in labelled {
        for p in s.points() {
            v_max = v_max.max(p.value);
            v_min = v_min.min(p.value);
        }
    }
    if (v_max - v_min).abs() < 1e-12 {
        v_max = v_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in labelled.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for p in s.points() {
            let x = ((p.t_secs - t_min) / (t_max - t_min) * (width - 1) as f64).round() as usize;
            let y = ((p.value - v_min) / (v_max - v_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = writeln!(out, "{v_max:>9.3} ┐");
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{:>9} │{line}", "");
    }
    let _ = writeln!(out, "{v_min:>9.3} ┴{}", "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>10} {t_min:<8.0}{:>w$.0}",
        "t(s):",
        t_max,
        w = width.saturating_sub(8)
    );
    let legend: Vec<String> = labelled
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", MARKS[i % MARKS.len()], name))
        .collect();
    let _ = writeln!(out, "{:>11}{}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[(f64, f64)]) -> TimeSeries {
        vals.iter().copied().collect()
    }

    #[test]
    fn table_renders_all_series() {
        let a = series(&[(0.0, 1.0), (10.0, 0.9)]);
        let b = series(&[(0.0, 1.0), (10.0, 0.8)]);
        let t = render_series_table("Fig. X", &[("GRID", &a), ("ECGRID", &b)], 1);
        assert!(t.contains("GRID"));
        assert!(t.contains("ECGRID"));
        assert!(t.contains("0.9"));
        assert!(t.contains("0.8"));
        assert_eq!(t.lines().count(), 4); // title + header + 2 rows
    }

    #[test]
    fn subsampling_reduces_rows() {
        let a: TimeSeries = (0..100).map(|i| (i as f64, 1.0)).collect();
        let t = render_series_table("T", &[("x", &a)], 10);
        assert_eq!(t.lines().count(), 2 + 10);
    }

    #[test]
    fn ascii_chart_plots_all_series() {
        let a: TimeSeries = (0..50)
            .map(|i| (i as f64 * 10.0, 1.0 - i as f64 / 50.0))
            .collect();
        let b: TimeSeries = (0..50)
            .map(|i| (i as f64 * 10.0, (i as f64 / 50.0 - 0.5).abs()))
            .collect();
        let chart = render_ascii_chart("shapes", &[("down", &a), ("vee", &b)], 60, 12);
        assert!(chart.contains("## shapes"));
        assert!(chart.contains('*') && chart.contains('o'), "both marks plotted");
        assert!(
            chart.contains("* down") && chart.contains("o vee"),
            "legend present"
        );
        // the chart body has exactly `height` grid rows
        let grid_rows = chart.lines().filter(|l| l.contains('│')).count();
        assert_eq!(grid_rows, 12);
    }

    #[test]
    fn ascii_chart_handles_flat_series() {
        let a: TimeSeries = (0..5).map(|i| (i as f64, 1.0)).collect();
        let chart = render_ascii_chart("flat", &[("c", &a)], 20, 4);
        assert!(chart.contains('*'));
    }

    #[test]
    fn csv_roundtrip() {
        let a = series(&[(0.0, 1.0), (10.0, 0.5)]);
        let rows = series_csv_rows(&[("alive", &a)]);
        assert_eq!(rows[0], vec!["t_secs", "alive"]);
        assert_eq!(rows[2], vec!["10", "0.5"]);
        let dir = std::env::temp_dir().join("ecgrid_report_test");
        let path = dir.join("t.csv");
        write_csv(&path, &rows).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("t_secs,alive"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_whole_file_and_cleans_up() {
        let dir = std::env::temp_dir().join("ecgrid_report_atomic_test");
        let path = dir.join("out.csv");
        write_atomic(&path, b"old contents, quite long\n").unwrap();
        write_atomic(&path, b"new\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new\n");
        // no .tmp litter once the write completed
        assert!(!dir.join("out.csv.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
