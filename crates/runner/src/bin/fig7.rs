//! Regenerates the paper's Fig. 7. See `runner::figures`.
fn main() {
    let opts = runner::figures::FigOpts::from_env();
    print!("{}", runner::figures::fig7(&opts));
}
