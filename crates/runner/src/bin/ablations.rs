//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **RAS wake latency** — the paper idealizes the Remotely Activated
//!   Switch; how sensitive are delivery latency and rate to its speed?
//! * **PHY capture** — our MAC omits RTS/CTS; with capture disabled every
//!   overlapping frame collides.  How much does the collision model move
//!   the headline metrics?
//! * **HELLO interval** — the paper attributes ECGRID's extra consumption
//!   (vs GAF) to HELLO beaconing; sweep the beacon period.
//!
//! ```sh
//! cargo run --release -p ecgrid-runner --bin ablations
//! ```

use ecgrid::{Ecgrid, EcgridConfig};
use manet::{FlowSet, FlowSpec, HostSetup, NodeId, SimDuration, SimTime, World, WorldConfig};
use mobility::{MobilityModel, RandomWaypoint};
use sim_engine::RngFactory;

struct Row {
    label: String,
    pdr: f64,
    latency_ms: f64,
    aen: f64,
    corrupted: u64,
    pages: u64,
}

fn run(label: &str, mut tweak_world: impl FnMut(&mut WorldConfig), cfg: EcgridConfig) -> Row {
    let seed = 42;
    let n_hosts = 100usize;
    let end = SimTime::from_secs(400);
    let horizon = end + SimDuration::from_secs(10);
    let rngs = RngFactory::new(seed);
    let model = RandomWaypoint::paper(1.0, 0.0);
    let hosts: Vec<HostSetup> = (0..n_hosts)
        .map(|i| HostSetup::paper(model.build_trace(&mut rngs.stream("mobility", i as u64), horizon)))
        .collect();
    let ids: Vec<NodeId> = (0..n_hosts as u32).map(NodeId).collect();
    let spec = FlowSpec {
        n_flows: 10,
        ..FlowSpec::paper_default(end)
    };
    let flows = FlowSet::random(&mut rngs.stream("traffic", 0), &ids, &spec);
    let mut wc = WorldConfig::paper_default(seed);
    tweak_world(&mut wc);
    let mut w = World::new(wc, hosts, flows, move |id| Ecgrid::new(cfg, id));
    let out = w.run_until(end);
    Row {
        label: label.to_string(),
        pdr: out.ledger.delivery_rate().unwrap_or(0.0),
        latency_ms: out.ledger.mean_latency_ms().unwrap_or(f64::NAN),
        aen: out.aen.last_value().unwrap_or(0.0),
        corrupted: out.stats.corrupted,
        pages: out.stats.pages_sent,
    }
}

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n## {title}");
    println!(
        "{:>28} {:>8} {:>12} {:>8} {:>10} {:>8}",
        "variant", "PDR", "latency(ms)", "aen", "corrupted", "pages"
    );
    for r in rows {
        println!(
            "{:>28} {:>7.1}% {:>12.2} {:>8.4} {:>10} {:>8}",
            r.label,
            100.0 * r.pdr,
            r.latency_ms,
            r.aen,
            r.corrupted,
            r.pages
        );
    }
}

fn main() {
    println!("ECGRID ablations: 100 hosts, 1 m/s, 10 flows x 1 pkt/s, 400 s");

    // 1. RAS wake latency
    let rows: Vec<Row> = [0.001, 0.005, 0.02, 0.1]
        .iter()
        .map(|&lat| {
            let cfg = EcgridConfig {
                forward_wake_wait: lat + 0.003,
                retire_wait: lat + 0.025,
                ..EcgridConfig::default()
            };
            run(
                &format!("wake latency {} ms", lat * 1000.0),
                |wc| {
                    wc.ras.wake_latency = SimDuration::from_secs_f64(lat);
                },
                cfg,
            )
        })
        .collect();
    print_rows("RAS wake latency (paper idealizes ~0)", &rows);

    // 2. PHY capture
    let rows = vec![
        run("capture 10 dB (default)", |_| {}, EcgridConfig::default()),
        run(
            "no capture",
            |wc| wc.capture_ratio = None,
            EcgridConfig::default(),
        ),
    ];
    print_rows("PHY capture effect (MAC realism budget)", &rows);

    // 3. HELLO interval
    let rows: Vec<Row> = [0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&h| {
            let cfg = EcgridConfig {
                hello_interval: h,
                election_window: h.max(1.0),
                gateway_silence: 3.0 * h,
                neighbor_ttl: 3.5 * h,
                ..EcgridConfig::default()
            };
            run(&format!("HELLO every {h} s"), |_| {}, cfg)
        })
        .collect();
    print_rows("HELLO interval (the paper's ECGRID-vs-GAF overhead)", &rows);
}
