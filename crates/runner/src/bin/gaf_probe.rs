//! Diagnostic: run the Fig. 4 GAF scenario and dump aggregate AODV/GAF
//! counters (where do lost packets go?).

use gaf::{GafConfig, GafProto};
use manet::{HostSetup, NodeId, SimTime, World, WorldConfig};
use runner::{ProtocolKind, Scenario};

fn main() {
    let sc = Scenario {
        protocol: ProtocolKind::Gaf,
        n_hosts: 100,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 10,
        flow_rate_pps: 1.0,
        duration_secs: std::env::var("DUR")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300.0),
        seed: 7,
        model1_endpoints: 10,
    };
    let end = SimTime::from_secs_f64(sc.duration_secs);
    let horizon = end + sim_engine::SimDuration::from_secs(10);
    let rngs = sim_engine::RngFactory::new(sc.seed);
    let model = mobility::RandomWaypoint::paper(sc.max_speed, sc.pause_secs);
    use mobility::MobilityModel;
    let total = sc.n_hosts + sc.model1_endpoints;
    let hosts: Vec<HostSetup> = (0..total)
        .map(|i| {
            let trace = model.build_trace(&mut rngs.stream("mobility", i as u64), horizon);
            if i < sc.n_hosts {
                HostSetup::paper(trace)
            } else {
                HostSetup::infinite(trace)
            }
        })
        .collect();
    let endpoint_ids: Vec<NodeId> = (sc.n_hosts as u32..total as u32).map(NodeId).collect();
    let spec = traffic::FlowSpec {
        n_flows: sc.n_flows,
        packet_bytes: 512,
        rate_pps: sc.flow_rate_pps,
        start: SimTime::from_secs(5),
        stop: end,
        stagger: true,
    };
    let flows = traffic::FlowSet::random(&mut rngs.stream("traffic", 0), &endpoint_ids, &spec);
    let n = sc.n_hosts;
    let mut w = World::new(WorldConfig::paper_default(sc.seed), hosts, flows, move |id| {
        if id.index() < n {
            GafProto::new(GafConfig::default(), id)
        } else {
            GafProto::endpoint(GafConfig::default(), id)
        }
    });
    w.run_until(end);

    let mut agg = aodv::AodvStats::default();
    let mut gstats = gaf::GafStats::default();
    for i in 0..total as u32 {
        let p = w.protocol(NodeId(i));
        let a = p.aodv_stats();
        agg.rreqs_sent += a.rreqs_sent;
        agg.rreqs_forwarded += a.rreqs_forwarded;
        agg.rreps_sent += a.rreps_sent;
        agg.data_forwarded += a.data_forwarded;
        agg.data_delivered += a.data_delivered;
        agg.data_dropped += a.data_dropped;
        agg.rerrs_sent += a.rerrs_sent;
        gstats.activations += p.stats.activations;
        gstats.sleeps += p.stats.sleeps;
        gstats.wakeups += p.stats.wakeups;
        gstats.beacons += p.stats.beacons;
    }
    println!(
        "ledger: sent {} delivered {} pdr {:?}",
        w.ledger().sent_count(),
        w.ledger().delivered_count(),
        w.ledger().delivery_rate()
    );
    println!("aodv:   {agg:?}");
    println!("gaf:    {gstats:?}");
    println!("world:  {:?}", w.stats());
    let lat = w.ledger().latencies_ms();
    for q in [50.0, 90.0, 95.0, 99.0, 100.0] {
        println!("latency p{q}: {:?}", metrics::percentile(&lat, q));
    }
}
