//! Regenerates the paper's Fig. 5. See `runner::figures`.
fn main() {
    let opts = runner::figures::FigOpts::from_env();
    print!("{}", runner::figures::fig5(&opts));
}
