//! Regenerates the paper's Fig. 8. See `runner::figures`.
fn main() {
    let opts = runner::figures::FigOpts::from_env();
    print!("{}", runner::figures::fig8(&opts));
}
