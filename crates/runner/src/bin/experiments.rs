//! Regenerates every figure of the paper in one go and prints the
//! paper-vs-measured summary (EXPERIMENTS.md is derived from this output).
fn main() {
    let opts = runner::figures::FigOpts::from_env();
    eprintln!(
        "running all experiments (replicas={}, fast={})",
        opts.replicas, opts.fast
    );
    print!("{}", runner::figures::fig4(&opts));
    print!("{}", runner::figures::fig5(&opts));
    print!("{}", runner::figures::fig6(&opts));
    print!("{}", runner::figures::fig7(&opts));
    print!("{}", runner::figures::fig8(&opts));
}
