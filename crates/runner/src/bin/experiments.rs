//! Regenerates every figure of the paper in one go and prints the
//! paper-vs-measured summary (EXPERIMENTS.md is derived from this output).
//!
//! Supervision flags (each also settable via its environment variable):
//!
//! ```sh
//! experiments [--journal FILE.jsonl] [--max-retries N] [--event-budget N]
//! #            ECGRID_JOURNAL         ECGRID_MAX_RETRIES ECGRID_EVENT_BUDGET
//! ```
//!
//! With `--journal`, every sweep runs supervised and checkpoints each
//! completed replica; rerunning after a crash or kill skips the journaled
//! work and reproduces the same figures (see DESIGN.md §9).

use std::fmt::Display;
use std::str::FromStr;

fn fail(msg: impl Display) -> ! {
    eprintln!("experiments: {msg}");
    std::process::exit(1);
}

fn parse_val<T: FromStr>(flag: &str, v: &str) -> T
where
    T::Err: Display,
{
    v.parse()
        .unwrap_or_else(|e| fail(format!("{flag}: invalid value {v:?}: {e}")))
}

fn main() {
    let mut opts = runner::figures::FigOpts::from_env();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let k = &args[i];
        let Some(v) = args.get(i + 1) else {
            fail(format!("flag {k} needs a value"));
        };
        match k.as_str() {
            "--journal" => opts.journal = Some(v.into()),
            "--max-retries" => opts.max_retries = Some(parse_val(k, v)),
            "--event-budget" => opts.event_budget = Some(parse_val(k, v)),
            "--replicas" => opts.replicas = parse_val(k, v),
            other => fail(format!(
                "unknown flag {other} (expected --journal/--max-retries/--event-budget/--replicas)"
            )),
        }
        i += 2;
    }
    eprintln!(
        "running all experiments (replicas={}, fast={}{})",
        opts.replicas,
        opts.fast,
        if opts.supervised() {
            format!(
                ", supervised: retries={} budget={:?} journal={:?}",
                opts.max_retries.unwrap_or(2),
                opts.event_budget,
                opts.journal
            )
        } else {
            String::new()
        }
    );
    print!("{}", runner::figures::fig4(&opts));
    print!("{}", runner::figures::fig5(&opts));
    print!("{}", runner::figures::fig6(&opts));
    print!("{}", runner::figures::fig7(&opts));
    print!("{}", runner::figures::fig8(&opts));
}
