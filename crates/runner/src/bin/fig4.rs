//! Regenerates the paper's Fig. 4. See `runner::figures`.
fn main() {
    let opts = runner::figures::FigOpts::from_env();
    print!("{}", runner::figures::fig4(&opts));
}
