//! Run a single scenario from the command line and print its summary.
//!
//! ```sh
//! cargo run --release -p ecgrid-runner --bin run_one -- \
//!     --protocol ecgrid --hosts 100 --speed 1 --pause 0 \
//!     --flows 10 --rate 1 --duration 2000 --seed 42
//! ```

use runner::{run_scenario, ProtocolKind, Scenario};

const HELP: &str = "\
run_one — run a single ECGRID-reproduction scenario

USAGE:
    run_one [--protocol grid|ecgrid|gaf|span] [--hosts N] [--speed M/S]
            [--pause S] [--flows N] [--rate PPS] [--duration S] [--seed N]

Defaults are the paper's base configuration (ECGRID, 100 hosts, 1 m/s,
pause 0, 10 flows x 1 pkt/s, 2000 s, seed 42).";

fn parse_args() -> Scenario {
    let mut sc = Scenario::paper_base(ProtocolKind::Ecgrid, 1.0, 42);
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        std::process::exit(0);
    }
    let mut i = 1;
    while i + 1 < args.len() {
        let (k, v) = (&args[i], &args[i + 1]);
        match k.as_str() {
            "--protocol" => {
                sc.protocol = match v.to_lowercase().as_str() {
                    "grid" => ProtocolKind::Grid,
                    "ecgrid" => ProtocolKind::Ecgrid,
                    "gaf" => ProtocolKind::Gaf,
                    "span" => ProtocolKind::Span,
                    other => panic!("unknown protocol {other}"),
                }
            }
            "--hosts" => sc.n_hosts = v.parse().expect("--hosts"),
            "--speed" => sc.max_speed = v.parse().expect("--speed"),
            "--pause" => sc.pause_secs = v.parse().expect("--pause"),
            "--flows" => sc.n_flows = v.parse().expect("--flows"),
            "--rate" => sc.flow_rate_pps = v.parse().expect("--rate"),
            "--duration" => sc.duration_secs = v.parse().expect("--duration"),
            "--seed" => sc.seed = v.parse().expect("--seed"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    sc
}

fn main() {
    let sc = parse_args();
    eprintln!("running: {}", sc.label());
    let start = std::time::Instant::now();
    let r = run_scenario(&sc);
    eprintln!(
        "({} s simulated in {:.1} s wall)",
        sc.duration_secs,
        start.elapsed().as_secs_f64()
    );

    println!("protocol:        {}", sc.protocol.name());
    println!("packets sent:    {}", r.ledger.sent_count());
    println!(
        "delivered:       {} ({:.2}%)",
        r.ledger.delivered_count(),
        100.0 * r.pdr.unwrap_or(0.0)
    );
    println!(
        "mean latency:    {} ms",
        r.latency_ms
            .map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "pdr (<590s):     {}",
        r.pdr_590
            .map(|x| format!("{:.2}%", 100.0 * x))
            .unwrap_or_else(|| "-".into())
    );
    println!("alive at end:    {:.2}", r.alive.last_value().unwrap_or(1.0));
    println!("aen at end:      {:.4}", r.aen.last_value().unwrap_or(0.0));
    println!(
        "network death:   {}",
        r.network_death_s
            .map(|t| format!("{t:.0} s"))
            .unwrap_or_else(|| "none".into())
    );
    println!("world stats:     {:?}", r.stats);
}
