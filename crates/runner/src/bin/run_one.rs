//! Run a single scenario from the command line and print its summary.
//!
//! ```sh
//! cargo run --release -p ecgrid-runner --bin run_one -- \
//!     --protocol ecgrid --hosts 100 --speed 1 --pause 0 \
//!     --flows 10 --rate 1 --duration 2000 --seed 42 \
//!     --backend heap --trace out.jsonl
//! ```

use manet::trace::TraceMode;
use manet::{Backend, FaultPlan, GatherFallback, NeighborIndex};
use runner::supervisor::{run_point, SupervisorConfig};
use runner::{run_scenario_probed, run_scenario_with, sweep_supervised, ProtocolKind, RunOptions, Scenario};
use std::fmt::Display;
use std::fs::File;
use std::io::BufWriter;
use std::str::FromStr;

const HELP: &str = "\
run_one — run a single ECGRID-reproduction scenario

USAGE:
    run_one [--protocol grid|ecgrid|gaf|span] [--hosts N] [--speed M/S]
            [--pause S] [--flows N] [--rate PPS] [--duration S] [--seed N]
            [--scenario FILE.scn] [--groups-json FILE.json]
            [--backend heap|calendar] [--neighbor-index brute|grid]
            [--gather-fallback auto|on|off] [--parallel-world] [--shards K]
            [--threads T] [--trace FILE.jsonl] [--digest] [--faults SPEC]
            [--event-budget N] [--wall-budget SECS] [--max-retries N]
            [--journal FILE.jsonl]

Defaults are the paper's base configuration (ECGRID, 100 hosts, 1 m/s,
pause 0, 10 flows x 1 pkt/s, 2000 s, seed 42).

--scenario FILE  run a declarative scenario file (heterogeneous host
               groups; see examples/*.scn and DESIGN.md §15) instead of
               the homogeneous knobs; --hosts/--speed/--pause/--flows/
               --rate/--duration/--seed are ignored, --protocol still
               picks the protocol.  Prints a per-group metrics table.
--groups-json FILE  with --scenario: also write the per-group metrics
               as a JSON array (the CI artifact format)

--trace FILE   record the full event stream and export it as JSONL
--digest       record in digest-only mode (O(1) memory; prints the digest)
--backend      pending-event-set implementation (results are identical)
--neighbor-index  receiver-discovery strategy: the spatial grid-bucket
               index (default) or the brute-force reference scan; trace
               digests are bit-identical either way
--gather-fallback  when the grid index falls back to a brute scan:
               adaptively below the occupancy crossover (default),
               always, or never; digests are identical in all three
               modes (ignored under --neighbor-index brute)
--parallel-world  run on the sharded conservative-sync engine (4 strips
               unless --shards says otherwise); the trace digest is
               bit-identical to the serial engine's
--shards K     shard count for the sharded engine (implies
               --parallel-world); 0 = auto from available_parallelism
--threads T    worker lanes for the parallel engine's host-plane kernels
               (implies --parallel-world); 0 = auto
               (min(shards, available_parallelism)), 1 = inline; the
               digest is bit-identical at every T
--faults SPEC  comma-separated fault plan, e.g.
               loss=0.1,churn=0.01,page_fail=0.2,drain=0.005,gps=15
               (keys: loss, ge, page_fail, page_delay, churn, rejoin,
               battery_var, drain, drain_frac, gps, seed; all faults are
               deterministic functions of the seeds)

Supervision (see DESIGN.md §9):
--event-budget N   watchdog: abort after N dispatched events (exit 2)
--wall-budget S    watchdog: abort after S wall-clock seconds (exit 2);
                   unlike the event budget this is non-deterministic, so
                   trips are quarantined, never retried into the journal
--max-retries N    run under panic isolation; retry failures up to N
                   times on re-derived seeds, then exit 3 with a
                   failure report
--journal FILE     checkpoint the run in a resumable sweep journal; a
                   rerun with the same journal skips completed work

EXIT STATUS:  0 success · 1 bad usage · 2 budget exceeded · 3 quarantined";

fn fail(msg: impl Display) -> ! {
    eprintln!("run_one: {msg}");
    eprintln!("(run with --help for usage)");
    std::process::exit(1);
}

/// Parse a flag value with the flag's name in the error message instead
/// of a bare unwrap panic.
fn parse_val<T: FromStr>(flag: &str, v: &str) -> T
where
    T::Err: Display,
{
    v.parse()
        .unwrap_or_else(|e| fail(format!("{flag}: invalid value {v:?}: {e}")))
}

struct Cli {
    sc: Scenario,
    opts: RunOptions,
    trace_path: Option<String>,
    max_retries: Option<u32>,
    journal: Option<String>,
    scenario_path: Option<String>,
    groups_json: Option<String>,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        sc: Scenario::paper_base(ProtocolKind::Ecgrid, 1.0, 42),
        opts: RunOptions::default(),
        trace_path: None,
        max_retries: None,
        journal: None,
        scenario_path: None,
        groups_json: None,
    };
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        std::process::exit(0);
    }
    // `--parallel-world` alone defaults to 4 strips, but an explicit
    // `--shards` (including 0 = auto) must win regardless of flag order.
    let mut shards_given = false;
    let mut i = 1;
    while i < args.len() {
        let k = &args[i];
        // flags without a value
        if k == "--digest" {
            if cli.opts.trace.is_none() {
                cli.opts.trace = Some(TraceMode::DigestOnly);
            }
            i += 1;
            continue;
        }
        if k == "--parallel-world" {
            cli.opts.parallel_world = true;
            i += 1;
            continue;
        }
        let Some(v) = args.get(i + 1) else {
            fail(format!("flag {k} needs a value"));
        };
        match k.as_str() {
            "--protocol" => {
                cli.sc.protocol = match v.to_lowercase().as_str() {
                    "grid" => ProtocolKind::Grid,
                    "ecgrid" => ProtocolKind::Ecgrid,
                    "gaf" => ProtocolKind::Gaf,
                    "span" => ProtocolKind::Span,
                    other => fail(format!(
                        "unknown protocol {other:?} (expected grid|ecgrid|gaf|span)"
                    )),
                }
            }
            "--hosts" => cli.sc.n_hosts = parse_val(k, v),
            "--speed" => cli.sc.max_speed = parse_val(k, v),
            "--pause" => cli.sc.pause_secs = parse_val(k, v),
            "--flows" => cli.sc.n_flows = parse_val(k, v),
            "--rate" => cli.sc.flow_rate_pps = parse_val(k, v),
            "--duration" => cli.sc.duration_secs = parse_val(k, v),
            "--seed" => cli.sc.seed = parse_val(k, v),
            "--backend" => {
                cli.opts.backend = Backend::parse(v)
                    .unwrap_or_else(|| fail(format!("--backend: {v:?} (expected heap|calendar)")))
            }
            "--neighbor-index" => {
                cli.opts.neighbor_index = NeighborIndex::parse(v)
                    .unwrap_or_else(|| fail(format!("--neighbor-index: {v:?} (expected brute|grid)")))
            }
            "--gather-fallback" => {
                cli.opts.gather_fallback = GatherFallback::parse(v)
                    .unwrap_or_else(|| fail(format!("--gather-fallback: {v:?} (expected auto|on|off)")))
            }
            "--faults" => match FaultPlan::parse(v) {
                Ok(plan) => cli.opts.faults = plan,
                Err(e) => fail(format!("--faults: {e}")),
            },
            "--trace" => {
                cli.opts.trace = Some(TraceMode::Full);
                cli.trace_path = Some(v.clone());
            }
            "--shards" => {
                cli.opts.parallel_world = true;
                cli.opts.shards = parse_val(k, v);
                shards_given = true;
            }
            "--threads" => {
                cli.opts.parallel_world = true;
                cli.opts.threads = parse_val(k, v);
            }
            "--event-budget" => cli.opts.event_budget = Some(parse_val(k, v)),
            "--wall-budget" => {
                let secs: f64 = parse_val(k, v);
                if secs.is_nan() || secs <= 0.0 {
                    fail(format!("--wall-budget: {v:?} must be positive"));
                }
                cli.opts.wall_budget_ms = Some((secs * 1000.0).ceil() as u64);
            }
            "--max-retries" => cli.max_retries = Some(parse_val(k, v)),
            "--journal" => cli.journal = Some(v.clone()),
            "--scenario" => cli.scenario_path = Some(v.clone()),
            "--groups-json" => cli.groups_json = Some(v.clone()),
            other => fail(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if cli.opts.parallel_world && !shards_given && cli.opts.shards < 2 {
        cli.opts.shards = 4;
    }
    cli
}

/// Human label for an engine request before the auto values resolve.
fn auto_or(n: usize) -> String {
    if n == 0 {
        "auto".into()
    } else {
        n.to_string()
    }
}

/// Minimal JSON string escape for group names (the parser already
/// rejects embedded quotes, so this is belt-and-braces).
fn json_str(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn groups_json_doc(groups: &[runner::GroupReport]) -> String {
    let rows: Vec<String> = groups
        .iter()
        .map(|g| {
            format!(
                concat!(
                    "{{\"group\":\"{}\",\"role\":\"{}\",\"mobility\":\"{}\",",
                    "\"hosts\":{},\"finite\":{},\"alive\":{},",
                    "\"alive_fraction\":{:.6},\"aen\":{:.6},",
                    "\"sent\":{},\"delivered\":{}}}"
                ),
                json_str(&g.name),
                g.role,
                g.mobility,
                g.stats.hosts,
                g.stats.finite,
                g.stats.alive,
                g.stats.alive_fraction(),
                g.stats.aen(),
                g.sent,
                g.delivered,
            )
        })
        .collect();
    format!("[{}]\n", rows.join(","))
}

fn print_groups(r: &runner::ScenarioResult) {
    if r.groups.is_empty() {
        return;
    }
    println!("per-group metrics:");
    println!(
        "    {:<16} {:<9} {:<10} {:>5} {:>7} {:>8} {:>8} {:>10}",
        "group", "role", "mobility", "hosts", "alive", "aen", "pdr", "sent"
    );
    for g in &r.groups {
        println!(
            "    {:<16} {:<9} {:<10} {:>5} {:>6.0}% {:>8.4} {:>8} {:>10}",
            g.name,
            g.role,
            g.mobility,
            g.stats.hosts,
            100.0 * g.stats.alive_fraction(),
            g.stats.aen(),
            g.delivery_rate()
                .map(|x| format!("{:.1}%", 100.0 * x))
                .unwrap_or_else(|| "-".into()),
            g.sent,
        );
    }
}

fn main() {
    let cli = parse_args();
    let (sc, opts) = (cli.sc, cli.opts);

    // scenario-file mode: heterogeneous groups through run_spec
    if let Some(path) = &cli.scenario_path {
        if cli.journal.is_some() || cli.max_retries.is_some() {
            fail("--scenario does not combine with --journal/--max-retries");
        }
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("--scenario: cannot read {path:?}: {e}")));
        let spec = scenario::parse(&text).unwrap_or_else(|e| fail(format!("--scenario: {path}: {e}")));
        eprintln!(
            "running scenario file: {} ({} hosts in {} groups, {} on {})",
            spec.name,
            spec.total_hosts(),
            spec.groups.len(),
            sc.protocol.name(),
            opts.backend.name(),
        );
        let start = std::time::Instant::now();
        let r = runner::run_spec(&spec, sc.protocol, opts);
        let wall = start.elapsed().as_secs_f64();
        eprintln!("({} s simulated in {wall:.1} s wall)", spec.duration_s);
        println!("protocol:        {}", sc.protocol.name());
        match r.engine {
            Some((k, t)) => println!("engine:          sharded (shards {k}, threads {t})"),
            None => println!("engine:          serial"),
        }
        println!("packets sent:    {}", r.ledger.sent_count());
        println!(
            "delivered:       {} ({:.2}%)",
            r.ledger.delivered_count(),
            100.0 * r.pdr.unwrap_or(0.0)
        );
        println!("alive at end:    {:.2}", r.alive.last_value().unwrap_or(1.0));
        println!("aen at end:      {:.4}", r.aen.last_value().unwrap_or(0.0));
        print_groups(&r);
        if let Some(rec) = &r.recorder {
            println!("trace digest:    {}", rec.digest());
            if let Some(path) = &cli.trace_path {
                let f = File::create(path)
                    .unwrap_or_else(|e| fail(format!("--trace: cannot create {path:?}: {e}")));
                let mut w = BufWriter::new(f);
                let n = rec
                    .write_jsonl(sc.protocol.name(), &mut w)
                    .unwrap_or_else(|e| fail(format!("--trace: writing {path:?} failed: {e}")));
                eprintln!("wrote {n} events to {path}");
            }
        }
        if let Some(path) = &cli.groups_json {
            std::fs::write(path, groups_json_doc(&r.groups))
                .unwrap_or_else(|e| fail(format!("--groups-json: cannot write {path:?}: {e}")));
            eprintln!("wrote per-group metrics to {path}");
        }
        if let Some(b) = r.budget_exceeded {
            eprintln!("run_one: {b}");
            std::process::exit(2);
        }
        return;
    }

    // journaled mode: a one-scenario supervised sweep, so a rerun with the
    // same journal skips the completed run and replays its metrics
    if let Some(journal) = &cli.journal {
        let sup = SupervisorConfig::default()
            .with_max_retries(cli.max_retries.unwrap_or(2))
            .with_event_budget(opts.event_budget)
            .with_journal(journal);
        eprintln!("running supervised: {} (journal {journal})", sc.label());
        let report = sweep_supervised(&[sc], 1, opts, &sup);
        print!("{}", report.render());
        if let Some(avg) = report.averaged.first() {
            println!(
                "pdr: {}   latency: {} ms   death: {}",
                avg.pdr
                    .map(|x| format!("{:.2}%", 100.0 * x))
                    .unwrap_or_else(|| "-".into()),
                avg.latency_ms
                    .map(|x| format!("{x:.2}"))
                    .unwrap_or_else(|| "-".into()),
                avg.network_death_s
                    .map(|t| format!("{t:.0} s"))
                    .unwrap_or_else(|| "none".into()),
            );
        }
        if !report.quarantined.is_empty() {
            std::process::exit(3);
        }
        return;
    }

    let engine = if opts.parallel_world {
        format!(
            "sharded x{}, threads {}",
            auto_or(opts.shards),
            auto_or(opts.threads)
        )
    } else {
        "serial".into()
    };
    eprintln!(
        "running: {} [{}, {} index, fallback {}, {engine} engine]",
        sc.label(),
        opts.backend.name(),
        opts.neighbor_index.name(),
        opts.gather_fallback.name()
    );
    let start = std::time::Instant::now();

    // supervised (unjournaled) mode: panic isolation + bounded retry
    let r = if let Some(retries) = cli.max_retries {
        let sup = SupervisorConfig::default()
            .with_max_retries(retries)
            .with_event_budget(opts.event_budget);
        let out = run_point(&|s, o, p| run_scenario_probed(s, o, p), &sc, opts, &sup);
        for f in &out.failures {
            eprintln!("attempt failed: {f}");
        }
        match out.result {
            Some(r) => r,
            None => {
                eprintln!(
                    "quarantined after {} attempt(s); seeds above replay each failure",
                    out.failures.len()
                );
                std::process::exit(3);
            }
        }
    } else {
        run_scenario_with(&sc, opts)
    };
    let wall = start.elapsed().as_secs_f64();
    eprintln!("({} s simulated in {wall:.1} s wall)", sc.duration_secs);

    println!("protocol:        {}", sc.protocol.name());
    match r.engine {
        Some((k, t)) => println!("engine:          sharded (shards {k}, threads {t})"),
        None => println!("engine:          serial"),
    }
    println!("packets sent:    {}", r.ledger.sent_count());
    println!(
        "delivered:       {} ({:.2}%)",
        r.ledger.delivered_count(),
        100.0 * r.pdr.unwrap_or(0.0)
    );
    println!(
        "mean latency:    {} ms",
        r.latency_ms
            .map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "pdr (<590s):     {}",
        r.pdr_590
            .map(|x| format!("{:.2}%", 100.0 * x))
            .unwrap_or_else(|| "-".into())
    );
    println!("alive at end:    {:.2}", r.alive.last_value().unwrap_or(1.0));
    println!("aen at end:      {:.4}", r.aen.last_value().unwrap_or(0.0));
    println!(
        "network death:   {}",
        r.network_death_s
            .map(|t| format!("{t:.0} s"))
            .unwrap_or_else(|| "none".into())
    );
    println!("world stats:     {:?}", r.stats);
    if opts.faults.is_active() {
        println!(
            "faults:          {} frames lost, {} pages lost, {} crashes, {} rejoins, {} drains",
            r.stats.frames_lost_fault,
            r.stats.pages_lost_fault,
            r.stats.crashes,
            r.stats.rejoins,
            r.stats.fault_drains
        );
    }

    if let Some(rec) = &r.recorder {
        println!("trace digest:    {}", rec.digest());
        println!("trace events:    {}", rec.count());
        let prof = rec.profile();
        println!(
            "sched profile:   {} events dispatched, {:.0} events/s wall, max queue depth {}",
            prof.dispatched,
            prof.events_per_sec(wall),
            prof.max_queue_depth
        );
        for (domain, n) in prof.by_domain() {
            println!("    {domain:<14} {n}");
        }
        if let Some(path) = cli.trace_path {
            let f =
                File::create(&path).unwrap_or_else(|e| fail(format!("--trace: cannot create {path:?}: {e}")));
            let mut w = BufWriter::new(f);
            let n = rec
                .write_jsonl(sc.protocol.name(), &mut w)
                .unwrap_or_else(|e| fail(format!("--trace: writing {path:?} failed: {e}")));
            eprintln!("wrote {n} events to {path}");
        }
    }

    // the watchdog tripped: the metrics above describe a truncated run
    if let Some(b) = r.budget_exceeded {
        eprintln!("run_one: {b}");
        std::process::exit(2);
    }
}
