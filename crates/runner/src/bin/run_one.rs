//! Run a single scenario from the command line and print its summary.
//!
//! ```sh
//! cargo run --release -p ecgrid-runner --bin run_one -- \
//!     --protocol ecgrid --hosts 100 --speed 1 --pause 0 \
//!     --flows 10 --rate 1 --duration 2000 --seed 42 \
//!     --backend heap --trace out.jsonl
//! ```

use manet::trace::TraceMode;
use manet::{Backend, FaultPlan};
use runner::{run_scenario_with, ProtocolKind, RunOptions, Scenario};
use std::fs::File;
use std::io::BufWriter;

const HELP: &str = "\
run_one — run a single ECGRID-reproduction scenario

USAGE:
    run_one [--protocol grid|ecgrid|gaf|span] [--hosts N] [--speed M/S]
            [--pause S] [--flows N] [--rate PPS] [--duration S] [--seed N]
            [--backend heap|calendar] [--trace FILE.jsonl] [--digest]
            [--faults SPEC]

Defaults are the paper's base configuration (ECGRID, 100 hosts, 1 m/s,
pause 0, 10 flows x 1 pkt/s, 2000 s, seed 42).

--trace FILE   record the full event stream and export it as JSONL
--digest       record in digest-only mode (O(1) memory; prints the digest)
--backend      pending-event-set implementation (results are identical)
--faults SPEC  comma-separated fault plan, e.g.
               loss=0.1,churn=0.01,page_fail=0.2,drain=0.005,gps=15
               (keys: loss, ge, page_fail, page_delay, churn, rejoin,
               battery_var, drain, drain_frac, gps, seed; all faults are
               deterministic functions of the seeds)";

fn parse_args() -> (Scenario, RunOptions, Option<String>) {
    let mut sc = Scenario::paper_base(ProtocolKind::Ecgrid, 1.0, 42);
    let mut opts = RunOptions::default();
    let mut trace_path = None;
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        std::process::exit(0);
    }
    let mut i = 1;
    while i < args.len() {
        let k = &args[i];
        // flags without a value
        if k == "--digest" {
            if opts.trace.is_none() {
                opts.trace = Some(TraceMode::DigestOnly);
            }
            i += 1;
            continue;
        }
        let Some(v) = args.get(i + 1) else {
            panic!("flag {k} needs a value (see --help)");
        };
        match k.as_str() {
            "--protocol" => {
                sc.protocol = match v.to_lowercase().as_str() {
                    "grid" => ProtocolKind::Grid,
                    "ecgrid" => ProtocolKind::Ecgrid,
                    "gaf" => ProtocolKind::Gaf,
                    "span" => ProtocolKind::Span,
                    other => panic!("unknown protocol {other}"),
                }
            }
            "--hosts" => sc.n_hosts = v.parse().expect("--hosts"),
            "--speed" => sc.max_speed = v.parse().expect("--speed"),
            "--pause" => sc.pause_secs = v.parse().expect("--pause"),
            "--flows" => sc.n_flows = v.parse().expect("--flows"),
            "--rate" => sc.flow_rate_pps = v.parse().expect("--rate"),
            "--duration" => sc.duration_secs = v.parse().expect("--duration"),
            "--seed" => sc.seed = v.parse().expect("--seed"),
            "--backend" => opts.backend = Backend::parse(v).expect("--backend heap|calendar"),
            "--faults" => match FaultPlan::parse(v) {
                Ok(plan) => opts.faults = plan,
                Err(e) => panic!("--faults: {e}"),
            },
            "--trace" => {
                opts.trace = Some(TraceMode::Full);
                trace_path = Some(v.clone());
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    (sc, opts, trace_path)
}

fn main() {
    let (sc, opts, trace_path) = parse_args();
    eprintln!("running: {} [{}]", sc.label(), opts.backend.name());
    let start = std::time::Instant::now();
    let r = run_scenario_with(&sc, opts);
    let wall = start.elapsed().as_secs_f64();
    eprintln!("({} s simulated in {wall:.1} s wall)", sc.duration_secs);

    println!("protocol:        {}", sc.protocol.name());
    println!("packets sent:    {}", r.ledger.sent_count());
    println!(
        "delivered:       {} ({:.2}%)",
        r.ledger.delivered_count(),
        100.0 * r.pdr.unwrap_or(0.0)
    );
    println!(
        "mean latency:    {} ms",
        r.latency_ms
            .map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "pdr (<590s):     {}",
        r.pdr_590
            .map(|x| format!("{:.2}%", 100.0 * x))
            .unwrap_or_else(|| "-".into())
    );
    println!("alive at end:    {:.2}", r.alive.last_value().unwrap_or(1.0));
    println!("aen at end:      {:.4}", r.aen.last_value().unwrap_or(0.0));
    println!(
        "network death:   {}",
        r.network_death_s
            .map(|t| format!("{t:.0} s"))
            .unwrap_or_else(|| "none".into())
    );
    println!("world stats:     {:?}", r.stats);
    if opts.faults.is_active() {
        println!(
            "faults:          {} frames lost, {} pages lost, {} crashes, {} rejoins, {} drains",
            r.stats.frames_lost_fault,
            r.stats.pages_lost_fault,
            r.stats.crashes,
            r.stats.rejoins,
            r.stats.fault_drains
        );
    }

    if let Some(rec) = &r.recorder {
        println!("trace digest:    {}", rec.digest());
        println!("trace events:    {}", rec.count());
        let prof = rec.profile();
        println!(
            "sched profile:   {} events dispatched, {:.0} events/s wall, max queue depth {}",
            prof.dispatched,
            prof.events_per_sec(wall),
            prof.max_queue_depth
        );
        for (domain, n) in prof.by_domain() {
            println!("    {domain:<14} {n}");
        }
        if let Some(path) = trace_path {
            let f = File::create(&path).expect("create trace file");
            let mut w = BufWriter::new(f);
            let n = rec.write_jsonl(sc.protocol.name(), &mut w).expect("write trace");
            eprintln!("wrote {n} events to {path}");
        }
    }
}
