//! `sweepd` — the resident sweep service.
//!
//! Listens on a loopback TCP port for line-delimited JSON requests
//! (submit / status / subscribe / result / stats / shutdown), runs each
//! accepted job through the supervised scenario stack, and checkpoints
//! every completed replica to a journal so a restart resumes bit for
//! bit.  See DESIGN.md §13 for the protocol grammar and failure matrix.

use manet::trace::TraceMode;
use manet::Backend;
use runner::supervisor::SupervisorConfig;
use runner::{EcgridJobHandler, RunOptions};
use service::{Server, ServiceConfig};
use std::fmt::Display;
use std::io::Write as _;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const HELP: &str = "\
sweepd — resident sweep service for the ECGRID reproduction

USAGE:
    sweepd [--addr HOST:PORT] [--workers N] [--capacity N]
           [--state-dir DIR] [--sub-buffer N] [--retry-after MS]
           [--backend heap|calendar] [--parallel-world] [--shards K]
           [--threads T] [--event-budget N] [--wall-budget SECS]
           [--max-retries N]

--addr          listen address (default 127.0.0.1:7171; port 0 = ephemeral)
--workers       concurrent job runners (default 2)
--capacity      admission queue bound; submissions past it are shed with a
                retry-after hint, never queued unboundedly (default 16)
--state-dir     journal + job manifests live here; a restart rescans it,
                requeues interrupted jobs, and replays completed replicas
                from the journal (default target/sweepd)
--sub-buffer    per-subscriber frame buffer; slow subscribers drop frames
                (counted in their bye) rather than stall the sim (default 1024)
--retry-after   hint sent with shed replies, ms (default 500)
--backend       pending-event-set implementation for all jobs
--parallel-world  run every job on the sharded conservative-sync engine
                (digest-neutral; 4 strips unless --shards says otherwise)
--shards K      shard count for the sharded engine (implies
                --parallel-world); 0 = auto from available_parallelism
--threads T     worker lanes for the parallel engine's host-plane kernels
                (implies --parallel-world); 0 = auto
                (min(shards, available_parallelism)), 1 = inline
--event-budget  per-replica event watchdog (deterministic)
--wall-budget   per-replica wall-clock watchdog, seconds (non-deterministic:
                trips quarantine the replica, never poison the journal)
--max-retries   supervised retries per replica before quarantine (default 2)

Prints `sweepd listening on ADDR` once ready.  SIGINT/SIGTERM (or a
client `shutdown` request) drain gracefully: in-flight replicas finish
and reach the journal, queued jobs are marked interrupted for the next
start, new submissions are refused, and the process exits 0.

EXIT STATUS:  0 clean shutdown · 1 bad usage or bind failure";

fn fail(msg: impl Display) -> ! {
    eprintln!("sweepd: {msg}");
    eprintln!("(run with --help for usage)");
    std::process::exit(1);
}

fn parse_val<T: FromStr>(flag: &str, v: &str) -> T
where
    T::Err: Display,
{
    v.parse()
        .unwrap_or_else(|e| fail(format!("{flag}: invalid value {v:?}: {e}")))
}

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

/// Route SIGINT and SIGTERM to the drain flag.  Hand-rolled `signal(2)`
/// binding: the handler only touches an atomic, which is async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let mut cfg = ServiceConfig::default().with_addr("127.0.0.1:7171");
    let mut opts = RunOptions::default();
    let mut sup = SupervisorConfig::default().with_max_retries(2);

    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut shards_given = false;
    let mut i = 1;
    while i < args.len() {
        let k = &args[i];
        if k == "--parallel-world" {
            opts.parallel_world = true;
            i += 1;
            continue;
        }
        let Some(v) = args.get(i + 1) else {
            fail(format!("flag {k} needs a value"));
        };
        match k.as_str() {
            "--addr" => cfg = cfg.with_addr(v.clone()),
            "--workers" => cfg = cfg.with_workers(parse_val::<usize>(k, v).max(1)),
            "--capacity" => cfg = cfg.with_capacity(parse_val(k, v)),
            "--state-dir" => cfg = cfg.with_state_dir(v.clone()),
            "--sub-buffer" => cfg = cfg.with_subscriber_buffer(parse_val::<usize>(k, v).max(1)),
            "--retry-after" => cfg = cfg.with_retry_after_ms(parse_val(k, v)),
            "--backend" => {
                opts.backend = Backend::parse(v)
                    .unwrap_or_else(|| fail(format!("--backend: {v:?} (expected heap|calendar)")))
            }
            "--shards" => {
                opts.parallel_world = true;
                opts.shards = parse_val(k, v);
                shards_given = true;
            }
            "--threads" => {
                opts.parallel_world = true;
                opts.threads = parse_val(k, v);
            }
            "--event-budget" => opts.event_budget = Some(parse_val(k, v)),
            "--wall-budget" => {
                let secs: f64 = parse_val(k, v);
                if secs.is_nan() || secs <= 0.0 {
                    fail(format!("--wall-budget: {v:?} must be positive"));
                }
                sup = sup.with_wall_budget_ms(Some((secs * 1000.0).ceil() as u64));
            }
            "--max-retries" => sup = sup.with_max_retries(parse_val(k, v)),
            other => fail(format!("unknown flag {other}")),
        }
        i += 2;
    }

    // streaming and resume both key off the trace digest, so the service
    // always records (digest-only unless a caller opted into more)
    if opts.trace.is_none() {
        opts.trace = Some(TraceMode::DigestOnly);
    }
    if opts.parallel_world && !shards_given && opts.shards < 2 {
        opts.shards = 4;
    }
    // resolve auto engine values now so the `stats` frame echoes what
    // jobs will actually run on, not the raw flag values
    cfg = cfg.with_engine_label(match opts.resolved_engine() {
        Some((k, t)) => format!("sharded k={k} t={t}"),
        None => "serial".into(),
    });

    let handler = Arc::new(EcgridJobHandler::new(opts, sup));
    let server = match Server::start(cfg, handler) {
        Ok(s) => s,
        Err(e) => fail(format!("cannot start: {e}")),
    };
    println!("sweepd listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();

    install_signal_handlers();
    let handle = server.handle();
    // the accept loop and workers run on their own threads; this thread
    // just waits for either a signal or a protocol-level shutdown
    while !handle.is_draining() {
        if STOP.load(Ordering::SeqCst) {
            eprintln!("sweepd: signal received, draining");
            handle.request_shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let summary = server.wait();
    eprintln!(
        "sweepd: drained ({} submitted, {} completed, {} shed, {} interrupted, {} recovered, \
         {} frames delivered, {} dropped)",
        summary.submitted,
        summary.completed,
        summary.shed,
        summary.interrupted,
        summary.recovered,
        summary.events_delivered,
        summary.events_dropped
    );
}
