//! Extension experiment: the paper's §1 claim that
//!
//! > "In a location-aware scheme, such as ECGRID or GAF, more energy can
//! > be saved when host density is higher ... On the contrary, Span (not
//! > location-aware) does not benefit from increasing host density."
//!
//! We sweep the host count and report, per protocol, the mean power drawn
//! per host over the first 400 s (before anyone dies) and the alive
//! fraction at 800 s.  ECGRID's per-host draw falls toward the 163 mW
//! sleep+GPS floor as grids fill up with sleepable hosts; Span's plateaus
//! at its PSM duty-cycle floor because every non-coordinator keeps paying
//! the periodic wake tax no matter how dense the network gets.
//!
//! ```sh
//! cargo run --release -p ecgrid-runner --bin ext_span_density
//! ```

use runner::{run_scenario, ProtocolKind, Scenario};

fn main() {
    let densities = [50usize, 100, 150, 200];
    println!("Span-vs-ECGRID density sweep (mean power per host over 0-400 s; alive@800 s)\n");
    println!("{:>8} {:>22} {:>22} {:>22}", "hosts", "ECGRID", "GAF", "Span");
    println!(
        "{:>8} {:>11}{:>11} {:>11}{:>11} {:>11}{:>11}",
        "", "mW/host", "alive@800", "mW/host", "alive@800", "mW/host", "alive@800"
    );
    for &n in &densities {
        let mut cells = Vec::new();
        for p in [ProtocolKind::Ecgrid, ProtocolKind::Gaf, ProtocolKind::Span] {
            let mut sc = Scenario::paper_base(p, 1.0, 42);
            sc.n_hosts = n;
            sc.duration_secs = 800.0;
            let r = run_scenario(&sc);
            // aen(400) × 500 J / 400 s = mean watts per host
            let aen400 = r.aen.value_at(400.0).unwrap_or(0.0);
            let watts = aen400 * 500.0 / 400.0;
            let alive = r.alive.value_at(800.0).unwrap_or(0.0);
            cells.push((watts * 1000.0, alive));
        }
        println!(
            "{:>8} {:>11.0}{:>11.2} {:>11.0}{:>11.2} {:>11.0}{:>11.2}",
            n, cells[0].0, cells[0].1, cells[1].0, cells[1].1, cells[2].0, cells[2].1
        );
    }
    println!("\nreading: location-aware schemes approach their sleep floor as density");
    println!("grows (more sleepable hosts per grid); Span flattens at the PSM duty");
    println!("cycle floor — the paper's argument for RAS paging over periodic wakeup.");
}
