//! Regenerates the paper's Fig. 6. See `runner::figures`.
fn main() {
    let opts = runner::figures::FigOpts::from_env();
    print!("{}", runner::figures::fig6(&opts));
}
