//! Extension experiment: proactive vs reactive control overhead.
//!
//! The paper's lineage runs DSDV (proactive, \[4\]) → AODV (reactive, \[3\])
//! → GRID → ECGRID.  The classic trade-off: DSDV pays a constant
//! advertisement tax regardless of traffic, AODV pays per-flow discovery
//! floods.  This harness measures control frames per delivered packet as
//! offered load varies, on identical 50-host scenarios.
//!
//! ```sh
//! cargo run --release -p ecgrid-runner --bin ext_overhead
//! ```

use aodv::{Aodv, AodvConfig};
use dsdv::{Dsdv, DsdvConfig};
use manet::{FlowSet, FlowSpec, HostSetup, NodeId, SimTime, World, WorldConfig};
use mobility::{MobilityModel, RandomWaypoint};
use sim_engine::RngFactory;

struct Row {
    control_frames: u64,
    delivered: u64,
    sent: u64,
    latency_ms: f64,
}

fn build(seed: u64, n_flows: usize, end: SimTime) -> (Vec<HostSetup>, FlowSet) {
    let n_hosts = 50usize;
    let horizon = end + sim_engine::SimDuration::from_secs(10);
    let rngs = RngFactory::new(seed);
    let model = RandomWaypoint::paper(1.0, 0.0);
    let hosts: Vec<HostSetup> = (0..n_hosts)
        .map(|i| HostSetup::paper(model.build_trace(&mut rngs.stream("mobility", i as u64), horizon)))
        .collect();
    let ids: Vec<NodeId> = (0..n_hosts as u32).map(NodeId).collect();
    let spec = FlowSpec {
        n_flows,
        packet_bytes: 512,
        rate_pps: 1.0,
        start: SimTime::from_secs(10),
        stop: end,
        stagger: true,
    };
    let flows = FlowSet::random(&mut rngs.stream("traffic", 0), &ids, &spec);
    (hosts, flows)
}

fn run_aodv(seed: u64, n_flows: usize) -> Row {
    let end = SimTime::from_secs(300);
    let (hosts, flows) = build(seed, n_flows, end);
    let mut w = World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        Aodv::new(AodvConfig::default(), id)
    });
    let out = w.run_until(end);
    let control: u64 = (0..50u32)
        .map(|i| {
            let s = w.protocol(NodeId(i)).stats();
            s.rreqs_sent + s.rreqs_forwarded + s.rreps_sent + s.rerrs_sent
        })
        .sum();
    Row {
        control_frames: control,
        delivered: out.ledger.delivered_count(),
        sent: out.ledger.sent_count(),
        latency_ms: out.ledger.mean_latency_ms().unwrap_or(f64::NAN),
    }
}

fn run_dsdv(seed: u64, n_flows: usize) -> Row {
    let end = SimTime::from_secs(300);
    let (hosts, flows) = build(seed, n_flows, end);
    let mut w = World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        Dsdv::new(DsdvConfig::default(), id)
    });
    let out = w.run_until(end);
    let control: u64 = (0..50u32).map(|i| w.protocol(NodeId(i)).stats.adverts_sent).sum();
    Row {
        control_frames: control,
        delivered: out.ledger.delivered_count(),
        sent: out.ledger.sent_count(),
        latency_ms: out.ledger.mean_latency_ms().unwrap_or(f64::NAN),
    }
}

fn main() {
    println!("proactive (DSDV) vs reactive (AODV) overhead — 50 hosts, 1 m/s, 300 s\n");
    println!(
        "{:>7} {:>10} | {:>9} {:>8} {:>9} | {:>9} {:>8} {:>9}",
        "flows", "", "AODV ctl", "pdr", "lat ms", "DSDV ctl", "pdr", "lat ms"
    );
    for n_flows in [1usize, 5, 10, 20] {
        let a = run_aodv(42, n_flows);
        let d = run_dsdv(42, n_flows);
        println!(
            "{:>7} {:>10} | {:>9} {:>7.1}% {:>9.2} | {:>9} {:>7.1}% {:>9.2}",
            n_flows,
            "",
            a.control_frames,
            100.0 * a.delivered as f64 / a.sent.max(1) as f64,
            a.latency_ms,
            d.control_frames,
            100.0 * d.delivered as f64 / d.sent.max(1) as f64,
            d.latency_ms,
        );
    }
    println!("\nreading: DSDV's control cost is flat in load (periodic adverts);");
    println!("AODV's grows with distinct flows (discovery floods). Reactive");
    println!("routing wins at light load — the regime GRID/ECGRID inherit.");
}
