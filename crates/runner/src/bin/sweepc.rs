//! `sweepc` — command-line client for the resident sweep service.
//!
//! Speaks the line-delimited JSON protocol of `sweepd`, with jittered
//! exponential-backoff reconnects: idempotent requests (ping, status,
//! stats, result, stream subscriptions) retry transparently; `submit`
//! never blindly retries, because a resend after an ambiguous failure
//! could double-enqueue the job.

use service::proto::{FilterSpec, JobSpec, Request};
use service::{Client, ClientConfig, ClientError, SubmitOutcome};
use std::fmt::Display;
use std::str::FromStr;

const HELP: &str = "\
sweepc — client for the sweepd resident sweep service

USAGE:
    sweepc [--addr HOST:PORT] [--attempts N] <command> [args]

COMMANDS:
    ping                      liveness + protocol version + drain state
    stats                     server counters (submitted/shed/queue/drops)
    status [JOB]              one job's lifecycle, or all jobs + queue
    submit [spec flags]       enqueue a job; prints `job N config HEX`
    stream JOB [filter flags] subscribe and print frames until the job ends
    result CONFIG_HEX SEED    look up one journaled replica by resume key
    shutdown                  ask the server to drain and exit

Submit spec flags (defaults = the golden smoke scenario):
    --protocol grid|ecgrid|gaf|span   --hosts N      --speed M/S
    --pause S    --flows N    --rate PPS    --duration S    --seed N
    --endpoints N    --replicas N    --faults SPEC
    --scenario FILE   submit a scenario file (heterogeneous groups) —
                    hex-encoded onto the wire; the file's own seed is the
                    replica base and the scalar shape flags are ignored
                    (--protocol, --faults, --replicas still apply)
    --stream     also subscribe and stream the submitted job to completion
    --max-sheds N   on shed replies, honor the retry-after hint up to N
                    times before giving up (default 0: report the shed)

Stream filter flags:
    --layers CSV (radio,grid,route,app,energy)   --node ID
    --cell X,Y   --proto NAME

Streamed `done` summaries print averaged metrics decoded bit-exactly,
and each replica's digest as `trace digest: <hex>`.  Reconnects during a
stream are transparent: frames may be lost (the final `bye` counts this
subscriber's delivered/dropped), the terminal summary is not.

EXIT STATUS:
    0 success · 1 bad usage · 2 cannot reach server (after bounded
    jittered-backoff reconnects) · 3 job quarantined · 4 submission shed";

fn usage(msg: impl Display) -> ! {
    eprintln!("sweepc: {msg}");
    eprintln!("(run with --help for usage)");
    std::process::exit(1);
}

fn parse_val<T: FromStr>(flag: &str, v: &str) -> T
where
    T::Err: Display,
{
    v.parse()
        .unwrap_or_else(|e| usage(format!("{flag}: invalid value {v:?}: {e}")))
}

fn exit_for(err: ClientError) -> ! {
    let code = match &err {
        ClientError::Io(_) => 2,
        ClientError::ShedLimit { .. } => 4,
        _ => 1,
    };
    eprintln!("sweepc: {err}");
    std::process::exit(code);
}

struct Cli {
    cfg: ClientConfig,
    cmd: String,
    rest: Vec<String>,
}

fn parse_args() -> Cli {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        std::process::exit(if args.len() < 2 { 1 } else { 0 });
    }
    let mut cfg = ClientConfig::default();
    let mut i = 1;
    while i < args.len() && args[i].starts_with("--") {
        let k = &args[i];
        let Some(v) = args.get(i + 1) else {
            usage(format!("flag {k} needs a value"));
        };
        match k.as_str() {
            "--addr" => cfg = cfg.with_addr(v.clone()),
            "--attempts" => cfg = cfg.with_connect_attempts(parse_val::<u32>(k, v).max(1)),
            other => usage(format!(
                "unknown global flag {other} (flags go before the command)"
            )),
        }
        i += 2;
    }
    let Some(cmd) = args.get(i) else {
        usage("missing command");
    };
    Cli {
        cfg,
        cmd: cmd.clone(),
        rest: args[i + 1..].to_vec(),
    }
}

fn parse_spec(rest: &[String]) -> (JobSpec, bool, u32) {
    let mut spec = JobSpec::default();
    let mut stream = false;
    let mut max_sheds = 0u32;
    let mut i = 0;
    while i < rest.len() {
        let k = &rest[i];
        if k == "--stream" {
            stream = true;
            i += 1;
            continue;
        }
        let Some(v) = rest.get(i + 1) else {
            usage(format!("flag {k} needs a value"));
        };
        match k.as_str() {
            "--protocol" => spec.protocol = v.to_lowercase(),
            "--hosts" => spec.n_hosts = parse_val(k, v),
            "--speed" => spec.max_speed = parse_val(k, v),
            "--pause" => spec.pause_secs = parse_val(k, v),
            "--flows" => spec.n_flows = parse_val(k, v),
            "--rate" => spec.flow_rate_pps = parse_val(k, v),
            "--duration" => spec.duration_secs = parse_val(k, v),
            "--seed" => spec.seed = parse_val(k, v),
            "--endpoints" => spec.model1_endpoints = parse_val(k, v),
            "--replicas" => spec.replicas = parse_val::<u64>(k, v).max(1),
            "--faults" => spec.faults = v.clone(),
            "--scenario" => {
                let text =
                    std::fs::read_to_string(v).unwrap_or_else(|e| usage(format!("--scenario {v}: {e}")));
                // parse locally first: a malformed file earns a line/col
                // diagnostic here instead of a server-side rejection
                if let Err(e) = scenario::parse(&text) {
                    usage(format!("--scenario {v}: {e}"));
                }
                spec.scenario = service::proto::scenario_hex_encode(&text);
            }
            "--max-sheds" => max_sheds = parse_val(k, v),
            other => usage(format!("unknown submit flag {other}")),
        }
        i += 2;
    }
    (spec, stream, max_sheds)
}

fn parse_filter(rest: &[String]) -> FilterSpec {
    let mut f = FilterSpec::default();
    let mut i = 0;
    while i < rest.len() {
        let k = &rest[i];
        let Some(v) = rest.get(i + 1) else {
            usage(format!("flag {k} needs a value"));
        };
        match k.as_str() {
            "--layers" => f.layers = v.clone(),
            "--node" => f.node = Some(parse_val(k, v)),
            "--cell" => {
                let (x, y) = v
                    .split_once(',')
                    .unwrap_or_else(|| usage(format!("--cell: {v:?} (expected X,Y)")));
                f.cell = Some((parse_val(k, x), parse_val(k, y)));
            }
            "--proto" => f.protocol = Some(v.clone()),
            other => usage(format!("unknown stream flag {other}")),
        }
        i += 2;
    }
    f
}

/// Stream one job to completion, printing every frame, then a summary.
/// Exit code 3 if the job ends quarantined.
fn stream_to_end(client: &mut Client, job: u64, filter: &FilterSpec) -> ! {
    let info = client
        .stream_job(job, filter, |frame| println!("{frame}"))
        .unwrap_or_else(|e| exit_for(e));
    for d in &info.digests {
        println!("trace digest: {d}");
    }
    let fmt_pdr = info
        .pdr
        .map(|p| format!("{:.4}% ({:016x})", 100.0 * p, p.to_bits()))
        .unwrap_or_else(|| "-".into());
    let fmt_lat = info
        .latency_ms
        .map(|l| format!("{l:.4} ms ({:016x})", l.to_bits()))
        .unwrap_or_else(|| "-".into());
    eprintln!(
        "job {}: {} ({}/{} replicas, {} from journal, {} quarantined) pdr {} latency {}",
        info.job,
        info.state.map(|s| s.name()).unwrap_or("?"),
        info.completed,
        info.replicas,
        info.from_journal,
        info.quarantined,
        fmt_pdr,
        fmt_lat,
    );
    eprintln!(
        "stream: {} frames delivered, {} dropped, {} reconnects",
        info.delivered, info.dropped, info.reconnects
    );
    if let Some(e) = &info.error {
        eprintln!("job error: {e}");
    }
    let quarantined = matches!(info.state, Some(service::JobState::Quarantined)) || info.quarantined > 0;
    std::process::exit(if quarantined { 3 } else { 0 });
}

fn main() {
    let cli = parse_args();
    let mut client = Client::connect(cli.cfg).unwrap_or_else(|e| exit_for(e));

    match cli.cmd.as_str() {
        "ping" => {
            let r = client
                .request_idempotent(&Request::Ping)
                .unwrap_or_else(|e| exit_for(e));
            println!("{r}");
        }
        "stats" => {
            let r = client
                .request_idempotent(&Request::Stats)
                .unwrap_or_else(|e| exit_for(e));
            println!("{r}");
        }
        "status" => {
            let job = cli.rest.first().map(|v| parse_val::<u64>("JOB", v));
            let r = client
                .request_idempotent(&Request::Status { job })
                .unwrap_or_else(|e| exit_for(e));
            println!("{r}");
        }
        "result" => {
            let [config, seed] = cli.rest.as_slice() else {
                usage("result needs CONFIG_HEX and SEED");
            };
            let config = u64::from_str_radix(config.trim_start_matches("0x"), 16)
                .unwrap_or_else(|e| usage(format!("CONFIG_HEX: {e}")));
            let seed = parse_val::<u64>("SEED", seed);
            let r = client
                .request_idempotent(&Request::Result { config, seed })
                .unwrap_or_else(|e| exit_for(e));
            println!("{r}");
        }
        "shutdown" => {
            let r = client
                .request_idempotent(&Request::Shutdown)
                .unwrap_or_else(|e| exit_for(e));
            println!("{r}");
        }
        "submit" => {
            let (spec, stream, max_sheds) = parse_spec(&cli.rest);
            let (job, config) = if max_sheds > 0 {
                client
                    .submit_until_accepted(&spec, max_sheds)
                    .unwrap_or_else(|e| exit_for(e))
            } else {
                match client.submit(&spec) {
                    Ok(SubmitOutcome::Accepted { job, config }) => (job, config),
                    Ok(SubmitOutcome::Shed { retry_after_ms }) => {
                        eprintln!("sweepc: submission shed (server busy; retry in {retry_after_ms} ms)");
                        std::process::exit(4);
                    }
                    Err(e) => exit_for(e),
                }
            };
            println!("job {job} config {config:016x}");
            if stream {
                stream_to_end(&mut client, job, &FilterSpec::default());
            }
        }
        "stream" => {
            let Some(job) = cli.rest.first() else {
                usage("stream needs a JOB id");
            };
            let job = parse_val::<u64>("JOB", job);
            let filter = parse_filter(&cli.rest[1..]);
            stream_to_end(&mut client, job, &filter);
        }
        other => usage(format!("unknown command {other:?}")),
    }
}
