//! Parallel multi-seed sweeps (rayon) and replica averaging.
//!
//! Averaging is written against the [`ReplicaMetrics`] view rather than
//! [`ScenarioResult`] directly, so the supervised sweep (which mixes
//! freshly-run replicas with records re-read from a checkpoint journal —
//! see [`crate::supervisor`]) averages through exactly the same code path
//! as a plain in-memory sweep.

use crate::run::{replica_seed, run_scenario, ScenarioResult};
use crate::scenario::Scenario;
use metrics::TimeSeries;
use rayon::prelude::*;

/// A scenario's metrics averaged over replicas (seeds).
#[derive(Clone, Debug)]
pub struct AveragedResult {
    pub scenario: Scenario,
    /// Replicas that actually contributed (the *effective* count — under
    /// supervision, failed replicas are quarantined and drop out).
    pub replicas: usize,
    /// Replicas the sweep asked for.  `replicas < replicas_requested`
    /// flags a degraded average: fewer samples, so the `_sd` spreads below
    /// are computed over a smaller population and the mean is noisier.
    pub replicas_requested: usize,
    pub alive: TimeSeries,
    pub aen: TimeSeries,
    pub pdr: Option<f64>,
    pub latency_ms: Option<f64>,
    pub pdr_590: Option<f64>,
    pub latency_ms_590: Option<f64>,
    /// Mean network-death time over replicas where the network died.
    pub network_death_s: Option<f64>,
    /// Replica-to-replica standard deviations (sample sd; `None` with
    /// fewer than two replicas or no data).
    pub pdr_sd: Option<f64>,
    pub latency_sd: Option<f64>,
    pub network_death_sd: Option<f64>,
}

impl AveragedResult {
    /// True when at least one requested replica is missing from the
    /// average.
    pub fn is_degraded(&self) -> bool {
        self.replicas < self.replicas_requested
    }
}

/// The per-replica quantities averaging needs — implemented by the full
/// in-memory [`ScenarioResult`] and by the journal's slimmer records.
pub trait ReplicaMetrics {
    fn scenario(&self) -> &Scenario;
    fn alive(&self) -> &TimeSeries;
    fn aen(&self) -> &TimeSeries;
    fn pdr(&self) -> Option<f64>;
    fn latency_ms(&self) -> Option<f64>;
    fn pdr_590(&self) -> Option<f64>;
    fn latency_ms_590(&self) -> Option<f64>;
    fn network_death_s(&self) -> Option<f64>;
}

impl ReplicaMetrics for ScenarioResult {
    fn scenario(&self) -> &Scenario {
        &self.scenario
    }
    fn alive(&self) -> &TimeSeries {
        &self.alive
    }
    fn aen(&self) -> &TimeSeries {
        &self.aen
    }
    fn pdr(&self) -> Option<f64> {
        self.pdr
    }
    fn latency_ms(&self) -> Option<f64> {
        self.latency_ms
    }
    fn pdr_590(&self) -> Option<f64> {
        self.pdr_590
    }
    fn latency_ms_590(&self) -> Option<f64> {
        self.latency_ms_590
    }
    fn network_death_s(&self) -> Option<f64> {
        self.network_death_s
    }
}

fn mean_opt(xs: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let v: Vec<f64> = xs.flatten().collect();
    metrics::mean(&v)
}

fn sd_opt(xs: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let v: Vec<f64> = xs.flatten().collect();
    metrics::stddev(&v)
}

/// Average the per-replica results of ONE scenario (same config, varying
/// seed).  Returns `None` for an empty slice — the "all replicas failed"
/// case a supervised sweep can produce — instead of asserting.  Tolerates
/// replicas with unequal series lengths (a truncated run) by averaging
/// the shared prefix.
pub fn average_results<R: ReplicaMetrics>(results: &[R]) -> Option<AveragedResult> {
    let first = results.first()?;
    let alive: Vec<TimeSeries> = results.iter().map(|r| r.alive().clone()).collect();
    let aen: Vec<TimeSeries> = results.iter().map(|r| r.aen().clone()).collect();
    Some(AveragedResult {
        scenario: *first.scenario(),
        replicas: results.len(),
        replicas_requested: results.len(),
        alive: TimeSeries::mean_of_common(&alive),
        aen: TimeSeries::mean_of_common(&aen),
        pdr: mean_opt(results.iter().map(|r| r.pdr())),
        latency_ms: mean_opt(results.iter().map(|r| r.latency_ms())),
        pdr_590: mean_opt(results.iter().map(|r| r.pdr_590())),
        latency_ms_590: mean_opt(results.iter().map(|r| r.latency_ms_590())),
        network_death_s: mean_opt(results.iter().map(|r| r.network_death_s())),
        pdr_sd: sd_opt(results.iter().map(|r| r.pdr())),
        latency_sd: sd_opt(results.iter().map(|r| r.latency_ms())),
        network_death_sd: sd_opt(results.iter().map(|r| r.network_death_s())),
    })
}

/// [`average_results`] for a group that may have lost replicas: the
/// effective count comes from the slice, the requested count from the
/// sweep.
pub fn average_results_degraded<R: ReplicaMetrics>(
    results: &[R],
    requested: usize,
) -> Option<AveragedResult> {
    let mut avg = average_results(results)?;
    avg.replicas_requested = requested;
    Some(avg)
}

/// Run every (scenario × replica) pair in parallel and average per
/// scenario.  Replica `k` of a scenario uses seed
/// [`replica_seed`]`(scenario.seed, k)`, so sweep points with adjacent
/// base seeds never share a replica run.
///
/// Results are grouped back to their scenario explicitly by job index —
/// not by positional chunking — so the shape survives refactors that
/// drop or reorder jobs (the supervised sweep reuses the same grouping
/// with holes).
pub fn sweep(scenarios: &[Scenario], replicas: usize) -> Vec<AveragedResult> {
    assert!(replicas >= 1);
    let jobs: Vec<(usize, Scenario)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(idx, sc)| {
            (0..replicas as u64).map(move |k| {
                (
                    idx,
                    Scenario {
                        seed: replica_seed(sc.seed, k),
                        ..*sc
                    },
                )
            })
        })
        .collect();
    let results: Vec<(usize, ScenarioResult)> = jobs
        .par_iter()
        .map(|(idx, sc)| (*idx, run_scenario(sc)))
        .collect();
    let mut groups: Vec<Vec<ScenarioResult>> = (0..scenarios.len()).map(|_| Vec::new()).collect();
    for (idx, r) in results {
        groups[idx].push(r);
    }
    groups
        .iter()
        .filter_map(|g| average_results_degraded(g, replicas))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ProtocolKind;

    fn tiny(seed: u64) -> Scenario {
        Scenario {
            protocol: ProtocolKind::Ecgrid,
            n_hosts: 12,
            max_speed: 1.0,
            pause_secs: 0.0,
            n_flows: 2,
            flow_rate_pps: 1.0,
            duration_secs: 30.0,
            seed,
            model1_endpoints: 2,
        }
    }

    #[test]
    fn sweep_runs_replicas_and_averages() {
        let out = sweep(&[tiny(1)], 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].replicas, 2);
        assert_eq!(out[0].replicas_requested, 2);
        assert!(!out[0].is_degraded());
        assert!(!out[0].alive.is_empty());
        assert!(out[0].pdr.is_some());
        // with two replicas a spread is defined (may be zero, never NaN)
        if let Some(sd) = out[0].pdr_sd {
            assert!(sd.is_finite() && sd >= 0.0);
        }
    }

    #[test]
    fn single_replica_has_no_spread() {
        let out = sweep(&[tiny(5)], 1);
        assert!(out[0].pdr_sd.is_none());
        assert!(out[0].latency_sd.is_none());
    }

    #[test]
    fn averaging_is_pointwise() {
        let a = run_scenario(&tiny(1));
        let b = run_scenario(&tiny(2));
        let avg = average_results(&[a.clone(), b.clone()]).unwrap();
        let t = avg.alive.points()[0].t_secs;
        let expect = (a.alive.points()[0].value + b.alive.points()[0].value) / 2.0;
        assert_eq!(avg.alive.value_at(t), Some(expect));
    }

    #[test]
    fn empty_group_averages_to_none() {
        assert!(average_results::<ScenarioResult>(&[]).is_none());
    }

    #[test]
    fn dropped_replica_marks_degradation() {
        let a = run_scenario(&tiny(1));
        let avg = average_results_degraded(&[a], 3).unwrap();
        assert_eq!(avg.replicas, 1);
        assert_eq!(avg.replicas_requested, 3);
        assert!(avg.is_degraded());
    }
}
