//! Parallel multi-seed sweeps (rayon) and replica averaging.

use crate::run::{replica_seed, run_scenario, ScenarioResult};
use crate::scenario::Scenario;
use metrics::TimeSeries;
use rayon::prelude::*;

/// A scenario's metrics averaged over replicas (seeds).
#[derive(Clone, Debug)]
pub struct AveragedResult {
    pub scenario: Scenario,
    pub replicas: usize,
    pub alive: TimeSeries,
    pub aen: TimeSeries,
    pub pdr: Option<f64>,
    pub latency_ms: Option<f64>,
    pub pdr_590: Option<f64>,
    pub latency_ms_590: Option<f64>,
    /// Mean network-death time over replicas where the network died.
    pub network_death_s: Option<f64>,
    /// Replica-to-replica standard deviations (sample sd; `None` with
    /// fewer than two replicas or no data).
    pub pdr_sd: Option<f64>,
    pub latency_sd: Option<f64>,
    pub network_death_sd: Option<f64>,
}

fn mean_opt(xs: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let v: Vec<f64> = xs.flatten().collect();
    metrics::mean(&v)
}

fn sd_opt(xs: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let v: Vec<f64> = xs.flatten().collect();
    metrics::stddev(&v)
}

/// Average the per-replica results of ONE scenario (same config, varying
/// seed).
pub fn average_results(results: &[ScenarioResult]) -> AveragedResult {
    assert!(!results.is_empty());
    let alive: Vec<TimeSeries> = results.iter().map(|r| r.alive.clone()).collect();
    let aen: Vec<TimeSeries> = results.iter().map(|r| r.aen.clone()).collect();
    AveragedResult {
        scenario: results[0].scenario,
        replicas: results.len(),
        alive: TimeSeries::mean_of(&alive),
        aen: TimeSeries::mean_of(&aen),
        pdr: mean_opt(results.iter().map(|r| r.pdr)),
        latency_ms: mean_opt(results.iter().map(|r| r.latency_ms)),
        pdr_590: mean_opt(results.iter().map(|r| r.pdr_590)),
        latency_ms_590: mean_opt(results.iter().map(|r| r.latency_ms_590)),
        network_death_s: mean_opt(results.iter().map(|r| r.network_death_s)),
        pdr_sd: sd_opt(results.iter().map(|r| r.pdr)),
        latency_sd: sd_opt(results.iter().map(|r| r.latency_ms)),
        network_death_sd: sd_opt(results.iter().map(|r| r.network_death_s)),
    }
}

/// Run every (scenario × replica) pair in parallel and average per
/// scenario.  Replica `k` of a scenario uses seed
/// [`replica_seed`]`(scenario.seed, k)`, so sweep points with adjacent
/// base seeds never share a replica run.
pub fn sweep(scenarios: &[Scenario], replicas: usize) -> Vec<AveragedResult> {
    assert!(replicas >= 1);
    let jobs: Vec<Scenario> = scenarios
        .iter()
        .flat_map(|sc| {
            (0..replicas as u64).map(move |k| Scenario {
                seed: replica_seed(sc.seed, k),
                ..*sc
            })
        })
        .collect();
    let results: Vec<ScenarioResult> = jobs.par_iter().map(run_scenario).collect();
    results.chunks(replicas).map(average_results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ProtocolKind;

    fn tiny(seed: u64) -> Scenario {
        Scenario {
            protocol: ProtocolKind::Ecgrid,
            n_hosts: 12,
            max_speed: 1.0,
            pause_secs: 0.0,
            n_flows: 2,
            flow_rate_pps: 1.0,
            duration_secs: 30.0,
            seed,
            model1_endpoints: 2,
        }
    }

    #[test]
    fn sweep_runs_replicas_and_averages() {
        let out = sweep(&[tiny(1)], 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].replicas, 2);
        assert!(!out[0].alive.is_empty());
        assert!(out[0].pdr.is_some());
        // with two replicas a spread is defined (may be zero, never NaN)
        if let Some(sd) = out[0].pdr_sd {
            assert!(sd.is_finite() && sd >= 0.0);
        }
    }

    #[test]
    fn single_replica_has_no_spread() {
        let out = sweep(&[tiny(5)], 1);
        assert!(out[0].pdr_sd.is_none());
        assert!(out[0].latency_sd.is_none());
    }

    #[test]
    fn averaging_is_pointwise() {
        let a = run_scenario(&tiny(1));
        let b = run_scenario(&tiny(2));
        let avg = average_results(&[a.clone(), b.clone()]);
        let t = avg.alive.points()[0].t_secs;
        let expect = (a.alive.points()[0].value + b.alive.points()[0].value) / 2.0;
        assert_eq!(avg.alive.value_at(t), Some(expect));
    }
}
