//! Running a declarative scenario file (the `scenario` crate's
//! [`ScenarioSpec`]): heterogeneous groups of hosts — per-group battery,
//! radio range, GPS error, mobility model, and traffic role — executed
//! through exactly the same deterministic plumbing as the classic
//! homogeneous scenarios.
//!
//! Determinism contract: every random artifact is keyed the same way the
//! homogeneous path keys it — host `i`'s mobility trace draws from
//! `RngFactory::new(seed).stream("mobility", i)`, the flow assignment
//! from `stream("traffic", 0)` — plus group-level streams
//! (`"mobility.ref"`, `"mobility.spots"`) for artifacts shared by a whole
//! group (a convoy's reference trajectory, a hotspot set).  Battery
//! manufacturing spread uses stateless hash draws keyed on the scenario
//! seed, so a zero variance performs no draws at all.  The result —
//! including its trace digest — is therefore a pure function of
//! (scenario text, protocol, options), invariant across scheduler
//! backends, shard counts, and thread counts like every other run
//! (proven by `tests/scenario_golden.rs`).

use crate::run::{parallel_override, RunOptions, ScenarioResult};
use crate::scenario::{ProtocolKind, Scenario};
use ecgrid::{Ecgrid, EcgridConfig};
use gaf::{GafConfig, GafProto};
use grid_routing::{GridConfig, GridProto};
use manet::progress::ProgressProbe;
use manet::{
    Battery, FlowSet, FlowSpec, GroupStats, HostSetup, NodeId, PowerProfile, SimTime, World, WorldConfig,
};
use mobility::{
    Convoy, GaussMarkov, HotspotConvergence, ManhattanGrid, MobilityModel, MobilityTrace, RandomWalk,
    RandomWaypoint, Stationary,
};
use scenario::{GroupSpec, MobilitySpec, Role, ScenarioSpec, TrafficPattern};
use sim_engine::{derive_seed, RngFactory, RunBudget, SplitMix64};
use span::{SpanConfig, SpanProto};
use std::collections::HashMap;
use std::sync::Arc;
use traffic::Burst;

/// Per-group results of a scenario-file run: the group's label and
/// mobility/role tags, its liveness/energy rollup, and the delivery
/// accounting of the flows its hosts originate.
#[derive(Clone, Debug)]
pub struct GroupReport {
    /// The `name = "..."` from the group's `[[group]]` table.
    pub name: String,
    /// Traffic role tag (`relay`, `source`, `sink`, `peer`, `endpoint`).
    pub role: &'static str,
    /// Mobility model tag (`waypoint`, `manhattan`, `convoy`, ...).
    pub mobility: &'static str,
    /// Liveness and energy rollup (same accounting as the global
    /// alive-fraction/aen metrics, restricted to the group).
    pub stats: GroupStats,
    /// Packets issued by flows whose *source* host is in this group.
    pub sent: u64,
    /// Of those, packets delivered.
    pub delivered: u64,
}

impl GroupReport {
    /// Delivery rate of this group's flows; `None` when it sourced none.
    pub fn delivery_rate(&self) -> Option<f64> {
        (self.sent > 0).then(|| self.delivered as f64 / self.sent as f64)
    }
}

/// Battery manufacturing spread: host `i` keeps `1 - var * u` of its
/// group's nominal capacity, `u` a stateless hash draw keyed on the
/// scenario seed.  `var == 0` performs no draws.
fn battery_scale(seed: u64, var: f64, host: u32) -> f64 {
    if var <= 0.0 {
        return 1.0;
    }
    let u = SplitMix64::new(derive_seed(
        derive_seed(seed, "scenario.batt", u64::from(host)),
        "scenario.sub",
        0,
    ))
    .next_f64();
    1.0 - var.min(1.0) * u
}

/// Build one host's mobility trace.  Per-host randomness comes from the
/// canonical `("mobility", host)` stream; group-shared artifacts (convoy
/// reference, hotspot set) are prebuilt by [`group_shared`] from
/// group-level streams so every member sees the same one.
fn build_trace(
    spec: &ScenarioSpec,
    g: &GroupSpec,
    shared: &SharedMobility,
    rngs: &RngFactory,
    host: u64,
    horizon: SimTime,
) -> MobilityTrace {
    let (w, h) = (spec.field_w, spec.field_h);
    let rng = &mut rngs.stream("mobility", host);
    match &g.mobility {
        MobilitySpec::Stationary => Stationary {
            field_w: w,
            field_h: h,
        }
        .build_trace(rng, horizon),
        MobilitySpec::Waypoint { max_speed, pause_s } => RandomWaypoint {
            field_w: w,
            field_h: h,
            max_speed: *max_speed,
            min_speed: (0.01 * max_speed).max(1e-3),
            pause_secs: *pause_s,
        }
        .build_trace(rng, horizon),
        MobilitySpec::Walk { max_speed, epoch_s } => RandomWalk {
            field_w: w,
            field_h: h,
            max_speed: *max_speed,
            epoch_secs: *epoch_s,
        }
        .build_trace(rng, horizon),
        MobilitySpec::GaussMarkov {
            mean_speed,
            alpha,
            epoch_s,
        } => GaussMarkov {
            field_w: w,
            field_h: h,
            mean_speed: *mean_speed,
            alpha: *alpha,
            epoch_secs: *epoch_s,
        }
        .build_trace(rng, horizon),
        MobilitySpec::Manhattan {
            max_speed,
            pause_s,
            block_m,
        } => ManhattanGrid {
            field_w: w,
            field_h: h,
            block_m: *block_m,
            max_speed: *max_speed,
            min_speed: (0.01 * max_speed).max(1e-3),
            pause_secs: *pause_s,
        }
        .build_trace(rng, horizon),
        MobilitySpec::Convoy { group_radius_m, .. } => Convoy::around(
            shared.reference.clone().expect("prebuilt by group_shared"),
            w,
            h,
            *group_radius_m,
        )
        .build_trace(rng, horizon),
        MobilitySpec::Hotspot {
            max_speed, dwell_s, ..
        } => HotspotConvergence::new(
            w,
            h,
            shared.spots.clone().expect("prebuilt by group_shared"),
            *max_speed,
            *dwell_s,
        )
        .build_trace(rng, horizon),
    }
}

/// Group-shared mobility artifacts (empty for models without any).
#[derive(Default)]
struct SharedMobility {
    reference: Option<MobilityTrace>,
    spots: Option<Vec<geo::Point2>>,
}

fn group_shared(
    spec: &ScenarioSpec,
    g: &GroupSpec,
    rngs: &RngFactory,
    group_idx: u64,
    horizon: SimTime,
) -> SharedMobility {
    match &g.mobility {
        MobilitySpec::Convoy {
            max_speed, pause_s, ..
        } => {
            // the convoy lead: a random-waypoint trajectory from a
            // group-level stream so every member shares it
            let lead = RandomWaypoint {
                field_w: spec.field_w,
                field_h: spec.field_h,
                max_speed: *max_speed,
                min_speed: (0.01 * max_speed).max(1e-3),
                pause_secs: *pause_s,
            }
            .build_trace(&mut rngs.stream("mobility.ref", group_idx), horizon);
            SharedMobility {
                reference: Some(lead),
                spots: None,
            }
        }
        MobilitySpec::Hotspot { hotspots, .. } => SharedMobility {
            reference: None,
            spots: Some(HotspotConvergence::random_spots(
                &mut rngs.stream("mobility.spots", group_idx),
                spec.field_w,
                spec.field_h,
                *hotspots,
            )),
        },
        _ => SharedMobility::default(),
    }
}

/// Build the full heterogeneous fleet: one [`HostSetup`] per host in
/// group order, carrying the group's battery, range, GPS sigma, and
/// group index.  Span hosts carry no GPS (the protocol is not
/// location-aware), matching the homogeneous path.
fn build_hosts(spec: &ScenarioSpec, protocol: ProtocolKind, horizon: SimTime) -> Vec<HostSetup> {
    let rngs = RngFactory::new(spec.seed);
    let profile = if protocol == ProtocolKind::Span {
        PowerProfile::paper_no_gps()
    } else {
        PowerProfile::paper_default()
    };
    let mut hosts = Vec::with_capacity(spec.total_hosts());
    let mut host = 0u64;
    for (gi, g) in spec.groups.iter().enumerate() {
        let shared = group_shared(spec, g, &rngs, gi as u64, horizon);
        for _ in 0..g.count {
            let trace = build_trace(spec, g, &shared, &rngs, host, horizon);
            let battery = match g.battery_j {
                None => Battery::infinite(),
                Some(j) => Battery::with_capacity(j * battery_scale(spec.seed, g.battery_var, host as u32)),
            };
            hosts.push(HostSetup {
                profile,
                battery,
                trace,
                range_m: Some(g.range_m),
                gps_sigma_m: g.gps_sigma_m,
                group: gi as u16,
            });
            host += 1;
        }
    }
    hosts
}

/// Build the flow set from the scenario's roles and traffic pattern.
/// Sources are hosts in source-eligible groups, sinks in sink-eligible
/// groups (`peer` and `endpoint` are both); the parser guarantees a
/// non-degenerate pool whenever `flows > 0`.
fn build_flows(spec: &ScenarioSpec, end: SimTime) -> FlowSet {
    let rngs = RngFactory::new(spec.seed);
    let mut srcs = Vec::new();
    let mut dsts = Vec::new();
    let mut host = 0u32;
    for g in &spec.groups {
        for _ in 0..g.count {
            if g.role.is_source() {
                srcs.push(NodeId(host));
            }
            if g.role.is_sink() {
                dsts.push(NodeId(host));
            }
            host += 1;
        }
    }
    let fspec = FlowSpec {
        n_flows: spec.traffic.flows,
        packet_bytes: spec.traffic.packet_bytes,
        rate_pps: spec.traffic.rate_pps,
        start: SimTime::from_secs_f64(spec.traffic.start_s),
        stop: end,
        stagger: true,
    };
    let rng = &mut rngs.stream("traffic", 0);
    match spec.traffic.pattern {
        TrafficPattern::Cbr => FlowSet::random_between(rng, &srcs, &dsts, &fspec),
        TrafficPattern::Bursty { on_s, off_s } => {
            FlowSet::random_between(rng, &srcs, &dsts, &fspec).with_burst(Burst::new(on_s, off_s))
        }
        TrafficPattern::ManyToOne => FlowSet::many_to_one(rng, &srcs, &dsts, &fspec),
    }
}

/// The representative classic [`Scenario`] echoed in the result (label,
/// seed bookkeeping): total host count, the fastest group's speed, and
/// the endpoint count.
pub(crate) fn representative(spec: &ScenarioSpec, protocol: ProtocolKind) -> Scenario {
    let max_speed = spec
        .groups
        .iter()
        .map(|g| match &g.mobility {
            MobilitySpec::Stationary => 0.0,
            MobilitySpec::Waypoint { max_speed, .. }
            | MobilitySpec::Walk { max_speed, .. }
            | MobilitySpec::Manhattan { max_speed, .. }
            | MobilitySpec::Convoy { max_speed, .. }
            | MobilitySpec::Hotspot { max_speed, .. } => *max_speed,
            MobilitySpec::GaussMarkov { mean_speed, .. } => *mean_speed,
        })
        .fold(0.0, f64::max);
    let endpoints: usize = spec
        .groups
        .iter()
        .filter(|g| g.role == Role::Endpoint)
        .map(|g| g.count)
        .sum();
    Scenario {
        protocol,
        n_hosts: spec.total_hosts() - endpoints,
        max_speed,
        pause_secs: 0.0,
        n_flows: spec.traffic.flows,
        flow_rate_pps: spec.traffic.rate_pps,
        duration_secs: spec.duration_s,
        seed: spec.seed,
        model1_endpoints: endpoints,
    }
}

/// Attach per-group reports to a finished run: liveness/energy from the
/// world's group rollup, delivery from folding the ledger's per-flow
/// counts through the flow → source-group map.
fn attach_groups(
    mut result: ScenarioResult,
    spec: &ScenarioSpec,
    gstats: Vec<GroupStats>,
    flow_group: &HashMap<u32, u16>,
) -> ScenarioResult {
    let mut reports: Vec<GroupReport> = spec
        .groups
        .iter()
        .zip(&gstats)
        .map(|(g, stats)| GroupReport {
            name: g.name.clone(),
            role: g.role.name(),
            mobility: g.mobility.model_name(),
            stats: *stats,
            sent: 0,
            delivered: 0,
        })
        .collect();
    for (flow, sent, delivered) in result.ledger.per_flow() {
        if let Some(&gi) = flow_group.get(&flow) {
            if let Some(r) = reports.get_mut(gi as usize) {
                r.sent += sent;
                r.delivered += delivered;
            }
        }
    }
    result.groups = reports;
    result
}

/// Run a parsed scenario file under `protocol`.  See module docs for the
/// determinism contract.
pub fn run_spec(spec: &ScenarioSpec, protocol: ProtocolKind, opts: RunOptions) -> ScenarioResult {
    run_spec_probed(spec, protocol, opts, None)
}

/// [`run_spec`], sharing a [`ProgressProbe`] with a supervisor (and
/// optionally a live event sink — the sweep service's streaming path).
pub fn run_spec_probed(
    spec: &ScenarioSpec,
    protocol: ProtocolKind,
    opts: RunOptions,
    probe: Option<Arc<ProgressProbe>>,
) -> ScenarioResult {
    run_spec_inner(spec, protocol, opts, probe, None)
}

/// [`run_spec_probed`] with a live event sink (see
/// `run::run_scenario_streamed`).
pub fn run_spec_streamed(
    spec: &ScenarioSpec,
    protocol: ProtocolKind,
    opts: RunOptions,
    probe: Option<Arc<ProgressProbe>>,
    sink: manet::trace::EventSink,
) -> ScenarioResult {
    run_spec_inner(spec, protocol, opts, probe, Some(sink))
}

fn run_spec_inner(
    spec: &ScenarioSpec,
    protocol: ProtocolKind,
    opts: RunOptions,
    probe: Option<Arc<ProgressProbe>>,
    sink: Option<manet::trace::EventSink>,
) -> ScenarioResult {
    let end = SimTime::from_secs_f64(spec.duration_s);
    let horizon = end + sim_engine::SimDuration::from_secs(10);
    let faults = opts
        .faults
        .with_seed(derive_seed(spec.seed, "fault", opts.faults.seed));
    let mut budget = RunBudget::UNLIMITED;
    if let Some(n) = opts.event_budget {
        budget = budget.with_max_events(n);
    }
    if let Some(ms) = opts.wall_budget_ms {
        budget = budget.with_max_wall_ms(ms);
    }
    let mut cfg = WorldConfig::paper_default(spec.seed)
        .with_backend(opts.backend)
        .with_faults(faults)
        .with_budget(budget)
        .with_neighbor_index(opts.neighbor_index)
        .with_gather_fallback(opts.gather_fallback);
    cfg.grid = geo::GridMap::new(spec.field_w, spec.field_h, spec.cell_side);
    // the config's nominal range is the fleet maximum, so the channel's
    // bucket geometry is sized exactly (every host carries an explicit
    // per-group range anyway)
    cfg.range_m = spec.groups.iter().map(|g| g.range_m).fold(0.0_f64, f64::max);
    if opts.parallel_world {
        cfg = cfg.with_parallel_world(opts.shards).with_threads(opts.threads);
    } else if let Some((k, t)) = parallel_override() {
        cfg = cfg.with_parallel_world(k).with_threads(t);
    }

    let hosts = build_hosts(spec, protocol, horizon);
    let flows = build_flows(spec, end);
    // flow -> source-host group, for per-group delivery attribution
    let flow_group: HashMap<u32, u16> = flows
        .flows()
        .iter()
        .filter_map(|f| spec.group_of_host(f.src.0 as usize).map(|g| (f.id.0, g as u16)))
        .collect();
    // endpoint-role hosts run the endpoint protocol variant under
    // GAF/Span (Model 1); Grid/ECGRID have no such variant — an endpoint
    // group there is simply an infinite-battery peer
    let is_endpoint: Vec<bool> = spec
        .groups
        .iter()
        .flat_map(|g| std::iter::repeat_n(g.role == Role::Endpoint, g.count))
        .collect();
    let sc = representative(spec, protocol);

    macro_rules! run_world {
        ($world:expr) => {{
            let mut world = $world;
            match (opts.trace, sink) {
                (Some(mode), Some(s)) => world.enable_trace_with_sink(mode, s),
                (Some(mode), None) => world.enable_trace(mode),
                (None, _) => {}
            }
            if let Some(p) = probe {
                world.attach_probe(p);
            }
            let engine = world.shard_stats().map(|s| (s.shards, s.threads));
            let out = world.run_until(end);
            let gstats = world.group_stats();
            let recorder = world.take_recorder();
            (out, gstats, engine, recorder)
        }};
    }
    let (out, gstats, engine, recorder) = match protocol {
        ProtocolKind::Grid => {
            run_world!(World::new(cfg, hosts, flows, |id| GridProto::new(
                GridConfig::default(),
                id
            )))
        }
        ProtocolKind::Ecgrid => {
            run_world!(World::new(cfg, hosts, flows, |id| Ecgrid::new(
                EcgridConfig::default(),
                id
            )))
        }
        ProtocolKind::Gaf => {
            let eps = is_endpoint.clone();
            run_world!(World::new(cfg, hosts, flows, move |id| {
                if eps[id.index()] {
                    GafProto::endpoint(GafConfig::default(), id)
                } else {
                    GafProto::new(GafConfig::default(), id)
                }
            }))
        }
        ProtocolKind::Span => {
            let eps = is_endpoint.clone();
            run_world!(World::new(cfg, hosts, flows, move |id| {
                if eps[id.index()] {
                    SpanProto::endpoint(SpanConfig::default(), id)
                } else {
                    SpanProto::new(SpanConfig::default(), id)
                }
            }))
        }
    };
    let cutoff = SimTime::from_secs(590);
    let early = out.ledger.before(cutoff);
    let result = ScenarioResult {
        scenario: sc,
        pdr: out.ledger.delivery_rate(),
        latency_ms: out.ledger.mean_latency_ms(),
        pdr_590: early.delivery_rate(),
        latency_ms_590: early.mean_latency_ms(),
        network_death_s: out.alive.first_time_at_or_below(0.0),
        alive: out.alive,
        aen: out.aen,
        ledger: out.ledger,
        stats: out.stats,
        trace_digest: recorder.as_ref().map(|r| r.digest()),
        recorder,
        budget_exceeded: out.budget_exceeded,
        engine,
        groups: Vec::new(),
    };
    attach_groups(result, spec, gstats, &flow_group)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> ScenarioSpec {
        scenario::parse(text).expect("test scenario must parse")
    }

    const MIXED: &str = r#"
[scenario]
name = "mixed"
duration_s = 40
seed = 11

[[group]]
name = "walkers"
count = 16
mobility = "waypoint"
max_speed = 1.0

[[group]]
name = "convoy"
count = 8
mobility = "convoy"
max_speed = 5.0
group_radius_m = 60
range_m = 150

[traffic]
flows = 3
rate_pps = 1.0
"#;

    #[test]
    fn spec_run_is_reproducible() {
        let spec = parse(MIXED);
        let a = run_spec(&spec, ProtocolKind::Ecgrid, RunOptions::default());
        let b = run_spec(&spec, ProtocolKind::Ecgrid, RunOptions::default());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.pdr, b.pdr);
        assert!(a.ledger.sent_count() > 0, "traffic must flow");
    }

    #[test]
    fn group_reports_cover_every_host_and_flow() {
        let spec = parse(MIXED);
        let r = run_spec(&spec, ProtocolKind::Ecgrid, RunOptions::default());
        assert_eq!(r.groups.len(), 2);
        assert_eq!(r.groups[0].name, "walkers");
        assert_eq!(r.groups[0].stats.hosts, 16);
        assert_eq!(r.groups[1].stats.hosts, 8);
        assert_eq!(r.groups[1].mobility, "convoy");
        let sent: u64 = r.groups.iter().map(|g| g.sent).sum();
        assert_eq!(sent, r.ledger.sent_count(), "every flow attributed");
    }

    #[test]
    fn endpoint_groups_drive_model1_protocols() {
        let text = r#"
[scenario]
duration_s = 30
seed = 5

[[group]]
name = "relays"
count = 20
role = "relay"
mobility = "waypoint"
max_speed = 1.0

[[group]]
name = "ends"
count = 4
role = "endpoint"
mobility = "stationary"

[traffic]
flows = 2
rate_pps = 1.0
"#;
        let spec = parse(text);
        let r = run_spec(&spec, ProtocolKind::Gaf, RunOptions::default());
        assert!(r.ledger.sent_count() > 0);
        // endpoints are infinite-battery: excluded from the finite tally
        assert_eq!(r.groups[1].stats.finite, 0);
        assert_eq!(r.groups[1].stats.hosts, 4);
        assert!(r.groups[0].stats.finite == 20);
    }

    #[test]
    fn battery_variance_spreads_capacities_deterministically() {
        assert_eq!(battery_scale(7, 0.0, 3), 1.0);
        let a = battery_scale(7, 0.3, 3);
        let b = battery_scale(7, 0.3, 3);
        assert_eq!(a, b);
        assert!(a > 0.69 && a <= 1.0, "scale {a} outside [0.7, 1]");
        assert_ne!(battery_scale(7, 0.3, 4), a, "per-host spread");
    }
}
