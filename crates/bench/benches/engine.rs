//! Discrete-event core microbenches: binary heap vs calendar queue under
//! the classic hold model, and scheduler overhead with cancellations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sim_engine::{CalendarQueue, EventQueue, PendingEvents, Scheduler, SimDuration, SimTime, SplitMix64};

/// Hold model: pop the earliest event, reinsert at now + random increment.
fn hold<Q: PendingEvents<u64>>(q: &mut Q, rng: &mut SplitMix64, ops: usize) -> u64 {
    let mut acc = 0u64;
    for _ in 0..ops {
        let (t, _, v) = q.pop_next().expect("queue never empties in hold model");
        acc = acc.wrapping_add(v);
        let dt = 1 + (rng.next_u64() % 1_000_000);
        q.insert(SimTime(t.0 + dt), v);
    }
    acc
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("pending_event_set");
    for &population in &[64usize, 1024, 16384] {
        group.bench_function(format!("binary_heap/hold/{population}"), |b| {
            b.iter_batched(
                || {
                    let mut q = EventQueue::new();
                    let mut rng = SplitMix64::new(7);
                    for i in 0..population {
                        q.insert(SimTime(rng.next_u64() % 1_000_000), i as u64);
                    }
                    (q, SplitMix64::new(13))
                },
                |(mut q, mut rng)| hold(&mut q, &mut rng, 1000),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("calendar_queue/hold/{population}"), |b| {
            b.iter_batched(
                || {
                    let mut q = CalendarQueue::new();
                    let mut rng = SplitMix64::new(7);
                    for i in 0..population {
                        q.insert(SimTime(rng.next_u64() % 1_000_000), i as u64);
                    }
                    (q, SplitMix64::new(13))
                },
                |(mut q, mut rng)| hold(&mut q, &mut rng, 1000),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler/schedule_fire_cancel", |b| {
        b.iter_batched(
            Scheduler::<u32>::new,
            |mut s| {
                let mut kept = Vec::with_capacity(128);
                for i in 0..512u32 {
                    let h = s.schedule_in(SimDuration::from_micros(i as u64 + 1), i);
                    if i % 4 == 0 {
                        s.cancel(h);
                    } else {
                        kept.push(h);
                    }
                }
                let mut n = 0;
                while s.next().is_some() {
                    n += 1;
                }
                assert_eq!(n, 384);
                n
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_queues, bench_scheduler);
criterion_main!(benches);
