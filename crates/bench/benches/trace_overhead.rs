//! Cost of the observability layer on the full stack.
//!
//! Three settings of the same scenario: recorder absent (the default every
//! figure run uses), digest-only (golden-trace mode, O(1) memory), and full
//! buffering (JSONL export mode).  The "off" case must track the pre-trace
//! baseline — emission sites compile to a branch on an `Option`
//! discriminant and construct no event when it is `None`.

use criterion::{criterion_group, criterion_main, Criterion};
use ecgrid_bench::bench_scenario;
use manet::trace::TraceMode;
use runner::{run_scenario_with, ProtocolKind, RunOptions, Scenario};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    let sc = Scenario {
        duration_secs: 60.0,
        ..bench_scenario(ProtocolKind::Ecgrid, 42)
    };
    let run = |opts: RunOptions| {
        let r = run_scenario_with(&sc, opts);
        (r.stats.tx_started, r.trace_digest)
    };
    g.bench_function("off", |b| b.iter(|| run(RunOptions::default())));
    g.bench_function("digest_only", |b| b.iter(|| run(RunOptions::digest())));
    g.bench_function("full_buffer", |b| {
        b.iter(|| {
            run(RunOptions {
                trace: Some(TraceMode::Full),
                ..RunOptions::default()
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
