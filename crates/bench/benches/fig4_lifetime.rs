//! Per-figure bench: the Fig. 4 lifetime scenario (alive-fraction curve)
//! at reduced scale — measures the cost of regenerating one curve point
//! set per protocol.  `cargo run -p ecgrid-runner --bin fig4` regenerates
//! the full-scale figure rows.

use criterion::{criterion_group, criterion_main, Criterion};
use ecgrid_bench::bench_scenario;
use runner::{run_scenario, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_lifetime");
    g.sample_size(10);
    for p in ProtocolKind::ALL {
        g.bench_function(p.name(), |b| {
            b.iter(|| {
                let r = run_scenario(&bench_scenario(p, 42));
                assert!(!r.alive.is_empty());
                r.alive.last_value()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
