//! Per-figure bench: the Fig. 8 density sweep at reduced scale — scaling
//! of simulation cost with host count.  `cargo run -p ecgrid-runner --bin
//! fig8` regenerates the full-scale rows.

use criterion::{criterion_group, criterion_main, Criterion};
use ecgrid_bench::bench_scenario;
use runner::{run_scenario, ProtocolKind, Scenario};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_density");
    g.sample_size(10);
    for n in [25usize, 50, 100] {
        g.bench_function(format!("ecgrid_{n}_hosts"), |b| {
            b.iter(|| {
                let sc = Scenario {
                    n_hosts: n,
                    ..bench_scenario(ProtocolKind::Ecgrid, 42)
                };
                let r = run_scenario(&sc);
                r.alive.last_value()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
