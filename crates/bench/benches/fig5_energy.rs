//! Per-figure bench: the Fig. 5 energy (aen) scenario at reduced scale —
//! checks the invariant the figure plots (aen(GRID) > aen(ECGRID)) on
//! every iteration.  `cargo run -p ecgrid-runner --bin fig5` regenerates
//! the full-scale figure rows.

use criterion::{criterion_group, criterion_main, Criterion};
use ecgrid_bench::bench_scenario;
use runner::{run_scenario, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_energy");
    g.sample_size(10);
    g.bench_function("grid_vs_ecgrid_aen", |b| {
        b.iter(|| {
            let grid = run_scenario(&bench_scenario(ProtocolKind::Grid, 42));
            let ec = run_scenario(&bench_scenario(ProtocolKind::Ecgrid, 42));
            let (g_aen, e_aen) = (grid.aen.last_value().unwrap(), ec.aen.last_value().unwrap());
            assert!(g_aen > e_aen, "GRID must out-consume ECGRID: {g_aen} vs {e_aen}");
            g_aen - e_aen
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
