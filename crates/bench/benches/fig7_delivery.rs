//! Per-figure bench: the Fig. 7 delivery-rate-vs-pause scenario at reduced
//! scale, asserting the figure's invariant (high delivery for every
//! protocol).  `cargo run -p ecgrid-runner --bin fig7` regenerates the
//! full-scale rows.

use criterion::{criterion_group, criterion_main, Criterion};
use ecgrid_bench::bench_scenario;
use runner::{run_scenario, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_delivery");
    g.sample_size(10);
    for p in ProtocolKind::ALL {
        g.bench_function(p.name(), |b| {
            b.iter(|| {
                let r = run_scenario(&bench_scenario(p, 42));
                let pdr = r.pdr.unwrap_or(0.0);
                assert!(pdr > 0.5, "{} pdr {pdr}", p.name());
                pdr
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
