//! Mobility microbenches: trace generation, position queries, and
//! grid-crossing enumeration — the closed-form machinery that replaces
//! per-tick position updates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use geo::GridMap;
use mobility::{MobilityModel, RandomWaypoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_engine::SimTime;

fn bench_trace_generation(c: &mut Criterion) {
    let model = RandomWaypoint::paper(10.0, 0.0);
    c.bench_function("mobility/build_trace_2000s", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(42),
            |mut rng| model.build_trace(&mut rng, SimTime::from_secs(2000)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_position_queries(c: &mut Criterion) {
    let model = RandomWaypoint::paper(10.0, 30.0);
    let mut rng = StdRng::seed_from_u64(42);
    let trace = model.build_trace(&mut rng, SimTime::from_secs(2000));
    c.bench_function("mobility/position_at_1k_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000u64 {
                let t = SimTime::from_millis(i * 1999);
                let p = trace.position_at(t);
                acc += p.x + p.y;
            }
            acc
        })
    });
}

fn bench_crossing_enumeration(c: &mut Criterion) {
    let model = RandomWaypoint::paper(10.0, 0.0);
    let mut rng = StdRng::seed_from_u64(42);
    let trace = model.build_trace(&mut rng, SimTime::from_secs(2000));
    let map = GridMap::paper_default();
    c.bench_function("mobility/enumerate_all_crossings_2000s", |b| {
        b.iter(|| {
            let mut t = SimTime::ZERO;
            let mut n = 0u32;
            while let Some((at, _)) = trace.next_cell_crossing(&map, t) {
                t = at + sim_engine::SimDuration::from_micros(1);
                n += 1;
            }
            n
        })
    });
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_position_queries,
    bench_crossing_enumeration
);
criterion_main!(benches);
