//! Per-figure bench: the Fig. 6 latency-vs-pause scenario at reduced
//! scale.  `cargo run -p ecgrid-runner --bin fig6` regenerates the figure.

use criterion::{criterion_group, criterion_main, Criterion};
use ecgrid_bench::bench_scenario;
use runner::{run_scenario, ProtocolKind, Scenario};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_latency");
    g.sample_size(10);
    for pause in [0.0, 300.0] {
        g.bench_function(format!("ecgrid_pause{pause}"), |b| {
            b.iter(|| {
                let sc = Scenario {
                    pause_secs: pause,
                    ..bench_scenario(ProtocolKind::Ecgrid, 42)
                };
                let r = run_scenario(&sc);
                let lat = r.latency_ms.expect("packets must be delivered");
                assert!(lat < 100.0, "latency {lat} ms");
                lat
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
