//! Radio-substrate and energy-meter microbenches: carrier sense and
//! collision queries on a loaded channel; piecewise energy integration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use energy::{Battery, EnergyMeter, PowerProfile, RadioMode};
use geo::Point2;
use radio::{ChannelState, NodeId};
use sim_engine::{SimDuration, SimTime};

fn loaded_channel(n: usize) -> ChannelState {
    let mut ch = ChannelState::paper_default();
    for i in 0..n {
        let x = (i as f64 * 37.0) % 1000.0;
        let y = (i as f64 * 91.0) % 1000.0;
        let start = SimTime::from_micros(i as u64 * 40);
        ch.begin_tx(
            NodeId(i as u32),
            Point2::new(x, y),
            250.0,
            start,
            start + SimDuration::from_micros(2300),
        );
    }
    ch
}

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel");
    for &n in &[4usize, 16, 64] {
        let ch = loaded_channel(n);
        group.bench_function(format!("busy_until/{n}_in_flight"), |b| {
            b.iter(|| {
                let mut hits = 0;
                for i in 0..100u64 {
                    let p = Point2::new((i * 97 % 1000) as f64, (i * 41 % 1000) as f64);
                    if ch.busy_until(p, SimTime::from_micros(1000)).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
        group.bench_function(format!("corrupted/{n}_in_flight"), |b| {
            b.iter(|| {
                let mut bad = 0;
                for i in 0..100u64 {
                    let p = Point2::new((i * 67 % 1000) as f64, (i * 29 % 1000) as f64);
                    if ch.corrupted(
                        0,
                        Point2::new(0.0, 0.0),
                        p,
                        SimTime::ZERO,
                        SimTime::from_micros(2300),
                    ) {
                        bad += 1;
                    }
                }
                bad
            })
        });
    }
    group.finish();
}

fn bench_energy_meter(c: &mut Criterion) {
    c.bench_function("energy/10k_mode_transitions", |b| {
        b.iter_batched(
            || EnergyMeter::new(PowerProfile::paper_default(), Battery::with_capacity(1e9)),
            |mut m| {
                let modes = [RadioMode::Idle, RadioMode::Rx, RadioMode::Tx, RadioMode::Sleep];
                for i in 0..10_000u64 {
                    m.set_mode(SimTime::from_micros(i * 250), modes[(i % 4) as usize]);
                }
                m.consumed_j()
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("energy/death_prediction", |b| {
        let m = EnergyMeter::paper_default();
        b.iter(|| m.predicted_death())
    });
}

criterion_group!(benches, bench_channel, bench_energy_meter);
criterion_main!(benches);
