//! Criterion view of the core scaling family (see `src/core_scaling.rs`
//! for methodology and `src/bin/bench_core.rs` for the JSON baseline).
//!
//! ```sh
//! cargo bench -p ecgrid-bench --bench core_scaling
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecgrid_bench::core_scaling::{
    broadcast_round_brute, broadcast_round_grid, build_index, build_world, carrier_sense_round,
    discovery_sweep, loaded_channel, placements, SCALES,
};
use manet::NeighborIndex;

fn receiver_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("receiver_discovery");
    group.sample_size(10);
    for &n in &SCALES {
        let brute = build_world(n, 1.0, NeighborIndex::Brute, 42);
        let grid = build_world(n, 1.0, NeighborIndex::Grid, 42);
        group.bench_function(format!("brute/{n}"), |b| {
            b.iter(|| discovery_sweep(black_box(&brute)))
        });
        group.bench_function(format!("grid/{n}"), |b| {
            b.iter(|| discovery_sweep(black_box(&grid)))
        });
    }
    group.finish();
}

fn geometry_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometry_kernel");
    group.sample_size(10);
    for &n in &SCALES {
        let pts = placements(n, 42);
        let idx = build_index(&pts, n);
        let mut scratch = Vec::new();
        group.bench_function(format!("brute/{n}"), |b| {
            b.iter(|| broadcast_round_brute(black_box(&pts)))
        });
        group.bench_function(format!("grid/{n}"), |b| {
            b.iter(|| broadcast_round_grid(black_box(&pts), &idx, &mut scratch))
        });
    }
    group.finish();
}

fn carrier_sense(c: &mut Criterion) {
    let mut group = c.benchmark_group("carrier_sense");
    group.sample_size(10);
    for &n in &SCALES {
        let pts = placements(n, 42);
        let k = (n / 16).max(4);
        let plain = loaded_channel(&pts, k, n, false);
        let fast = loaded_channel(&pts, k, n, true);
        group.bench_function(format!("brute/{n}"), |b| {
            b.iter(|| carrier_sense_round(black_box(&plain), &pts))
        });
        group.bench_function(format!("grid/{n}"), |b| {
            b.iter(|| carrier_sense_round(black_box(&fast), &pts))
        });
    }
    group.finish();
}

criterion_group!(benches, receiver_discovery, geometry_kernel, carrier_sense);
criterion_main!(benches);
