//! MAC/PHY ablation bench: cost of the collision machinery. Runs the same
//! full-stack scenario while exercising the channel paths that DESIGN.md
//! calls out (capture on/off is a metric ablation — see
//! `cargo run -p ecgrid-runner --bin ablations` — this bench tracks the
//! runtime cost of the channel bookkeeping itself).

use criterion::{criterion_group, criterion_main, Criterion};
use ecgrid_bench::bench_scenario;
use runner::{run_scenario, ProtocolKind, Scenario};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mac");
    g.sample_size(10);
    // higher offered load stresses carrier sense + collision checks
    for rate in [1.0, 10.0] {
        g.bench_function(format!("ecgrid_rate{rate}pps"), |b| {
            b.iter(|| {
                let sc = Scenario {
                    flow_rate_pps: rate,
                    ..bench_scenario(ProtocolKind::Ecgrid, 42)
                };
                let r = run_scenario(&sc);
                r.stats.corrupted
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
