//! The core scaling benchmark family: how the simulator's hot paths grow
//! with population.
//!
//! Methodology (documented in DESIGN.md §10):
//!
//! * **Constant density.**  Dense-MANET scaling studies hold *density*
//!   fixed — more hosts on a proportionally larger field — because a
//!   fixed 1000 m field with a 250 m radio saturates: past ~100 hosts a
//!   single broadcast reaches most of the network and no index (nor any
//!   algorithm) can beat Ω(N) receivers per transmission.  The family
//!   keeps the paper's density (100 hosts per km²), so the field side is
//!   `1000 · √(N/100)` meters and N = 100 *is* the paper's environment.
//! * **Broadcast-heavy.**  Every protocol here beacons and floods; each
//!   transmission must discover its audience.  The headline microbench
//!   ([`discovery_sweep`]) runs a full discovery round through the
//!   *simulator's own* query path (`World::neighbors_of`) — brute mode
//!   scans every node record per query, grid mode reads the maintained
//!   bucket index.  That is the unit of work the delivery loop executes
//!   per flood wave, and the cost the index was built to cut.
//! * **Geometry kernels.**  [`broadcast_round_brute`] /
//!   [`broadcast_round_grid`] are the same query over a bare `Point2`
//!   array — a lower bound that isolates index overhead from node-state
//!   memory traffic.  Both return identical receiver sets (the property
//!   tests prove it; the checksums here double-check per run).
//!
//! The end-to-end harness runs the same constant-density scenario through
//! the full simulator under `NeighborIndex::Brute` and
//! `NeighborIndex::Grid` and checks the trace digests match — the wall
//! times are real end-to-end numbers, not model extrapolations.

use ecgrid::{Ecgrid, EcgridConfig};
use geo::{GridMap, Point2};
use manet::trace::TraceMode;
use manet::{auto_gather_threshold, HostSetup, NeighborIndex, NodeId, World, WorldConfig};
use mobility::{MobilityModel, RandomWaypoint};
use radio::{ChannelState, SpatialIndex};
use sim_engine::{RngFactory, SimTime, SplitMix64};
use std::time::Instant;
use traffic::{FlowSet, FlowSpec};

/// The population ladder.
pub const SCALES: [usize; 7] = [50, 100, 200, 500, 1000, 5000, 10000];

/// Largest scale `--quick` (CI) mode climbs to; the full ladder is for
/// the committed baseline run.
pub const QUICK_MAX_N: usize = 1000;

/// The paper's radio range (m).
pub const RANGE_M: f64 = 250.0;

/// Field side holding the paper's density (100 hosts / km²) at `n` hosts.
pub fn field_side(n: usize) -> f64 {
    1000.0 * (n as f64 / 100.0).sqrt()
}

/// Deterministic uniform placements on the constant-density field.
pub fn placements(n: usize, seed: u64) -> Vec<Point2> {
    let side = field_side(n);
    let mut rng = SplitMix64::new(seed);
    let mut unit = move || {
        // 53-bit mantissa draw in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point2::new(unit() * side, unit() * side))
        .collect()
}

/// Range-sized bucket index over `points` (ids are the point indices).
pub fn build_index(points: &[Point2], n: usize) -> SpatialIndex {
    let side = field_side(n);
    let mut idx = SpatialIndex::new(side, side, RANGE_M);
    for (i, p) in points.iter().enumerate() {
        idx.insert_at(i as u32, *p);
    }
    idx
}

/// One brute broadcast round: every host discovers its receivers by
/// scanning all N positions.  Returns a checksum over (receiver count,
/// id sum) so the work cannot be optimized away and the grid round can be
/// cross-checked against it.
pub fn broadcast_round_brute(points: &[Point2]) -> u64 {
    let mut acc = 0u64;
    for (i, q) in points.iter().enumerate() {
        for (j, p) in points.iter().enumerate() {
            if i != j && q.within_range(*p, RANGE_M) {
                acc = acc.wrapping_add(j as u64).wrapping_add(1);
            }
        }
    }
    acc
}

/// The simulator's Chebyshev cell reach on the paper grid (250 m range,
/// 100 m cells — same derivation as `World::new`); its occupancy
/// crossover `auto_gather_threshold(4) = 243` sits between the bench's
/// historically regressing scales (N ≤ 200) and its winning ones
/// (N ≥ 500).
pub const PAPER_REACH_CELLS: i32 = 4;

/// The adaptive geometry round — the micro-bench analogue of
/// `GatherFallback::Auto`.  At low N the range-sized 3×3 bucket
/// neighborhood spans most of the constant-density field, so bucket
/// headers and the merge-sort are pure overhead over the
/// branch-predictable linear scan (the 0.34x–0.87x regression band);
/// populations at or below the simulator's own occupancy crossover
/// therefore take the brute round, larger ones query the index.
/// Checksum-compatible with both fixed rounds by construction.
pub fn broadcast_round_auto(points: &[Point2], idx: &SpatialIndex, scratch: &mut Vec<u32>) -> u64 {
    if points.len() <= auto_gather_threshold(PAPER_REACH_CELLS) {
        broadcast_round_brute(points)
    } else {
        broadcast_round_grid(points, idx, scratch)
    }
}

/// One grid broadcast round: every host gathers its 3×3 bucket
/// neighborhood and applies the same exact filter.  Checksum-compatible
/// with [`broadcast_round_brute`].
pub fn broadcast_round_grid(points: &[Point2], idx: &SpatialIndex, scratch: &mut Vec<u32>) -> u64 {
    let mut acc = 0u64;
    for (i, q) in points.iter().enumerate() {
        idx.query_point_sorted_into(*q, scratch);
        for &j in scratch.iter() {
            if j as usize != i && q.within_range(points[j as usize], RANGE_M) {
                acc = acc.wrapping_add(j as u64).wrapping_add(1);
            }
        }
    }
    acc
}

/// Population above which the simulator enables the channel's spatial
/// bucket structure (`World::new`'s `channel_spatial` policy) — the
/// carrier-sense bench follows the same crossover so its bucketed leg
/// measures what the simulator actually runs at each N.
pub fn channel_spatial_threshold() -> usize {
    auto_gather_threshold(PAPER_REACH_CELLS)
}

/// A channel loaded with `k` in-flight transmissions spread over the
/// field, for the carrier-sense microbench.  `spatial` toggles the bucket
/// index.
pub fn loaded_channel(points: &[Point2], k: usize, n: usize, spatial: bool) -> ChannelState {
    let mut ch = ChannelState::new(RANGE_M);
    if spatial {
        let side = field_side(n);
        ch.enable_spatial(side, side);
    }
    for (i, p) in points.iter().take(k).enumerate() {
        ch.begin_tx(
            NodeId(i as u32),
            *p,
            RANGE_M,
            SimTime::from_millis(10),
            SimTime::from_millis(12),
        );
    }
    ch
}

/// One carrier-sense round: every host senses the medium.  Checksum over
/// the busy verdicts.
pub fn carrier_sense_round(ch: &ChannelState, points: &[Point2]) -> u64 {
    let at = SimTime::from_millis(11);
    let mut acc = 0u64;
    for p in points {
        if ch.busy_until(*p, at).is_some() {
            acc = acc.wrapping_add(1);
        }
    }
    acc
}

/// Build the constant-density broadcast-heavy scenario world: `n` ECGRID
/// hosts on the `field_side(n)` field, paper MAC/energy/RAS, 10 CBR
/// flows, digest-only tracing, mobility traces covering
/// `duration_secs + 10`.
pub fn build_world(n: usize, duration_secs: f64, mode: NeighborIndex, seed: u64) -> World<Ecgrid> {
    build_world_sharded(n, duration_secs, mode, seed, None)
}

/// [`build_world`] on the sharded conservative-sync engine when `shards`
/// is `Some(k)` (serial otherwise).  Digest-identical either way.
pub fn build_world_sharded(
    n: usize,
    duration_secs: f64,
    mode: NeighborIndex,
    seed: u64,
    shards: Option<usize>,
) -> World<Ecgrid> {
    build_world_parallel(n, duration_secs, mode, seed, shards, 1)
}

/// [`build_world_sharded`] with `threads` worker lanes for the parallel
/// engine's host-plane kernels (ignored on the serial engine).
/// Digest-identical at every T.
pub fn build_world_parallel(
    n: usize,
    duration_secs: f64,
    mode: NeighborIndex,
    seed: u64,
    shards: Option<usize>,
    threads: usize,
) -> World<Ecgrid> {
    let side = field_side(n);
    let mut cfg = WorldConfig {
        grid: GridMap::new(side, side, 100.0),
        ..WorldConfig::paper_default(seed)
    }
    .with_neighbor_index(mode);
    if let Some(k) = shards {
        cfg = cfg.with_parallel_world(k).with_threads(threads);
    }
    let end = SimTime::from_secs_f64(duration_secs);
    let horizon = end + sim_engine::SimDuration::from_secs(10);
    let rngs = RngFactory::new(seed);
    let model = RandomWaypoint {
        field_w: side,
        field_h: side,
        max_speed: 1.0,
        min_speed: 0.01,
        pause_secs: 0.0,
    };
    let hosts: Vec<HostSetup> = (0..n)
        .map(|i| HostSetup::paper(model.build_trace(&mut rngs.stream("mobility", i as u64), horizon)))
        .collect();
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let spec = FlowSpec {
        n_flows: 10,
        packet_bytes: 512,
        rate_pps: 1.0,
        start: SimTime::from_secs(1),
        stop: end,
        stagger: true,
    };
    let flows = FlowSet::random(&mut rngs.stream("traffic", 0), &ids, &spec);
    let mut world = World::new(cfg, hosts, flows, |id| Ecgrid::new(EcgridConfig::default(), id));
    world.enable_trace(TraceMode::DigestOnly);
    world
}

/// One receiver-discovery round through the **simulator's own** query
/// path: every host asks the world who can hear it, exactly as the
/// delivery loop does per transmission.  The answer (membership *and*
/// order) is mode-independent; the cost is what the spatial index exists
/// to cut.  Returns an order-sensitive checksum so the caller can assert
/// brute and grid worlds agree.
pub fn discovery_sweep(world: &World<Ecgrid>) -> u64 {
    let mut acc = 0u64;
    for i in 0..world.node_count() {
        let cell = world.node_cell(NodeId(i as u32));
        for (k, id) in world.neighbors_of(cell).into_iter().enumerate() {
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(id.0 as u64)
                .wrapping_add(k as u64);
        }
    }
    acc
}

/// Result of one full-simulator run of the scaling scenario.
pub struct EndToEnd {
    pub wall_s: f64,
    pub digest: u64,
    pub events: u64,
}

/// Run the [`build_world`] scenario end to end.  Identical
/// (n, seed, duration) runs are bit-identical across `mode`s — the
/// caller should assert it.
pub fn run_end_to_end(n: usize, duration_secs: f64, mode: NeighborIndex, seed: u64) -> EndToEnd {
    run_end_to_end_sharded(n, duration_secs, mode, seed, None)
}

/// [`run_end_to_end`] on the sharded engine when `shards` is `Some(k)`.
/// The digest must equal the serial run's — the bench caller asserts it,
/// so the parallel column can never buy speed with a behavior change.
pub fn run_end_to_end_sharded(
    n: usize,
    duration_secs: f64,
    mode: NeighborIndex,
    seed: u64,
    shards: Option<usize>,
) -> EndToEnd {
    run_end_to_end_parallel(n, duration_secs, mode, seed, shards, 1)
}

/// [`run_end_to_end_sharded`] with `threads` worker lanes.  The digest
/// must equal the serial run's at every T — the bench caller asserts it.
pub fn run_end_to_end_parallel(
    n: usize,
    duration_secs: f64,
    mode: NeighborIndex,
    seed: u64,
    shards: Option<usize>,
    threads: usize,
) -> EndToEnd {
    let mut world = build_world_parallel(n, duration_secs, mode, seed, shards, threads);
    let end = SimTime::from_secs_f64(duration_secs);
    let start = Instant::now();
    world.run_until(end);
    let wall_s = start.elapsed().as_secs_f64();
    let rec = world.take_recorder().expect("tracing was enabled");
    EndToEnd {
        wall_s,
        digest: rec.digest().0,
        events: rec.profile().dispatched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_rounds_agree_at_every_scale() {
        // the brute round is O(N²); cap the debug-build test at the quick
        // ladder (the release bench asserts the same equality at 5k/10k)
        for &n in SCALES.iter().filter(|&&n| n <= QUICK_MAX_N) {
            let pts = placements(n, 0xbeef);
            let idx = build_index(&pts, n);
            let mut scratch = Vec::new();
            assert_eq!(
                broadcast_round_brute(&pts),
                broadcast_round_grid(&pts, &idx, &mut scratch),
                "n={n}: rounds disagree"
            );
            assert_eq!(
                broadcast_round_brute(&pts),
                broadcast_round_auto(&pts, &idx, &mut scratch),
                "n={n}: adaptive round disagrees"
            );
        }
    }

    #[test]
    fn auto_round_crossover_matches_the_simulator() {
        // brute side of the crossover at the regression band, grid side
        // above it — the whole point of routing through the threshold
        assert!(auto_gather_threshold(PAPER_REACH_CELLS) >= 200);
        assert!(auto_gather_threshold(PAPER_REACH_CELLS) < 500);
    }

    #[test]
    fn carrier_sense_rounds_agree() {
        let n = 200;
        let pts = placements(n, 7);
        let plain = loaded_channel(&pts, 32, n, false);
        let fast = loaded_channel(&pts, 32, n, true);
        assert_eq!(
            carrier_sense_round(&plain, &pts),
            carrier_sense_round(&fast, &pts)
        );
    }

    #[test]
    fn discovery_sweeps_agree_across_modes() {
        for &n in &[50usize, 200] {
            let brute = build_world(n, 5.0, NeighborIndex::Brute, 9);
            let grid = build_world(n, 5.0, NeighborIndex::Grid, 9);
            assert_eq!(
                discovery_sweep(&brute),
                discovery_sweep(&grid),
                "n={n}: simulator query paths disagree"
            );
        }
    }

    #[test]
    fn end_to_end_modes_are_digest_identical() {
        let brute = run_end_to_end(50, 5.0, NeighborIndex::Brute, 3);
        let grid = run_end_to_end(50, 5.0, NeighborIndex::Grid, 3);
        assert_eq!(brute.digest, grid.digest);
        assert_eq!(brute.events, grid.events);
        assert!(grid.events > 1000, "the scenario must actually do work");
        let sharded = run_end_to_end_sharded(50, 5.0, NeighborIndex::Grid, 3, Some(4));
        assert_eq!(sharded.digest, grid.digest, "sharded engine diverged");
        assert_eq!(sharded.events, grid.events);
        let threaded = run_end_to_end_parallel(50, 5.0, NeighborIndex::Grid, 3, Some(4), 2);
        assert_eq!(threaded.digest, grid.digest, "threaded engine diverged");
        assert_eq!(threaded.events, grid.events);
    }
}
