//! Shared helpers for the benchmark suite.

pub mod core_scaling;

use runner::{ProtocolKind, Scenario};

/// A reduced-scale copy of the paper's base scenario, sized so one run
/// fits a Criterion iteration (~100 ms) while still exercising the whole
/// stack: elections, sleep, discovery, forwarding, energy accounting.
pub fn bench_scenario(protocol: ProtocolKind, seed: u64) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 50,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 5,
        flow_rate_pps: 1.0,
        duration_secs: 60.0,
        seed,
        model1_endpoints: 5,
    }
}
