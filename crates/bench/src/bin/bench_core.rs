//! Emit the repo's perf baseline: `BENCH_core.json`.
//!
//! Runs the core scaling family (see `core_scaling`) at N ∈ {50, 100,
//! 200, 500, 1000, 5000, 10000} and writes a machine-readable report:
//!
//! * `receiver_discovery` — one discovery round through the simulator's
//!   own query path (`World::neighbors_of`): brute node-table scan vs the
//!   maintained bucket index — the headline number;
//! * `geometry_kernel` — the same query over a bare position array, a
//!   lower bound that isolates index overhead from node-state traffic;
//!   the `auto` column routes through the simulator's occupancy
//!   crossover (`GatherFallback::Auto`), which is what kills the
//!   historical low-N regression of the raw grid round;
//! * `carrier_sense` — one sensing round over a loaded channel, linear
//!   scan vs bucketed transmissions;
//! * `end_to_end` — the full simulator on the same constant-density
//!   scenario under both `NeighborIndex` modes, with a digest-equality
//!   check so the speedup is never bought with a behavior change;
//! * the `parallel` column inside `end_to_end` — the same grid-mode
//!   scenario on the sharded conservative-sync engine (4 strips), digest-
//!   checked against the serial run; its win is per-shard channel
//!   bookkeeping amortized to epoch barriers (DESIGN.md §12);
//! * the `threaded` column — the sharded engine with 4 worker lanes
//!   fanning the host-plane kernels out over real threads (DESIGN.md
//!   §14), digest-checked too.  Its wall time only beats the sharded
//!   column when the host has cores to give it, so the report records
//!   `host_parallelism` and the `--check` gate on this column is
//!   conditional on it.
//!
//! ```sh
//! cargo run --release -p ecgrid-bench --bin bench_core -- --quick --check --out BENCH_core.json
//! ```
//!
//! `--quick` shrinks repetitions and the simulated horizon and caps the
//! ladder at N = 1000 for CI; the measured ratios are the same, just
//! noisier.  `--check` turns the report into a regression gate: exit 1
//! unless digests match at every scale and, at every N ≤ 200 (the low-N
//! band where a naive bucket index historically regressed), every
//! section holds ≥ 0.9x of brute — end-to-end keeps its stricter 0.95x
//! floor, and the geometry kernel is judged on its `auto` column.

use ecgrid_bench::core_scaling::{
    broadcast_round_auto, broadcast_round_brute, broadcast_round_grid, build_index, build_world,
    carrier_sense_round, discovery_sweep, field_side, loaded_channel, placements, run_end_to_end_parallel,
    EndToEnd, QUICK_MAX_N, SCALES,
};
use manet::{host_parallelism, NeighborIndex};
use runner::write_atomic;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Time `f` over `reps` repetitions and return the *minimum* wall time in
/// nanoseconds (minimum-of-reps is the standard noise floor estimator for
/// short deterministic kernels).
fn time_ns(reps: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut check = 0u64;
    for _ in 0..reps.max(2) {
        let start = Instant::now();
        check = f();
        let ns = start.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
    }
    (best, check)
}

struct ScaleReport {
    n: usize,
    field_m: f64,
    rd_brute_ns: f64,
    rd_grid_ns: f64,
    gk_brute_ns: f64,
    gk_grid_ns: f64,
    gk_auto_ns: f64,
    cs_brute_ns: f64,
    cs_grid_ns: f64,
    e2e_brute_s: f64,
    e2e_grid_s: f64,
    e2e_par_s: f64,
    e2e_thr_s: f64,
    e2e_events: u64,
    digest_match: bool,
}

/// Strip count of the parallel end-to-end column.
const PAR_SHARDS: usize = 4;

/// Worker-lane count of the threaded end-to-end column.
const PAR_THREADS: usize = 4;

impl ScaleReport {
    fn rd_speedup(&self) -> f64 {
        self.rd_brute_ns / self.rd_grid_ns
    }
    fn gk_speedup(&self) -> f64 {
        self.gk_brute_ns / self.gk_grid_ns
    }
    /// The adaptive round vs brute — the number the low-N gate holds.
    fn gk_auto_speedup(&self) -> f64 {
        self.gk_brute_ns / self.gk_auto_ns
    }
    fn cs_speedup(&self) -> f64 {
        self.cs_brute_ns / self.cs_grid_ns
    }
    fn e2e_speedup(&self) -> f64 {
        self.e2e_brute_s / self.e2e_grid_s
    }
    /// Sharded engine vs the serial grid-mode run (same scenario).
    fn par_speedup(&self) -> f64 {
        self.e2e_grid_s / self.e2e_par_s
    }
    /// Threaded engine vs the sharded single-lane run (same scenario).
    fn thr_speedup(&self) -> f64 {
        self.e2e_par_s / self.e2e_thr_s
    }
}

fn json_f(x: f64) -> String {
    // JSON has no Infinity/NaN; clamp degenerate timings defensively
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".into()
    }
}

fn render_json(quick: bool, scales: &[ScaleReport]) -> String {
    let mut s = String::new();
    let headline = scales
        .iter()
        .find(|r| r.n == 500)
        .map(|r| r.rd_speedup())
        .unwrap_or(f64::NAN);
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"core_scaling\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"range_m\": 250.0,");
    let _ = writeln!(s, "  \"density_hosts_per_km2\": 100.0,");
    let _ = writeln!(s, "  \"host_parallelism\": {},", host_parallelism());
    let _ = writeln!(
        s,
        "  \"receiver_discovery_speedup_at_500\": {},",
        json_f(headline)
    );
    let _ = writeln!(s, "  \"scales\": [");
    for (i, r) in scales.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"n\": {},", r.n);
        let _ = writeln!(s, "      \"field_m\": {},", json_f(r.field_m));
        let _ = writeln!(
            s,
            "      \"receiver_discovery\": {{\"brute_round_ns\": {}, \"grid_round_ns\": {}, \"speedup\": {}}},",
            json_f(r.rd_brute_ns),
            json_f(r.rd_grid_ns),
            json_f(r.rd_speedup())
        );
        let _ = writeln!(
            s,
            "      \"geometry_kernel\": {{\"brute_round_ns\": {}, \"grid_round_ns\": {}, \"speedup\": {}, \"auto_round_ns\": {}, \"auto_speedup\": {}}},",
            json_f(r.gk_brute_ns),
            json_f(r.gk_grid_ns),
            json_f(r.gk_speedup()),
            json_f(r.gk_auto_ns),
            json_f(r.gk_auto_speedup())
        );
        let _ = writeln!(
            s,
            "      \"carrier_sense\": {{\"brute_round_ns\": {}, \"grid_round_ns\": {}, \"speedup\": {}}},",
            json_f(r.cs_brute_ns),
            json_f(r.cs_grid_ns),
            json_f(r.cs_speedup())
        );
        let _ = writeln!(
            s,
            "      \"end_to_end\": {{\"brute_wall_s\": {}, \"grid_wall_s\": {}, \"speedup\": {}, \"parallel_wall_s\": {}, \"parallel_shards\": {PAR_SHARDS}, \"parallel_speedup\": {}, \"threads\": {PAR_THREADS}, \"threaded_wall_s\": {}, \"threaded_speedup\": {}, \"events\": {}, \"digest_match\": {}}}",
            json_f(r.e2e_brute_s),
            json_f(r.e2e_grid_s),
            json_f(r.e2e_speedup()),
            json_f(r.e2e_par_s),
            json_f(r.par_speedup()),
            json_f(r.e2e_thr_s),
            json_f(r.thr_speedup()),
            r.e2e_events,
            r.digest_match
        );
        let _ = writeln!(s, "    }}{}", if i + 1 < scales.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Run the end-to-end scenario `reps` times and keep the fastest wall
/// time (small-N runs are sub-second, where scheduler noise dominates).
/// Digests must agree across repetitions — the runs are deterministic.
fn e2e_best_of(
    reps: usize,
    n: usize,
    secs: f64,
    mode: NeighborIndex,
    seed: u64,
    shards: Option<usize>,
    threads: usize,
) -> EndToEnd {
    let mut best = run_end_to_end_parallel(n, secs, mode, seed, shards, threads);
    for _ in 1..reps {
        let r = run_end_to_end_parallel(n, secs, mode, seed, shards, threads);
        assert_eq!(r.digest, best.digest, "n={n}: nondeterministic end-to-end run");
        if r.wall_s < best.wall_s {
            best = r;
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_core.json".into());

    let base_reps = if quick { 5 } else { 20 };
    let seed = 42;
    let scales: Vec<usize> = SCALES
        .iter()
        .copied()
        .filter(|&n| !quick || n <= QUICK_MAX_N)
        .collect();

    let mut reports = Vec::new();
    for &n in &scales {
        // the brute rounds are O(N²) — past 1k hosts a handful of reps
        // already dwarfs the noise floor; tiny populations are the
        // opposite problem (microsecond rounds under a 0.9x gate), so
        // they get a deeper min-of to push timer noise below the floor
        let micro_reps = match n {
            n if n > 1000 => 3,
            n if n <= 200 => base_reps * 10,
            _ => base_reps,
        };
        // small populations simulate in milliseconds, where timer noise
        // swamps any real mode difference — stretch their horizon so the
        // wall times are tens of milliseconds; shrink it at the top of
        // the ladder where the brute leg alone costs minutes
        let e2e_secs = match n {
            n if n <= 200 => 120.0,
            n if n > 1000 => 10.0,
            _ if quick => 10.0,
            _ => 30.0,
        };
        // short runs at small N additionally need best-of to beat noise;
        // the mid-ladder gets best-of-2 (single-digit-second runs still
        // wobble a few percent under scheduler noise)
        let e2e_reps = match n {
            n if n <= 200 => 5,
            n if n <= 1000 => 2,
            _ => 1,
        };
        eprintln!("bench_core: n={n} (field {:.0} m)", field_side(n));
        let pts = placements(n, seed);
        let idx = build_index(&pts, n);
        let mut scratch = Vec::new();

        let (gk_brute_ns, sum_b) = time_ns(micro_reps, || broadcast_round_brute(&pts));
        let (gk_grid_ns, sum_g) = time_ns(micro_reps, || broadcast_round_grid(&pts, &idx, &mut scratch));
        assert_eq!(sum_b, sum_g, "n={n}: receiver sets diverged");
        let (gk_auto_ns, sum_a) = time_ns(micro_reps, || broadcast_round_auto(&pts, &idx, &mut scratch));
        assert_eq!(sum_b, sum_a, "n={n}: adaptive receiver set diverged");

        let w_brute = build_world(n, 1.0, NeighborIndex::Brute, seed);
        let w_grid = build_world(n, 1.0, NeighborIndex::Grid, seed);
        let (rd_brute_ns, sw_b) = time_ns(micro_reps, || discovery_sweep(&w_brute));
        let (rd_grid_ns, sw_g) = time_ns(micro_reps, || discovery_sweep(&w_grid));
        assert_eq!(sw_b, sw_g, "n={n}: simulator discovery sweeps diverged");

        // channel load scales with population: ~6% of hosts on the air.
        // The bucketed leg follows the simulator's own policy: the world
        // only enables the channel's spatial structure above the
        // occupancy crossover (few in-flight transmissions make bucket
        // maintenance pure overhead — the same low-N regression the
        // geometry kernel's auto column kills), so below it both legs
        // run the linear scan the simulator would actually run
        let k = (n / 16).max(4);
        let spatial = n > ecgrid_bench::core_scaling::channel_spatial_threshold();
        let plain = loaded_channel(&pts, k, n, false);
        let fast = loaded_channel(&pts, k, n, spatial);
        let (cs_brute_ns, cs_b) = time_ns(micro_reps, || carrier_sense_round(&plain, &pts));
        let (cs_grid_ns, cs_g) = time_ns(micro_reps, || carrier_sense_round(&fast, &pts));
        assert_eq!(cs_b, cs_g, "n={n}: carrier-sense verdicts diverged");

        let brute = e2e_best_of(e2e_reps, n, e2e_secs, NeighborIndex::Brute, seed, None, 1);
        let grid = e2e_best_of(e2e_reps, n, e2e_secs, NeighborIndex::Grid, seed, None, 1);
        let par = e2e_best_of(
            e2e_reps,
            n,
            e2e_secs,
            NeighborIndex::Grid,
            seed,
            Some(PAR_SHARDS),
            1,
        );
        let thr = e2e_best_of(
            e2e_reps,
            n,
            e2e_secs,
            NeighborIndex::Grid,
            seed,
            Some(PAR_SHARDS),
            PAR_THREADS,
        );
        let digest_match = brute.digest == grid.digest
            && brute.events == grid.events
            && par.digest == grid.digest
            && par.events == grid.events
            && thr.digest == grid.digest
            && thr.events == grid.events;
        assert!(digest_match, "n={n}: end-to-end digests diverged across modes");

        let r = ScaleReport {
            n,
            field_m: field_side(n),
            rd_brute_ns,
            rd_grid_ns,
            gk_brute_ns,
            gk_grid_ns,
            gk_auto_ns,
            cs_brute_ns,
            cs_grid_ns,
            e2e_brute_s: brute.wall_s,
            e2e_grid_s: grid.wall_s,
            e2e_par_s: par.wall_s,
            e2e_thr_s: thr.wall_s,
            e2e_events: grid.events,
            digest_match,
        };
        eprintln!(
            "  receiver discovery {:>6.2}x   geometry kernel {:>5.2}x (auto {:>5.2}x)   carrier sense {:>5.2}x   end-to-end {:>5.2}x   parallel {:>5.2}x   threaded {:>5.2}x ({} events)",
            r.rd_speedup(),
            r.gk_speedup(),
            r.gk_auto_speedup(),
            r.cs_speedup(),
            r.e2e_speedup(),
            r.par_speedup(),
            r.thr_speedup(),
            r.e2e_events
        );
        reports.push(r);
    }

    let body = render_json(quick, &reports);
    write_atomic(Path::new(&out), body.as_bytes()).unwrap_or_else(|e| {
        eprintln!("bench_core: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("bench_core: wrote {out}");
    let headline = reports
        .iter()
        .find(|r| r.n == 500)
        .map(|r| r.rd_speedup())
        .unwrap_or(0.0);
    println!("receiver_discovery_speedup_at_500: {headline:.2}");

    if check {
        let mut failures = Vec::new();
        for r in &reports {
            if !r.digest_match {
                failures.push(format!("n={}: end-to-end digests diverged across modes", r.n));
            }
            // the low-N band where bucket overhead historically made the
            // grid path a pessimization: every section must hold ≥ 0.9x
            // of brute there (the geometry kernel is judged on its
            // adaptive column — that crossover is the fix; the raw grid
            // round legitimately loses below it and stays informational)
            if r.n <= 200 {
                for (section, speedup) in [
                    ("receiver discovery", r.rd_speedup()),
                    ("geometry kernel (auto)", r.gk_auto_speedup()),
                    ("carrier sense", r.cs_speedup()),
                ] {
                    if speedup < 0.9 {
                        failures.push(format!(
                            "n={}: {section} regressed to {speedup:.2}x of brute (floor 0.9x)",
                            r.n
                        ));
                    }
                }
                // end-to-end keeps its historical, stricter floor
                if r.e2e_speedup() < 0.95 {
                    failures.push(format!(
                        "n={}: grid end-to-end regressed to {:.2}x of brute (floor 0.95x)",
                        r.n,
                        r.e2e_speedup()
                    ));
                }
            }
            // the sharded engine must at least break even once the
            // population is large enough for its amortized bookkeeping to
            // matter; below that the column is informational
            if r.n >= 1000 && r.par_speedup() < 1.0 {
                failures.push(format!(
                    "n={}: sharded end-to-end regressed to {:.2}x of serial (floor 1.0x)",
                    r.n,
                    r.par_speedup()
                ));
            }
            // worker lanes can only buy wall time where the host has
            // cores to run them; on a narrower host the threaded column
            // is informational (the digest check above still holds it to
            // bit-exactness)
            if r.n >= 1000 && host_parallelism() >= PAR_THREADS && r.thr_speedup() < 1.0 {
                failures.push(format!(
                    "n={}: threaded end-to-end regressed to {:.2}x of sharded (floor 1.0x)",
                    r.n,
                    r.thr_speedup()
                ));
            }
        }
        if host_parallelism() < PAR_THREADS {
            eprintln!(
                "bench_core: threaded-column gate skipped (host_parallelism {} < {PAR_THREADS})",
                host_parallelism()
            );
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("bench_core: CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "bench_core: check passed (digest_match at all {} scales, no low-N regression)",
            reports.len()
        );
    }
}
