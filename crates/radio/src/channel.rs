//! The unit-disc channel: who hears whom, carrier sensing, collisions.
//!
//! Propagation is the classic ns-2 style disc: a frame from `src` reaches
//! exactly the hosts within `range` meters of the transmitter's position at
//! transmission start (250 m in the evaluation).  The channel keeps the
//! set of in-flight transmissions so the MAC can carrier-sense and so
//! receivers can detect overlapping-interferer collisions.

use crate::frame::NodeId;
use geo::Point2;
use sim_engine::SimTime;

/// One transmission on the air.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transmission {
    pub id: u64,
    pub src: NodeId,
    /// Transmitter position at tx start (the disc's center).
    pub origin: Point2,
    pub start: SimTime,
    pub end: SimTime,
}

/// Tracks in-flight (and recently-ended) transmissions.
///
/// `gc_before` must be called periodically (the simulator does it on every
/// transmission end) so the active list stays small; queries are linear in
/// the number of live transmissions, which at the paper's offered load is
/// a handful.
#[derive(Clone, Debug, Default)]
pub struct ChannelState {
    active: Vec<Transmission>,
    range: f64,
    next_id: u64,
    /// Capture: an interferer within range only corrupts a reception when
    /// its distance to the receiver is less than `capture_ratio` times the
    /// signal's distance (ns-2's 10 dB capture threshold under two-ray
    /// d⁻⁴ path loss gives 10^(10/40) ≈ 1.778).  `None` = every
    /// overlapping interferer is fatal.
    capture_ratio: Option<f64>,
}

/// ns-2's default capture threshold (10 dB) under d⁻⁴ path loss.
pub const CAPTURE_RATIO_10DB: f64 = 1.7782794100389228;

impl ChannelState {
    pub fn new(range_m: f64) -> Self {
        assert!(range_m > 0.0);
        ChannelState {
            active: Vec::new(),
            range: range_m,
            next_id: 0,
            capture_ratio: Some(CAPTURE_RATIO_10DB),
        }
    }

    /// The paper's channel: 250 m nominal range, 10 dB capture.
    pub fn paper_default() -> Self {
        ChannelState::new(250.0)
    }

    /// Disable/enable the capture effect (ablation).
    pub fn set_capture_ratio(&mut self, ratio: Option<f64>) {
        self.capture_ratio = ratio;
    }

    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Register a transmission; returns its channel id.
    pub fn begin_tx(&mut self, src: NodeId, origin: Point2, start: SimTime, end: SimTime) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.active.push(Transmission {
            id,
            src,
            origin,
            start,
            end,
        });
        id
    }

    /// Drop transmissions that ended at or before `now` (they can no longer
    /// interfere with anything starting now).
    pub fn gc_before(&mut self, now: SimTime) {
        self.active.retain(|t| t.end > now);
    }

    /// Carrier sense at position `p` and instant `at`: latest end time of
    /// any transmission in progress whose signal reaches `p`.  `None` means
    /// the medium is sensed idle.
    pub fn busy_until(&self, p: Point2, at: SimTime) -> Option<SimTime> {
        self.active
            .iter()
            .filter(|t| t.start <= at && t.end > at && t.origin.within_range(p, self.range))
            .map(|t| t.end)
            .max()
    }

    /// Collision check for a reception at `receiver` spanning
    /// `[start, end)` of transmission `tx_id` sent from `src_origin`:
    /// true if any *other* transmission audible at the receiver overlaps
    /// the interval and is strong enough to defeat capture.
    pub fn corrupted(
        &self,
        tx_id: u64,
        src_origin: Point2,
        receiver: Point2,
        start: SimTime,
        end: SimTime,
    ) -> bool {
        let d_sig = src_origin.distance(receiver).max(1.0);
        self.active.iter().any(|t| {
            if t.id == tx_id || t.start >= end || t.end <= start {
                return false;
            }
            if !t.origin.within_range(receiver, self.range) {
                return false;
            }
            match self.capture_ratio {
                // interferer farther than ratio·d_sig is ≥10 dB weaker:
                // the receiver captures the intended frame
                Some(ratio) => t.origin.distance(receiver) < ratio * d_sig,
                None => true,
            }
        })
    }

    /// All node positions within range of `origin` — the delivery set of a
    /// transmission (the caller filters by radio mode).
    pub fn reaches(&self, origin: Point2, p: Point2) -> bool {
        origin.within_range(p, self.range)
    }

    /// Number of in-flight transmissions (diagnostic).
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn carrier_sense_within_range_only() {
        let mut ch = ChannelState::paper_default();
        ch.begin_tx(NodeId(1), Point2::new(0.0, 0.0), t(10), t(12));
        // 100 m away: busy
        assert_eq!(ch.busy_until(Point2::new(100.0, 0.0), t(11)), Some(t(12)));
        // 300 m away: idle
        assert_eq!(ch.busy_until(Point2::new(300.0, 0.0), t(11)), None);
        // before it starts / after it ends: idle
        assert_eq!(ch.busy_until(Point2::new(100.0, 0.0), t(9)), None);
        assert_eq!(ch.busy_until(Point2::new(100.0, 0.0), t(12)), None);
    }

    #[test]
    fn busy_until_takes_latest_end() {
        let mut ch = ChannelState::paper_default();
        ch.begin_tx(NodeId(1), Point2::new(0.0, 0.0), t(10), t(12));
        ch.begin_tx(NodeId(2), Point2::new(50.0, 0.0), t(10), t(15));
        assert_eq!(ch.busy_until(Point2::new(10.0, 0.0), t(11)), Some(t(15)));
    }

    #[test]
    fn overlapping_comparable_interferer_corrupts() {
        let mut ch = ChannelState::paper_default();
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, t(10), t(12));
        // interferer equidistant from the receiver: no capture possible
        ch.begin_tx(NodeId(2), Point2::new(100.0, 0.0), t(11), t(13));
        let receiver = Point2::new(50.0, 0.0);
        assert!(ch.corrupted(tx, src, receiver, t(10), t(12)));
    }

    #[test]
    fn strong_signal_captures_over_weak_interferer() {
        let mut ch = ChannelState::paper_default();
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, t(10), t(12));
        // receiver 50 m from the source, interferer 200 m away: 4x the
        // distance => far beyond the 10 dB capture threshold
        ch.begin_tx(NodeId(2), Point2::new(250.0, 0.0), t(11), t(13));
        let receiver = Point2::new(50.0, 0.0);
        assert!(!ch.corrupted(tx, src, receiver, t(10), t(12)));
        // without capture the same interferer is fatal
        ch.set_capture_ratio(None);
        assert!(ch.corrupted(tx, src, receiver, t(10), t(12)));
    }

    #[test]
    fn far_interferer_does_not_corrupt() {
        let mut ch = ChannelState::paper_default();
        ch.set_capture_ratio(None);
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, t(10), t(12));
        // interferer 400 m from the receiver: inaudible there
        ch.begin_tx(NodeId(2), Point2::new(450.0, 0.0), t(11), t(13));
        let receiver = Point2::new(50.0, 0.0);
        assert!(!ch.corrupted(tx, src, receiver, t(10), t(12)));
    }

    #[test]
    fn non_overlapping_interferer_does_not_corrupt() {
        let mut ch = ChannelState::paper_default();
        ch.set_capture_ratio(None);
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, t(10), t(12));
        ch.begin_tx(NodeId(2), Point2::new(10.0, 0.0), t(12), t(14)); // starts when tx ends
        let receiver = Point2::new(50.0, 0.0);
        assert!(!ch.corrupted(tx, src, receiver, t(10), t(12)));
    }

    #[test]
    fn own_transmission_is_not_interference() {
        let mut ch = ChannelState::paper_default();
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, t(10), t(12));
        assert!(!ch.corrupted(tx, src, Point2::new(50.0, 0.0), t(10), t(12)));
    }

    #[test]
    fn gc_drops_finished_transmissions() {
        let mut ch = ChannelState::paper_default();
        ch.begin_tx(NodeId(1), Point2::new(0.0, 0.0), t(10), t(12));
        ch.begin_tx(NodeId(2), Point2::new(0.0, 0.0), t(10), t(20));
        assert_eq!(ch.in_flight(), 2);
        ch.gc_before(t(15));
        assert_eq!(ch.in_flight(), 1);
        ch.gc_before(t(20));
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn reaches_is_inclusive_disc() {
        let ch = ChannelState::paper_default();
        let o = Point2::new(0.0, 0.0);
        assert!(ch.reaches(o, Point2::new(250.0, 0.0)));
        assert!(!ch.reaches(o, Point2::new(250.1, 0.0)));
    }

    #[test]
    fn tx_ids_are_unique() {
        let mut ch = ChannelState::paper_default();
        let a = ch.begin_tx(NodeId(1), Point2::ORIGIN, t(1), t(2));
        let b = ch.begin_tx(NodeId(1), Point2::ORIGIN, t(3), t(4));
        assert_ne!(a, b);
        let _ = SimDuration::ZERO;
    }
}
