//! The unit-disc channel: who hears whom, carrier sensing, collisions.
//!
//! Propagation is the classic ns-2 style disc: a frame from `src` reaches
//! exactly the hosts within `range` meters of the transmitter's position at
//! transmission start (250 m in the evaluation).  The channel keeps the
//! set of in-flight transmissions so the MAC can carrier-sense and so
//! receivers can detect overlapping-interferer collisions.

use crate::frame::NodeId;
use crate::spatial::SpatialIndex;
use geo::Point2;
use sim_engine::SimTime;

/// One transmission on the air.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transmission {
    pub id: u64,
    pub src: NodeId,
    /// Transmitter position at tx start (the disc's center).
    pub origin: Point2,
    /// This transmitter's radio range in meters.  Heterogeneous scenarios
    /// give groups different radios; `ChannelState::range` stays the
    /// *maximum* so the bucket geometry (side == max range) still covers
    /// every audible transmission in a 3x3 neighborhood.
    pub range: f64,
    pub start: SimTime,
    pub end: SimTime,
}

/// Tracks in-flight (and recently-ended) transmissions.
///
/// `gc_before` must be called periodically (the simulator does it on every
/// transmission end) so the active list stays small; queries are linear in
/// the number of live transmissions, which at the paper's offered load is
/// a handful.
#[derive(Clone, Debug, Default)]
pub struct ChannelState {
    active: Vec<Transmission>,
    range: f64,
    next_id: u64,
    /// Capture: an interferer within range only corrupts a reception when
    /// its distance to the receiver is less than `capture_ratio` times the
    /// signal's distance (ns-2's 10 dB capture threshold under two-ray
    /// d⁻⁴ path loss gives 10^(10/40) ≈ 1.778).  `None` = every
    /// overlapping interferer is fatal.
    capture_ratio: Option<f64>,
    /// Optional bucket index over the *indices into `active`*, keyed by
    /// transmission origin with bucket side == range, so carrier-sense and
    /// interference queries visit only the 3×3 neighborhood of the query
    /// point instead of every live transmission.  Both `busy_until` (max)
    /// and `corrupted` (any) are order-insensitive aggregates over an
    /// exactly-filtered candidate set, so results are identical with or
    /// without the index.
    spatial: Option<SpatialIndex>,
}

/// ns-2's default capture threshold (10 dB) under d⁻⁴ path loss.
pub const CAPTURE_RATIO_10DB: f64 = 1.7782794100389228;

/// Live-transmission count at or below which channel queries take the
/// linear scan even when the bucket index is enabled.  Nine bucket headers
/// cost more than a dozen predictable `Transmission` comparisons — at the
/// paper's offered load (a handful of concurrent frames) the index only
/// pays off in the loaded large-N regimes.  Both paths compute identical
/// order-insensitive aggregates, so the switch is invisible to results.
const SPATIAL_LINEAR_CUTOFF: usize = 12;

impl ChannelState {
    pub fn new(range_m: f64) -> Self {
        assert!(range_m > 0.0);
        ChannelState {
            active: Vec::new(),
            range: range_m,
            next_id: 0,
            capture_ratio: Some(CAPTURE_RATIO_10DB),
            spatial: None,
        }
    }

    /// The paper's channel: 250 m nominal range, 10 dB capture.
    pub fn paper_default() -> Self {
        ChannelState::new(250.0)
    }

    /// Turn on bucketed interference queries for a `width × height` field.
    /// Buckets are sized to the radio range so every query is answered
    /// from a 3×3 neighborhood.  Call before the first `begin_tx`.
    pub fn enable_spatial(&mut self, width_m: f64, height_m: f64) {
        assert!(
            self.active.is_empty(),
            "enable_spatial must precede the first transmission"
        );
        self.spatial = Some(SpatialIndex::new(width_m, height_m, self.range));
    }

    /// Is the bucket index active? (diagnostic)
    pub fn spatial_enabled(&self) -> bool {
        self.spatial.is_some()
    }

    /// The bucket index, if enabled *and* worth querying at the current
    /// occupancy (see [`SPATIAL_LINEAR_CUTOFF`]).
    #[inline]
    fn spatial_for_query(&self) -> Option<&SpatialIndex> {
        if self.active.len() <= SPATIAL_LINEAR_CUTOFF {
            return None;
        }
        self.spatial.as_ref()
    }

    /// Disable/enable the capture effect (ablation).
    pub fn set_capture_ratio(&mut self, ratio: Option<f64>) {
        self.capture_ratio = ratio;
    }

    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Register a transmission at this transmitter's `range`; returns its
    /// channel id.  `range` must not exceed the channel's nominal (bucket
    /// sizing) range.
    pub fn begin_tx(&mut self, src: NodeId, origin: Point2, range: f64, start: SimTime, end: SimTime) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.insert_tx(id, src, origin, range, start, end);
        id
    }

    /// Register a transmission under an externally-allocated id.  The
    /// sharded channel (`crate::shard`) mirrors one transmission into
    /// several shard-local channels under a single global id; everyone
    /// else should use [`ChannelState::begin_tx`], which allocates from
    /// this channel's own counter.
    pub fn insert_tx(
        &mut self,
        id: u64,
        src: NodeId,
        origin: Point2,
        range: f64,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(
            range <= self.range + 1e-9,
            "per-tx range {range} exceeds the channel's bucket range {}",
            self.range
        );
        if let Some(sp) = &mut self.spatial {
            sp.insert_at(self.active.len() as u32, origin);
        }
        self.active.push(Transmission {
            id,
            src,
            origin,
            range,
            start,
            end,
        });
    }

    /// Drop transmissions that ended at or before `now` (they can no longer
    /// interfere with anything starting now).
    pub fn gc_before(&mut self, now: SimTime) {
        let before = self.active.len();
        self.active.retain(|t| t.end > now);
        // The bucket index stores positions within `active`, which retain
        // just shifted — rebuild it.  At the paper's offered load only a
        // handful of transmissions are ever live, so this is cheap, and gc
        // runs once per transmission end rather than per query.
        if let Some(sp) = &mut self.spatial {
            if self.active.len() != before {
                sp.clear();
                for (i, t) in self.active.iter().enumerate() {
                    sp.insert_at(i as u32, t.origin);
                }
            }
        }
    }

    /// Carrier sense at position `p` and instant `at`: latest end time of
    /// any transmission in progress whose signal reaches `p`.  `None` means
    /// the medium is sensed idle.
    pub fn busy_until(&self, p: Point2, at: SimTime) -> Option<SimTime> {
        if let Some(sp) = self.spatial_for_query() {
            // Buckets have side == range, so every transmission audible at
            // `p` lives in the 3×3 neighborhood of p's bucket; the exact
            // time/range filter below does the rest.  `max` is
            // order-insensitive, so the result matches the linear scan.
            let (bx, by) = sp.bucket_of(p);
            let mut latest: Option<SimTime> = None;
            sp.for_each_near(bx, by, 1, |i| {
                let t = &self.active[i as usize];
                if t.start <= at && t.end > at && t.origin.within_range(p, t.range) {
                    latest = Some(latest.map_or(t.end, |l| l.max(t.end)));
                }
            });
            return latest;
        }
        self.active
            .iter()
            .filter(|t| t.start <= at && t.end > at && t.origin.within_range(p, t.range))
            .map(|t| t.end)
            .max()
    }

    /// Collision check for a reception at `receiver` spanning
    /// `[start, end)` of transmission `tx_id` sent from `src_origin`:
    /// true if any *other* transmission audible at the receiver overlaps
    /// the interval and is strong enough to defeat capture.
    pub fn corrupted(
        &self,
        tx_id: u64,
        src_origin: Point2,
        receiver: Point2,
        start: SimTime,
        end: SimTime,
    ) -> bool {
        // Both distances are clamped to 1 m — the near-field floor below
        // which d⁻⁴ path loss is meaningless.  The clamp is symmetric so
        // the co-located tie-break is deterministic: signal and interferer
        // both on top of the receiver give d_int == d_sig == 1, and since
        // any physical capture ratio is > 1, `1 < ratio · 1` holds — the
        // reception is corrupted.  Capture never resolves a dead heat.
        let d_sig = src_origin.distance(receiver).max(1.0);
        let hit = |t: &Transmission| {
            if t.id == tx_id || t.start >= end || t.end <= start {
                return false;
            }
            if !t.origin.within_range(receiver, t.range) {
                return false;
            }
            match self.capture_ratio {
                // interferer farther than ratio·d_sig is ≥10 dB weaker:
                // the receiver captures the intended frame
                Some(ratio) => t.origin.distance(receiver).max(1.0) < ratio * d_sig,
                None => true,
            }
        };
        if let Some(sp) = self.spatial_for_query() {
            // Only transmissions audible at the receiver can corrupt it,
            // and those all sit in the receiver's 3×3 bucket neighborhood
            // (bucket side == range).  `any` is order-insensitive.
            let (bx, by) = sp.bucket_of(receiver);
            let mut found = false;
            sp.for_each_near(bx, by, 1, |i| {
                found = found || hit(&self.active[i as usize]);
            });
            return found;
        }
        self.active.iter().any(hit)
    }

    /// All node positions within range of `origin` — the delivery set of a
    /// transmission (the caller filters by radio mode).
    pub fn reaches(&self, origin: Point2, p: Point2) -> bool {
        origin.within_range(p, self.range)
    }

    /// Number of in-flight transmissions (diagnostic).
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn carrier_sense_within_range_only() {
        let mut ch = ChannelState::paper_default();
        ch.begin_tx(NodeId(1), Point2::new(0.0, 0.0), 250.0, t(10), t(12));
        // 100 m away: busy
        assert_eq!(ch.busy_until(Point2::new(100.0, 0.0), t(11)), Some(t(12)));
        // 300 m away: idle
        assert_eq!(ch.busy_until(Point2::new(300.0, 0.0), t(11)), None);
        // before it starts / after it ends: idle
        assert_eq!(ch.busy_until(Point2::new(100.0, 0.0), t(9)), None);
        assert_eq!(ch.busy_until(Point2::new(100.0, 0.0), t(12)), None);
    }

    #[test]
    fn busy_until_takes_latest_end() {
        let mut ch = ChannelState::paper_default();
        ch.begin_tx(NodeId(1), Point2::new(0.0, 0.0), 250.0, t(10), t(12));
        ch.begin_tx(NodeId(2), Point2::new(50.0, 0.0), 250.0, t(10), t(15));
        assert_eq!(ch.busy_until(Point2::new(10.0, 0.0), t(11)), Some(t(15)));
    }

    #[test]
    fn overlapping_comparable_interferer_corrupts() {
        let mut ch = ChannelState::paper_default();
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, 250.0, t(10), t(12));
        // interferer equidistant from the receiver: no capture possible
        ch.begin_tx(NodeId(2), Point2::new(100.0, 0.0), 250.0, t(11), t(13));
        let receiver = Point2::new(50.0, 0.0);
        assert!(ch.corrupted(tx, src, receiver, t(10), t(12)));
    }

    #[test]
    fn strong_signal_captures_over_weak_interferer() {
        let mut ch = ChannelState::paper_default();
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, 250.0, t(10), t(12));
        // receiver 50 m from the source, interferer 200 m away: 4x the
        // distance => far beyond the 10 dB capture threshold
        ch.begin_tx(NodeId(2), Point2::new(250.0, 0.0), 250.0, t(11), t(13));
        let receiver = Point2::new(50.0, 0.0);
        assert!(!ch.corrupted(tx, src, receiver, t(10), t(12)));
        // without capture the same interferer is fatal
        ch.set_capture_ratio(None);
        assert!(ch.corrupted(tx, src, receiver, t(10), t(12)));
    }

    #[test]
    fn far_interferer_does_not_corrupt() {
        let mut ch = ChannelState::paper_default();
        ch.set_capture_ratio(None);
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, 250.0, t(10), t(12));
        // interferer 400 m from the receiver: inaudible there
        ch.begin_tx(NodeId(2), Point2::new(450.0, 0.0), 250.0, t(11), t(13));
        let receiver = Point2::new(50.0, 0.0);
        assert!(!ch.corrupted(tx, src, receiver, t(10), t(12)));
    }

    #[test]
    fn non_overlapping_interferer_does_not_corrupt() {
        let mut ch = ChannelState::paper_default();
        ch.set_capture_ratio(None);
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, 250.0, t(10), t(12));
        ch.begin_tx(NodeId(2), Point2::new(10.0, 0.0), 250.0, t(12), t(14)); // starts when tx ends
        let receiver = Point2::new(50.0, 0.0);
        assert!(!ch.corrupted(tx, src, receiver, t(10), t(12)));
    }

    #[test]
    fn own_transmission_is_not_interference() {
        let mut ch = ChannelState::paper_default();
        let src = Point2::new(0.0, 0.0);
        let tx = ch.begin_tx(NodeId(1), src, 250.0, t(10), t(12));
        assert!(!ch.corrupted(tx, src, Point2::new(50.0, 0.0), t(10), t(12)));
    }

    #[test]
    fn gc_drops_finished_transmissions() {
        let mut ch = ChannelState::paper_default();
        ch.begin_tx(NodeId(1), Point2::new(0.0, 0.0), 250.0, t(10), t(12));
        ch.begin_tx(NodeId(2), Point2::new(0.0, 0.0), 250.0, t(10), t(20));
        assert_eq!(ch.in_flight(), 2);
        ch.gc_before(t(15));
        assert_eq!(ch.in_flight(), 1);
        ch.gc_before(t(20));
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn reaches_is_inclusive_disc() {
        let ch = ChannelState::paper_default();
        let o = Point2::new(0.0, 0.0);
        assert!(ch.reaches(o, Point2::new(250.0, 0.0)));
        assert!(!ch.reaches(o, Point2::new(250.1, 0.0)));
    }

    #[test]
    fn tx_ids_are_unique() {
        let mut ch = ChannelState::paper_default();
        let a = ch.begin_tx(NodeId(1), Point2::ORIGIN, 250.0, t(1), t(2));
        let b = ch.begin_tx(NodeId(1), Point2::ORIGIN, 250.0, t(3), t(4));
        assert_ne!(a, b);
        let _ = SimDuration::ZERO;
    }

    // --- heterogeneous per-transmission ranges ----------------------------

    #[test]
    fn short_range_tx_is_inaudible_beyond_its_own_disc() {
        // channel sized for 250 m radios, but this transmitter only has a
        // 100 m one: carrier sense and interference both use ITS disc
        let mut ch = ChannelState::paper_default();
        let tx = ch.begin_tx(NodeId(1), Point2::new(0.0, 0.0), 100.0, t(10), t(12));
        assert_eq!(ch.busy_until(Point2::new(90.0, 0.0), t(11)), Some(t(12)));
        assert_eq!(ch.busy_until(Point2::new(150.0, 0.0), t(11)), None);
        // a second short-range tx 150 m from the receiver cannot corrupt
        ch.set_capture_ratio(None);
        ch.begin_tx(NodeId(2), Point2::new(240.0, 0.0), 100.0, t(11), t(13));
        assert!(!ch.corrupted(tx, Point2::new(0.0, 0.0), Point2::new(90.0, 0.0), t(10), t(12)));
        // while a full-range interferer at the same spot is fatal
        ch.begin_tx(NodeId(3), Point2::new(240.0, 0.0), 250.0, t(11), t(13));
        assert!(ch.corrupted(tx, Point2::new(0.0, 0.0), Point2::new(90.0, 0.0), t(10), t(12)));
    }

    #[test]
    fn mixed_ranges_agree_between_linear_and_bucketed_queries() {
        let mut seed = 0xbeef_u64;
        let mut plain = ChannelState::paper_default();
        let mut fast = ChannelState::paper_default();
        fast.enable_spatial(1000.0, 1000.0);
        let ranges = [60.0, 120.0, 250.0];
        for i in 0..30u64 {
            let o = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
            let r = ranges[(lcg(&mut seed) * 3.0) as usize % 3];
            plain.begin_tx(NodeId(i as u32), o, r, t(10), t(40));
            fast.begin_tx(NodeId(i as u32), o, r, t(10), t(40));
        }
        for _ in 0..200 {
            let p = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
            assert_eq!(plain.busy_until(p, t(20)), fast.busy_until(p, t(20)));
        }
    }

    // --- capture near-field clamp regression -----------------------------

    #[test]
    fn colocated_signal_and_interferer_tie_breaks_to_corrupted() {
        // Signal source, interferer, and receiver all at the same point:
        // both distances clamp to the 1 m near-field floor, so neither
        // side can capture and the reception is deterministically lost.
        let mut ch = ChannelState::paper_default();
        let p = Point2::new(400.0, 400.0);
        let tx = ch.begin_tx(NodeId(1), p, 250.0, t(10), t(12));
        ch.begin_tx(NodeId(2), p, 250.0, t(11), t(13));
        assert!(ch.corrupted(tx, p, p, t(10), t(12)));
    }

    #[test]
    fn near_field_interferer_clamp_is_symmetric() {
        // Interferer 0.2 m from the receiver, signal 0.5 m away: inside
        // the near field the clamp makes them equals (1 m vs 1 m), so the
        // outcome must not depend on sub-meter jitter — corrupted, same
        // as the co-located tie-break.
        let mut ch = ChannelState::paper_default();
        let src = Point2::new(100.0, 100.5);
        let recv = Point2::new(100.0, 100.0);
        let tx = ch.begin_tx(NodeId(1), src, 250.0, t(10), t(12));
        ch.begin_tx(NodeId(2), Point2::new(100.2, 100.0), 250.0, t(11), t(13));
        assert!(ch.corrupted(tx, src, recv, t(10), t(12)));
        // ...while a genuinely distant interferer still loses to capture.
        let mut ch2 = ChannelState::paper_default();
        let tx2 = ch2.begin_tx(NodeId(1), src, 250.0, t(10), t(12));
        ch2.begin_tx(NodeId(2), Point2::new(150.0, 100.0), 250.0, t(11), t(13));
        assert!(!ch2.corrupted(tx2, src, recv, t(10), t(12)));
    }

    // --- bucketed-query equivalence --------------------------------------

    /// Deterministic little congruential generator for the fuzz below (no
    /// external RNG needed, and the sequence is pinned).
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn low_occupancy_cutoff_is_invisible_across_the_boundary() {
        // Add transmissions one at a time straddling the linear-scan
        // cutoff; plain and bucketed channels must agree at every step,
        // including the exact population where the query path flips.
        let mut seed = 0xface0ff_u64;
        let mut plain = ChannelState::paper_default();
        let mut fast = ChannelState::paper_default();
        fast.enable_spatial(1000.0, 1000.0);
        for i in 0..(SPATIAL_LINEAR_CUTOFF as u64 + 5) {
            let o = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
            let (s, e) = (t(10), t(40));
            plain.begin_tx(NodeId(i as u32), o, 250.0, s, e);
            fast.begin_tx(NodeId(i as u32), o, 250.0, s, e);
            for _ in 0..10 {
                let p = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
                assert_eq!(
                    plain.busy_until(p, t(20)),
                    fast.busy_until(p, t(20)),
                    "diverged at occupancy {}",
                    plain.in_flight()
                );
            }
        }
    }

    #[test]
    fn spatial_channel_matches_linear_scan() {
        let mut seed = 0x5eed_cafe_u64;
        for round in 0..20 {
            let mut plain = ChannelState::paper_default();
            let mut fast = ChannelState::paper_default();
            fast.enable_spatial(1000.0, 1000.0);
            let mut txs = Vec::new();
            for i in 0..30u64 {
                let o = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
                let s_ms = 10 + (lcg(&mut seed) * 20.0) as u64;
                let s = t(s_ms);
                let e = t(s_ms + 1 + (lcg(&mut seed) * 5.0) as u64);
                let a = plain.begin_tx(NodeId(i as u32), o, 250.0, s, e);
                let b = fast.begin_tx(NodeId(i as u32), o, 250.0, s, e);
                assert_eq!(a, b);
                txs.push((a, o, s, e));
            }
            if round % 2 == 1 {
                plain.gc_before(t(20));
                fast.gc_before(t(20));
                assert_eq!(plain.in_flight(), fast.in_flight());
            }
            for _ in 0..50 {
                let p = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
                let at = t(10 + (lcg(&mut seed) * 25.0) as u64);
                assert_eq!(plain.busy_until(p, at), fast.busy_until(p, at));
                let &(id, o, s, e) = &txs[(lcg(&mut seed) * txs.len() as f64) as usize];
                assert_eq!(
                    plain.corrupted(id, o, p, s, e),
                    fast.corrupted(id, o, p, s, e),
                    "corrupted diverged at receiver {p:?}"
                );
            }
        }
    }
}
