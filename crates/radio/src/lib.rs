//! The wireless substrate: frames, channel, MAC timing, and the RAS
//! paging hardware.
//!
//! The paper's testbed is ns-2's CMU wireless extension — an 802.11 DS
//! radio at 2 Mbps with a 250 m nominal range.  This crate provides the
//! equivalent building blocks:
//!
//! * [`NodeId`] and the [`Frame`] model with realistic wire sizes, so
//!   serialization delays (and therefore energy and latency) are faithful;
//! * [`ChannelState`] — a unit-disc channel tracking in-flight
//!   transmissions for carrier sensing and receiver-side collision
//!   detection;
//! * [`MacConfig`] — 802.11-style timing (SIFS/DIFS/slot, contention
//!   window, retry limits) used by the simulator's CSMA/CA loop;
//! * [`ras`] — the Remotely Activated Switch: an out-of-band paging
//!   receiver that wakes sleeping hosts by host-id ("paging sequence") or
//!   by grid coordinate ("broadcast sequence"), per §2 and Fig. 1;
//! * [`SpatialIndex`] — a grid-bucket index over positions so receiver
//!   discovery and interference queries touch a constant-size bucket
//!   neighborhood instead of every node/transmission.

pub mod channel;
pub mod frame;
pub mod mac;
pub mod ras;
pub mod shard;
pub mod spatial;

pub use channel::{ChannelState, Transmission};
pub use frame::{FrameKind, FrameMeta, NodeId};
pub use mac::MacConfig;
pub use ras::{PageSignal, RasConfig};
pub use shard::{ShardMap, ShardedChannel};
pub use spatial::{auto_gather_threshold, GatherFallback, NeighborIndex, SpatialIndex};
