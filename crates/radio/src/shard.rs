//! Sharded channel: per-shard in-flight sets with boundary mirrors.
//!
//! `--parallel-world` partitions the field into K contiguous vertical
//! strips of whole logical grid-cell columns ([`ShardMap`]).  Each shard
//! owns a [`ChannelState`] holding exactly the transmissions *audible
//! inside its strip*: a transmission is inserted into its home shard and
//! mirrored into every other shard whose strip lies within
//! `range + cell_side` of the origin.  Shard-local carrier-sense and
//! interference queries then see every transmission the global channel
//! would have shown them — and nothing they could ever report differently,
//! because `busy_until` (max) and `corrupted` (any) filter candidates by
//! exact distance anyway.  Extra mirrored entries that are *inaudible* at
//! the query point are filtered out identically on both paths.
//!
//! The slack of one grid-cell side covers every way a query can be issued
//! "from" a shard at a point marginally outside its strip: queries are
//! routed by the querying host's *logical cell* (updated at cell-crossing
//! events), and between the crossing instant and its +1 µs reschedule
//! guard a host's position can drift only microns past the cell edge —
//! six orders of magnitude inside the 100 m slack.
//!
//! Transmission ids come from one global counter so id allocation order —
//! which feeds the fault layer's per-frame loss draws — is identical to
//! the serial channel's.

use crate::channel::ChannelState;
use crate::frame::NodeId;
use geo::Point2;
use sim_engine::SimTime;

/// Partition of grid-cell columns into K contiguous vertical strips.
///
/// Balanced split: with `cols` columns, every shard gets `cols / K`
/// columns and the first `cols % K` shards one extra.  Shards beyond the
/// column count (K > cols) own zero columns and simply stay empty.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// Column -> shard lookup, one entry per grid-cell column.
    col_shard: Vec<u16>,
    /// Per-shard strip extent in meters: closed interval `[x0, x1]`.
    strips: Vec<(f64, f64)>,
    cell_side: f64,
}

impl ShardMap {
    /// Build a map for a field `width_m` wide with `cols` grid-cell
    /// columns of side `cell_side` meters, split into `k` strips.
    pub fn new(cols: usize, cell_side: f64, width_m: f64, k: usize) -> Self {
        assert!(k >= 1, "a shard map needs at least one shard");
        assert!(cols >= 1 && cell_side > 0.0);
        let base = cols / k;
        let extra = cols % k;
        let mut col_shard = Vec::with_capacity(cols);
        let mut strips = Vec::with_capacity(k);
        let mut col = 0usize;
        for s in 0..k {
            let take = base + usize::from(s < extra);
            let x0 = col as f64 * cell_side;
            for _ in 0..take {
                col_shard.push(s as u16);
                col += 1;
            }
            // an empty strip gets a degenerate interval no point is near
            let x1 = if take == 0 {
                f64::NEG_INFINITY
            } else {
                (col as f64 * cell_side).min(width_m.max(x0))
            };
            let x0 = if take == 0 { f64::INFINITY } else { x0 };
            strips.push((x0, x1));
        }
        debug_assert_eq!(col, cols);
        ShardMap {
            col_shard,
            strips,
            cell_side,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.strips.len()
    }

    /// Shard owning grid-cell column `cx` (clamped to the field, matching
    /// `GridMap::cell_of`'s edge clamp).
    #[inline]
    pub fn shard_of_col(&self, cx: i32) -> usize {
        let cx = (cx.max(0) as usize).min(self.col_shard.len() - 1);
        self.col_shard[cx] as usize
    }

    /// Horizontal distance from `x` to shard `s`'s strip (0 inside it).
    #[inline]
    fn dist_to_strip(&self, s: usize, x: f64) -> f64 {
        let (x0, x1) = self.strips[s];
        (x0 - x).max(x - x1).max(0.0)
    }

    /// Visit every shard whose strip lies within `limit` meters of `p.x`
    /// (strips are vertical, so only x matters).
    #[inline]
    pub fn for_each_in_reach(&self, p: Point2, limit: f64, mut f: impl FnMut(usize)) {
        for s in 0..self.strips.len() {
            if self.dist_to_strip(s, p.x) <= limit {
                f(s);
            }
        }
    }

    /// The grid-cell side the strips are built from.
    #[inline]
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }
}

/// K shard-local [`ChannelState`]s behind one global transmission-id
/// counter, with boundary transmissions mirrored per the module docs.
#[derive(Clone, Debug)]
pub struct ShardedChannel {
    shards: Vec<ChannelState>,
    map: ShardMap,
    next_id: u64,
    /// Mirror predicate radius: `range + cell_side` (see module docs).
    mirror_limit: f64,
    /// Lifetime count of mirror insertions (diagnostic).
    mirrored: u64,
}

impl ShardedChannel {
    pub fn new(range_m: f64, map: ShardMap) -> Self {
        let mirror_limit = range_m + map.cell_side();
        ShardedChannel {
            shards: (0..map.shard_count())
                .map(|_| ChannelState::new(range_m))
                .collect(),
            map,
            next_id: 0,
            mirror_limit,
            mirrored: 0,
        }
    }

    /// Turn on bucketed interference queries in every shard channel.
    /// Call before the first `begin_tx`.
    pub fn enable_spatial(&mut self, width_m: f64, height_m: f64) {
        for ch in &mut self.shards {
            ch.enable_spatial(width_m, height_m);
        }
    }

    /// Set the capture ratio on every shard channel.
    pub fn set_capture_ratio(&mut self, ratio: Option<f64>) {
        for ch in &mut self.shards {
            ch.set_capture_ratio(ratio);
        }
    }

    #[inline]
    pub fn range(&self) -> f64 {
        self.shards[0].range()
    }

    /// The shard partition.
    #[inline]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Register a transmission homed on `home`, mirroring it into every
    /// shard whose strip its signal (plus slack) can touch.  Ids come
    /// from the global counter, so allocation order matches the serial
    /// channel's.
    /// `range` is the *transmitter's* radio range (heterogeneous fleets
    /// carry per-host radios); the mirror predicate still uses the channel
    /// maximum plus slack, which over-approximates shorter radios — extra
    /// mirrors are inaudible at any query point and filter out identically
    /// on both paths.
    pub fn begin_tx(
        &mut self,
        home: usize,
        src: NodeId,
        origin: Point2,
        range: f64,
        start: SimTime,
        end: SimTime,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.shards[home].insert_tx(id, src, origin, range, start, end);
        let mut mirrored = 0u64;
        let limit = self.mirror_limit;
        // split borrows: the map is read-only while shards mutate
        let ShardedChannel { shards, map, .. } = self;
        map.for_each_in_reach(origin, limit, |s| {
            if s != home {
                shards[s].insert_tx(id, src, origin, range, start, end);
                mirrored += 1;
            }
        });
        self.mirrored += mirrored;
        id
    }

    /// Carrier sense inside shard `s` (see [`ChannelState::busy_until`]).
    #[inline]
    pub fn busy_until(&self, s: usize, p: Point2, at: SimTime) -> Option<SimTime> {
        self.shards[s].busy_until(p, at)
    }

    /// Collision check inside shard `s` (see [`ChannelState::corrupted`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn corrupted(
        &self,
        s: usize,
        tx_id: u64,
        src_origin: Point2,
        receiver: Point2,
        start: SimTime,
        end: SimTime,
    ) -> bool {
        self.shards[s].corrupted(tx_id, src_origin, receiver, start, end)
    }

    /// Unit-disc reachability (geometric, shard-free).
    #[inline]
    pub fn reaches(&self, origin: Point2, p: Point2) -> bool {
        self.shards[0].reaches(origin, p)
    }

    /// Drop transmissions ended at or before `now` from every shard —
    /// the epoch-barrier maintenance step.  Retention is harmless for
    /// correctness (`busy_until`/`corrupted` filter by time), so this can
    /// run far less often than the serial channel's per-event gc.
    pub fn gc_before(&mut self, now: SimTime) {
        for ch in &mut self.shards {
            ch.gc_before(now);
        }
    }

    /// In-flight entries summed over shards (mirrors counted once per
    /// shard they sit in; diagnostic).
    pub fn in_flight_total(&self) -> usize {
        self.shards.iter().map(|c| c.in_flight()).sum()
    }

    /// Lifetime mirror insertions (diagnostic).
    pub fn mirrored(&self) -> u64 {
        self.mirrored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Deterministic LCG, same shape as the channel tests'.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn strips_are_balanced_and_cover_every_column() {
        let m = ShardMap::new(10, 100.0, 1000.0, 7);
        let mut counts = vec![0usize; 7];
        for cx in 0..10 {
            counts[m.shard_of_col(cx)] += 1;
        }
        assert_eq!(counts, vec![2, 2, 2, 1, 1, 1, 1]);
        // shard ids are non-decreasing left to right (contiguous strips)
        let shards: Vec<usize> = (0..10).map(|c| m.shard_of_col(c)).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted);
        // out-of-field columns clamp like GridMap::cell_of does
        assert_eq!(m.shard_of_col(-3), 0);
        assert_eq!(m.shard_of_col(99), 6);
    }

    #[test]
    fn more_shards_than_columns_leaves_the_tail_empty() {
        let m = ShardMap::new(3, 100.0, 300.0, 5);
        assert_eq!(m.shard_count(), 5);
        let owners: Vec<usize> = (0..3).map(|c| m.shard_of_col(c)).collect();
        assert_eq!(owners, vec![0, 1, 2]);
        // empty strips are never "in reach"
        let mut hit = Vec::new();
        m.for_each_in_reach(Point2::new(150.0, 0.0), 1e9, |s| hit.push(s));
        assert_eq!(hit, vec![0, 1, 2]);
    }

    #[test]
    fn boundary_transmission_is_audible_on_both_sides() {
        // Transmitter exactly on the strip edge between shards 1 and 2
        // (x = 500 with a 250 m range): carrier sense and collision
        // checks from either side must see it.
        let map = ShardMap::new(10, 100.0, 1000.0, 2);
        let mut ch = ShardedChannel::new(250.0, map);
        let edge = Point2::new(500.0, 300.0);
        let home = ch.map().shard_of_col(5); // cell column of x=500
        let id = ch.begin_tx(home, NodeId(7), edge, 250.0, t(10), t(12));
        assert!(ch.mirrored() >= 1, "edge transmission must mirror");
        for s in 0..2 {
            let near = Point2::new(if s == 0 { 450.0 } else { 550.0 }, 300.0);
            assert_eq!(ch.busy_until(s, near, t(11)), Some(t(12)), "shard {s}");
            assert!(
                ch.corrupted(s, 999, Point2::new(800.0, 800.0), near, t(10), t(12)),
                "shard {s} must see the boundary interferer"
            );
            let _ = id;
        }
    }

    #[test]
    fn far_interior_transmission_is_not_mirrored() {
        let map = ShardMap::new(20, 100.0, 2000.0, 4);
        let mut ch = ShardedChannel::new(250.0, map);
        // deep inside shard 0's strip [0, 500): nothing within 350 m of
        // any other strip
        let home = ch.map().shard_of_col(0);
        ch.begin_tx(home, NodeId(1), Point2::new(50.0, 50.0), 250.0, t(10), t(12));
        assert_eq!(ch.mirrored(), 0);
        assert_eq!(ch.in_flight_total(), 1);
    }

    #[test]
    fn global_ids_match_a_serial_channel() {
        let map = ShardMap::new(10, 100.0, 1000.0, 4);
        let mut sharded = ShardedChannel::new(250.0, map);
        let mut serial = ChannelState::new(250.0);
        let mut seed = 0x1dea_u64;
        for i in 0..50u32 {
            let o = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
            let home = sharded.map().shard_of_col((o.x / 100.0) as i32);
            let a = sharded.begin_tx(home, NodeId(i), o, 250.0, t(10), t(20));
            let b = serial.begin_tx(NodeId(i), o, 250.0, t(10), t(20));
            assert_eq!(a, b, "id allocation order must match the serial channel");
        }
    }

    #[test]
    fn sharded_queries_match_the_global_channel_exactly() {
        // The strong equivalence fuzz: random transmissions and random
        // queries, each query issued from the shard of the query point's
        // own cell column — answers must equal a single global channel's,
        // including with per-shard spatial indexes on and interleaved gc.
        let mut seed = 0xb0a_d1ce_u64;
        for &k in &[1usize, 2, 4, 7] {
            let map = ShardMap::new(10, 100.0, 1000.0, k);
            let mut sharded = ShardedChannel::new(250.0, map);
            sharded.enable_spatial(1000.0, 1000.0);
            let mut global = ChannelState::new(250.0);
            let mut txs = Vec::new();
            for i in 0..40u32 {
                let o = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
                let s_ms = 10 + (lcg(&mut seed) * 20.0) as u64;
                let (s, e) = (t(s_ms), t(s_ms + 1 + (lcg(&mut seed) * 5.0) as u64));
                let home = sharded.map().shard_of_col((o.x / 100.0) as i32);
                let a = sharded.begin_tx(home, NodeId(i), o, 250.0, s, e);
                let b = global.begin_tx(NodeId(i), o, 250.0, s, e);
                assert_eq!(a, b);
                txs.push((a, o, s, e));
                if i % 13 == 12 {
                    sharded.gc_before(t(15));
                    global.gc_before(t(15));
                }
            }
            for _ in 0..200 {
                let p = Point2::new(lcg(&mut seed) * 1000.0, lcg(&mut seed) * 1000.0);
                let qs = sharded.map().shard_of_col((p.x / 100.0) as i32);
                let at = t(10 + (lcg(&mut seed) * 25.0) as u64);
                assert_eq!(
                    sharded.busy_until(qs, p, at),
                    global.busy_until(p, at),
                    "k={k}: carrier sense diverged at {p:?}"
                );
                let &(id, o, s, e) = &txs[(lcg(&mut seed) * txs.len() as f64) as usize];
                assert_eq!(
                    sharded.corrupted(qs, id, o, p, s, e),
                    global.corrupted(id, o, p, s, e),
                    "k={k}: collision check diverged at {p:?}"
                );
            }
        }
    }
}
