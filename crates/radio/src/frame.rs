//! Node identity and the on-air frame model.

use std::fmt;

/// A host's unique identifier ("IP address or MAC address" in the paper).
/// Also serves as the host's RAS paging sequence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Link-layer addressing of a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Addressed to one receiver; acknowledged and retransmitted by the MAC.
    Unicast(NodeId),
    /// Delivered to every awake host in range; never acknowledged.
    Broadcast,
}

impl FrameKind {
    #[inline]
    pub fn is_broadcast(self) -> bool {
        matches!(self, FrameKind::Broadcast)
    }

    /// The unicast destination, if any.
    #[inline]
    pub fn dst(self) -> Option<NodeId> {
        match self {
            FrameKind::Unicast(d) => Some(d),
            FrameKind::Broadcast => None,
        }
    }
}

/// Link-layer metadata of a frame in flight.  The protocol payload itself
/// is generic and owned by the simulation layer; the radio only needs
/// what's on the wire header and how many bytes ride behind it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameMeta {
    pub src: NodeId,
    pub kind: FrameKind,
    /// Payload bytes above the MAC (protocol message or data packet).
    pub payload_bytes: u32,
}

/// MAC + PHY framing overhead added to every frame, in bytes.
/// 24 B 802.11 MAC header + 4 B FCS + PLCP preamble/header equivalent
/// (192 µs at 1 Mbps ≈ 24 B at 2 Mbps).
pub const MAC_OVERHEAD_BYTES: u32 = 52;

/// Size of an 802.11 ACK control frame including PHY overhead, bytes.
pub const ACK_BYTES: u32 = 38;

impl FrameMeta {
    /// Total bytes on the air for this frame.
    #[inline]
    pub fn wire_bytes(&self) -> u32 {
        self.payload_bytes + MAC_OVERHEAD_BYTES
    }

    #[inline]
    pub fn wire_bits(&self) -> u64 {
        self.wire_bytes() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ordering_supports_smallest_id_election() {
        // election rule 3: smallest ID wins
        let mut ids = [NodeId(9), NodeId(2), NodeId(5)];
        ids.sort();
        assert_eq!(ids[0], NodeId(2));
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn frame_kinds() {
        assert!(FrameKind::Broadcast.is_broadcast());
        assert!(!FrameKind::Unicast(NodeId(1)).is_broadcast());
        assert_eq!(FrameKind::Unicast(NodeId(7)).dst(), Some(NodeId(7)));
        assert_eq!(FrameKind::Broadcast.dst(), None);
    }

    #[test]
    fn wire_size_includes_overhead() {
        let f = FrameMeta {
            src: NodeId(0),
            kind: FrameKind::Broadcast,
            payload_bytes: 512,
        };
        assert_eq!(f.wire_bytes(), 564);
        assert_eq!(f.wire_bits(), 4512);
    }

    #[test]
    fn data_packet_airtime_at_2mbps_is_about_2ms() {
        let f = FrameMeta {
            src: NodeId(0),
            kind: FrameKind::Broadcast,
            payload_bytes: 512,
        };
        let t = sim_engine::SimDuration::for_bits(f.wire_bits(), 2_000_000);
        let ms = t.as_millis_f64();
        assert!((2.2..2.3).contains(&ms), "airtime {ms} ms");
    }
}
