//! 802.11-style MAC timing and contention parameters.
//!
//! The simulator's transmit loop implements CSMA/CA with binary
//! exponential backoff using these constants; this module owns the timing
//! arithmetic so the protocol-visible behaviour (latency floor per hop,
//! ACK turnaround, retry budget) is centralized and testable.

use crate::frame::{FrameMeta, ACK_BYTES};
use sim_engine::SimDuration;

/// MAC configuration.  Defaults follow 802.11 DSSS at 2 Mbps — the
/// Cabletron Roamabout card the paper's energy model was measured on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MacConfig {
    /// Channel bit rate (2 Mbps in the paper).
    pub bandwidth_bps: u64,
    /// Short interframe space (ACK turnaround).
    pub sifs: SimDuration,
    /// Distributed interframe space (sensed-idle wait before tx).
    pub difs: SimDuration,
    /// Backoff slot length.
    pub slot: SimDuration,
    /// Minimum contention window (slots), power of two minus one.
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Unicast retransmission budget before the frame is dropped.
    pub max_retries: u32,
    /// Extra wait for an ACK beyond the ACK airtime before declaring loss.
    pub ack_timeout_guard: SimDuration,
}

impl MacConfig {
    /// 802.11 DSSS timing at 2 Mbps.
    pub fn paper_default() -> Self {
        MacConfig {
            bandwidth_bps: 2_000_000,
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            slot: SimDuration::from_micros(20),
            cw_min: 31,
            cw_max: 1023,
            max_retries: 5,
            ack_timeout_guard: SimDuration::from_micros(60),
        }
    }

    /// Airtime of a frame at the configured bit rate.
    #[inline]
    pub fn airtime(&self, frame: &FrameMeta) -> SimDuration {
        SimDuration::for_bits(frame.wire_bits(), self.bandwidth_bps)
    }

    /// Airtime of an ACK control frame.
    #[inline]
    pub fn ack_airtime(&self) -> SimDuration {
        SimDuration::for_bits(ACK_BYTES as u64 * 8, self.bandwidth_bps)
    }

    /// How long a unicast sender waits after its frame ends before giving
    /// up on the ACK: SIFS + ACK airtime + guard.
    #[inline]
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.ack_airtime() + self.ack_timeout_guard
    }

    /// Contention window for the given retry attempt (0 = first try):
    /// binary exponential growth capped at `cw_max`.
    #[inline]
    pub fn cw_for_attempt(&self, attempt: u32) -> u32 {
        let grown = ((self.cw_min as u64 + 1) << attempt.min(16)) - 1;
        grown.min(self.cw_max as u64) as u32
    }

    /// Backoff duration for `slots` slots.
    #[inline]
    pub fn backoff(&self, slots: u32) -> SimDuration {
        self.slot * slots as u64
    }

    /// The minimum per-hop latency of a unicast data frame (idle channel,
    /// zero backoff draw): DIFS + airtime (+ propagation, which is ns-scale
    /// and folded into the guard).
    pub fn min_hop_latency(&self, frame: &FrameMeta) -> SimDuration {
        self.difs + self.airtime(frame)
    }
}

impl Default for MacConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameKind, NodeId};

    fn data_frame() -> FrameMeta {
        FrameMeta {
            src: NodeId(0),
            kind: FrameKind::Unicast(NodeId(1)),
            payload_bytes: 512,
        }
    }

    #[test]
    fn airtime_of_512b_data() {
        let mac = MacConfig::paper_default();
        let t = mac.airtime(&data_frame()).as_millis_f64();
        assert!((2.2..2.3).contains(&t), "{t} ms");
    }

    #[test]
    fn per_hop_latency_floor_matches_paper_scale() {
        // paper reports 7.1–12.5 ms end-to-end over a few grid hops;
        // a single hop must be ~2.3 ms
        let mac = MacConfig::paper_default();
        let hop = mac.min_hop_latency(&data_frame()).as_millis_f64();
        assert!((2.2..2.5).contains(&hop), "{hop} ms");
        // 4 hops ≈ 9.3 ms — inside the paper's reported band
        assert!((7.0..13.0).contains(&(4.0 * hop)));
    }

    #[test]
    fn contention_window_grows_exponentially_and_caps() {
        let mac = MacConfig::paper_default();
        assert_eq!(mac.cw_for_attempt(0), 31);
        assert_eq!(mac.cw_for_attempt(1), 63);
        assert_eq!(mac.cw_for_attempt(2), 127);
        assert_eq!(mac.cw_for_attempt(5), 1023);
        assert_eq!(mac.cw_for_attempt(30), 1023);
    }

    #[test]
    fn ack_timing() {
        let mac = MacConfig::paper_default();
        let ack = mac.ack_airtime();
        assert!(ack.as_nanos() > 0);
        assert_eq!(mac.ack_timeout(), mac.sifs + ack + mac.ack_timeout_guard);
    }

    #[test]
    fn backoff_scales_with_slots() {
        let mac = MacConfig::paper_default();
        assert_eq!(mac.backoff(0), SimDuration::ZERO);
        assert_eq!(mac.backoff(10), SimDuration::from_micros(200));
    }
}
