//! The Remotely Activated Switch (RAS) — Fig. 1 of the paper.
//!
//! Every host carries a low-power RF-tag paging receiver that stays on
//! even while the main transceiver sleeps.  A gateway wakes:
//!
//! * one host by sending its **paging sequence** (the host's unique id);
//! * every host in its grid by sending the grid's **broadcast sequence**
//!   (the grid coordinate) — used before elections and RETIREs.
//!
//! The paper ignores RAS energy ("much lower than the transmitting/
//! receiving power consumption"); we keep that idealization but expose the
//! wake latency as a parameter so its impact can be measured (see the
//! `ablation_ras` bench).

use crate::frame::NodeId;
use geo::GridCoord;
use sim_engine::SimDuration;

/// A paging transmission on the RAS out-of-band channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageSignal {
    /// The paging sequence of one host: wakes exactly that host.
    Host(NodeId),
    /// The broadcast sequence of a grid: wakes every sleeping host located
    /// in that grid.
    Grid(GridCoord),
}

impl PageSignal {
    /// Does this signal address the given host (located in `cell`)?
    #[inline]
    pub fn addresses(&self, host: NodeId, cell: GridCoord) -> bool {
        match self {
            PageSignal::Host(id) => *id == host,
            PageSignal::Grid(g) => *g == cell,
        }
    }
}

/// RAS channel parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RasConfig {
    /// Delay between the page being sent and the target's transceiver
    /// being up (paging decode + radio power-up).
    pub wake_latency: SimDuration,
    /// Paging reach in meters.  The gateway only ever pages hosts in its
    /// own grid, which are certainly within radio range; the RAS reach is
    /// modelled equal to the radio range.
    pub range_m: f64,
}

impl RasConfig {
    pub fn paper_default() -> Self {
        RasConfig {
            wake_latency: SimDuration::from_millis(5),
            range_m: 250.0,
        }
    }
}

impl Default for RasConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_page_addresses_one_host() {
        let s = PageSignal::Host(NodeId(7));
        let cell = GridCoord::new(1, 1);
        assert!(s.addresses(NodeId(7), cell));
        assert!(!s.addresses(NodeId(8), cell));
        // the host is addressed regardless of where it is
        assert!(s.addresses(NodeId(7), GridCoord::new(9, 9)));
    }

    #[test]
    fn grid_page_addresses_everyone_in_the_grid() {
        let s = PageSignal::Grid(GridCoord::new(2, 3));
        assert!(s.addresses(NodeId(1), GridCoord::new(2, 3)));
        assert!(s.addresses(NodeId(99), GridCoord::new(2, 3)));
        assert!(!s.addresses(NodeId(1), GridCoord::new(2, 4)));
    }

    #[test]
    fn default_wake_latency_is_small() {
        let c = RasConfig::paper_default();
        assert!(c.wake_latency.as_millis_f64() <= 10.0);
        assert_eq!(c.range_m, 250.0);
    }
}
