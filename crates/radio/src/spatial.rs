//! A uniform grid-bucket spatial index over node positions.
//!
//! Receiver discovery is the simulator's hottest query: every transmission
//! must find the hosts its signal can reach.  A full scan is O(N) per
//! transmission — O(N²) per broadcast round in the dense regimes the paper
//! studies (100+ hosts, §4) — while a bucket index sized to the radio
//! range answers the same query from a constant-size neighborhood of
//! buckets.  ECGRID's own logical-grid partition (§3) is exactly such an
//! index, so the protocol's core idea also accelerates its simulator.
//!
//! Two deployments share this type:
//!
//! * the `World` keys buckets to the paper's logical grid cells (the
//!   per-node cell is already maintained by cell-crossing events) and
//!   queries a Chebyshev-`reach` neighborhood that covers the radio range;
//! * the channel keys in-flight transmissions by origin with buckets of
//!   side == range, so carrier-sense and interference checks query only
//!   the 3×3 neighborhood of the receiver's bucket.
//!
//! # Determinism contract
//!
//! [`gather_sorted_into`](SpatialIndex::gather_sorted_into) scans the
//! neighborhood buckets in row-major order and emits the gathered ids in
//! ascending order, so the result is the **ascending-id** candidate list — bit-for-bit
//! identical to a brute-force scan over the same membership, regardless of
//! insertion, movement, or removal history.  Bucket-internal order is
//! explicitly *not* part of the contract (removal is an O(1) swap-remove);
//! only the sorted gather is.  The golden-digest equivalence tests hold
//! the simulator to this: `NeighborIndex::Brute` and `NeighborIndex::Grid`
//! must replay bit-identically.

use geo::Point2;

/// How the world finds a transmission's candidate receivers.
///
/// Both modes produce the *same candidate list in the same order* (see the
/// module docs); the toggle exists so the equivalence is checkable at run
/// time and the brute path stays available as a benchmark baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum NeighborIndex {
    /// Scan every node per query — O(N), the reference implementation.
    Brute,
    /// Query the maintained grid-bucket index — O(neighborhood).
    #[default]
    Grid,
}

impl NeighborIndex {
    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "brute" => Some(NeighborIndex::Brute),
            "grid" => Some(NeighborIndex::Grid),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            NeighborIndex::Brute => "brute",
            NeighborIndex::Grid => "grid",
        }
    }
}

/// When grid-mode receiver discovery should fall back to the brute scan
/// on a per-query basis.
///
/// Bucket iteration has a fixed cost per bucket header; at low occupancy
/// (few members spread over many buckets) the branch-predictable linear
/// scan is cheaper.  Because both paths emit the identical ascending-id
/// candidate list, the switch is **digest-invariant** — it can flip
/// per-query mid-run without perturbing the replay oracle (property-tested
/// in `tests/soa_equivalence.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum GatherFallback {
    /// Compare live membership against the queried bucket count per query
    /// (see [`auto_gather_threshold`]) — the shipped default.
    #[default]
    Auto,
    /// Always brute-scan (the index is maintained but never queried).
    On,
    /// Never fall back; always gather from the buckets.
    Off,
}

impl GatherFallback {
    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(GatherFallback::Auto),
            "on" => Some(GatherFallback::On),
            "off" => Some(GatherFallback::Off),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            GatherFallback::Auto => "auto",
            GatherFallback::On => "on",
            GatherFallback::Off => "off",
        }
    }
}

/// Population at or below which [`GatherFallback::Auto`] brute-scans
/// instead of gathering a Chebyshev-`reach` neighborhood.
///
/// A gather touches up to `(2·reach+1)²` bucket headers; the linear scan
/// touches every live member once.  Calibrated on the constant-density
/// bench family, the crossover sits near three members per queried bucket
/// — below that, header overhead dominates and brute wins (this is the
/// N ≤ 200 regression regime); above it the gather's candidate filtering
/// pays off.
pub fn auto_gather_threshold(reach: i32) -> usize {
    let span = (2 * reach + 1) as usize;
    3 * span * span
}

/// A member's current location inside the index (bucket + position within
/// the bucket's vector), kept so moves and removals are O(1) instead of a
/// linear rescan of the bucket.
#[derive(Clone, Copy, Debug)]
struct Slot {
    bucket: u32,
    pos: u32,
}

const NO_SLOT: Slot = Slot {
    bucket: u32::MAX,
    pos: u32::MAX,
};

/// Largest id universe served by the stack-bitmap emit path in
/// [`SpatialIndex::gather_sorted_into`] (a 512-byte bitmap).
const BITMAP_IDS: usize = 4096;

/// Uniform grid-bucket index mapping small integer ids (node or
/// transmission ids) to buckets.  See the module docs for the determinism
/// contract.
#[derive(Clone, Debug)]
pub struct SpatialIndex {
    side: f64,
    cols: i32,
    rows: i32,
    buckets: Vec<Vec<u32>>,
    /// Per-id slot bookkeeping; ids index this vector directly (they are
    /// dense small integers in both deployments).
    slots: Vec<Slot>,
    len: usize,
}

impl SpatialIndex {
    /// Index over a `[0, width] × [0, height]` field with square buckets of
    /// `side` meters (the last row/column absorbs any remainder, exactly
    /// like `geo::GridMap`).
    pub fn new(width: f64, height: f64, side: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "field must have positive area");
        assert!(side > 0.0, "bucket side must be positive");
        let cols = (width / side).ceil() as i32;
        let rows = (height / side).ceil() as i32;
        SpatialIndex::with_buckets(cols, rows, side)
    }

    /// Index with an explicit bucket layout.  The world uses this to align
    /// its buckets exactly with a `geo::GridMap`'s cells, so a node's
    /// maintained cell coordinate *is* its bucket coordinate.
    pub fn with_buckets(cols: i32, rows: i32, side: f64) -> Self {
        assert!(cols > 0 && rows > 0, "index needs at least one bucket");
        assert!(side > 0.0, "bucket side must be positive");
        SpatialIndex {
            side,
            cols,
            rows,
            buckets: vec![Vec::new(); cols as usize * rows as usize],
            slots: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    pub fn cols(&self) -> i32 {
        self.cols
    }

    #[inline]
    pub fn rows(&self) -> i32 {
        self.rows
    }

    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Number of ids currently in the index.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket coordinate of a position.  Positions on (or marginally past)
    /// the far field edge clamp into the last bucket, mirroring
    /// `GridMap::cell_of`.
    #[inline]
    pub fn bucket_of(&self, p: Point2) -> (i32, i32) {
        let bx = ((p.x / self.side) as i32).clamp(0, self.cols - 1);
        let by = ((p.y / self.side) as i32).clamp(0, self.rows - 1);
        (bx, by)
    }

    #[inline]
    fn bucket_index(&self, bx: i32, by: i32) -> usize {
        debug_assert!(bx >= 0 && bx < self.cols && by >= 0 && by < self.rows);
        by as usize * self.cols as usize + bx as usize
    }

    #[inline]
    fn slot(&self, id: u32) -> Slot {
        self.slots.get(id as usize).copied().unwrap_or(NO_SLOT)
    }

    /// Is `id` currently a member?
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.slot(id).bucket != u32::MAX
    }

    /// The bucket currently holding `id`, if it is a member.
    pub fn bucket_of_id(&self, id: u32) -> Option<(i32, i32)> {
        let s = self.slot(id);
        if s.bucket == u32::MAX {
            return None;
        }
        let b = s.bucket as i32;
        Some((b % self.cols, b / self.cols))
    }

    /// Insert `id` into the bucket at `(bx, by)`.  Panics if already
    /// present (membership bugs must not silently duplicate entries).
    pub fn insert(&mut self, id: u32, bx: i32, by: i32) {
        assert!(!self.contains(id), "id {id} already in the index");
        if self.slots.len() <= id as usize {
            self.slots.resize(id as usize + 1, NO_SLOT);
        }
        let bi = self.bucket_index(bx, by);
        let bucket = &mut self.buckets[bi];
        self.slots[id as usize] = Slot {
            bucket: bi as u32,
            pos: bucket.len() as u32,
        };
        bucket.push(id);
        self.len += 1;
    }

    /// Insert `id` at its position's bucket.
    pub fn insert_at(&mut self, id: u32, p: Point2) {
        let (bx, by) = self.bucket_of(p);
        self.insert(id, bx, by);
    }

    /// Remove `id` in O(1) (swap-remove; the displaced member's slot is
    /// patched).  No-op if absent — pruning must be idempotent.
    pub fn remove(&mut self, id: u32) {
        let s = self.slot(id);
        if s.bucket == u32::MAX {
            return;
        }
        let bucket = &mut self.buckets[s.bucket as usize];
        bucket.swap_remove(s.pos as usize);
        if let Some(&moved) = bucket.get(s.pos as usize) {
            self.slots[moved as usize].pos = s.pos;
        }
        self.slots[id as usize] = NO_SLOT;
        self.len -= 1;
    }

    /// Move `id` to the bucket at `(bx, by)` — the incremental maintenance
    /// hook for mobility updates.  O(1); no-op when the bucket is
    /// unchanged.  Panics if `id` is not a member.
    pub fn move_to(&mut self, id: u32, bx: i32, by: i32) {
        let s = self.slot(id);
        assert!(s.bucket != u32::MAX, "id {id} not in the index");
        let bi = self.bucket_index(bx, by);
        if bi as u32 == s.bucket {
            return;
        }
        self.remove(id);
        self.insert(id, bx, by);
    }

    /// Move `id` to its position's bucket.
    pub fn move_to_point(&mut self, id: u32, p: Point2) {
        let (bx, by) = self.bucket_of(p);
        self.move_to(id, bx, by);
    }

    /// Gather every member within a Chebyshev `reach` of bucket
    /// `(bx, by)` (clipped to the field) into `out` in **ascending id
    /// order** — the deterministic candidate list (see the module docs).
    /// `out` is cleared first; reuse it across queries to avoid
    /// allocation.
    ///
    /// When the id universe is small (both simulator deployments: node
    /// ids and in-flight transmission indices) the ascending order comes
    /// from a stack bitmap — one bit set per member, then emitted in bit
    /// order — which is several times cheaper than sorting the gathered
    /// list per query.  Larger universes fall back to a comparison sort.
    /// Both paths produce the identical list.
    pub fn gather_sorted_into(&self, bx: i32, by: i32, reach: i32, out: &mut Vec<u32>) {
        out.clear();
        let x0 = (bx - reach).max(0) as usize;
        let x1 = (bx + reach).min(self.cols - 1) as usize;
        let y0 = (by - reach).max(0);
        let y1 = (by + reach).min(self.rows - 1);
        if self.slots.len() <= BITMAP_IDS {
            let mut words = [0u64; BITMAP_IDS / 64];
            let (mut lo, mut hi) = (usize::MAX, 0usize);
            let mut count = 0usize;
            for y in y0..=y1 {
                let row = y as usize * self.cols as usize;
                for b in &self.buckets[row + x0..=row + x1] {
                    for &id in b {
                        let w = (id >> 6) as usize;
                        words[w] |= 1u64 << (id & 63);
                        lo = lo.min(w);
                        hi = hi.max(w);
                    }
                    count += b.len();
                }
            }
            if count > 0 {
                out.reserve(count);
                for (w, &word) in words.iter().enumerate().take(hi + 1).skip(lo) {
                    let mut bits = word;
                    while bits != 0 {
                        out.push(((w as u32) << 6) + bits.trailing_zeros());
                        bits &= bits - 1;
                    }
                }
            }
        } else {
            for y in y0..=y1 {
                let row = y as usize * self.cols as usize;
                for b in &self.buckets[row + x0..=row + x1] {
                    out.extend_from_slice(b);
                }
            }
            out.sort_unstable();
        }
    }

    /// Allocation-per-call convenience over
    /// [`gather_sorted_into`](Self::gather_sorted_into).
    pub fn gather_sorted(&self, bx: i32, by: i32, reach: i32) -> Vec<u32> {
        let mut out = Vec::new();
        self.gather_sorted_into(bx, by, reach, &mut out);
        out
    }

    /// Visit every member within a Chebyshev `reach` of bucket `(bx, by)`
    /// in bucket row-major order, **without** sorting.  Only for
    /// order-insensitive aggregates (max / any / count); candidate lists
    /// that feed ordered processing must use
    /// [`gather_sorted_into`](Self::gather_sorted_into).
    pub fn for_each_near(&self, bx: i32, by: i32, reach: i32, mut f: impl FnMut(u32)) {
        let x0 = (bx - reach).max(0);
        let x1 = (bx + reach).min(self.cols - 1);
        let y0 = (by - reach).max(0);
        let y1 = (by + reach).min(self.rows - 1);
        for y in y0..=y1 {
            let row = y as usize * self.cols as usize;
            for x in x0..=x1 {
                for &id in &self.buckets[row + x as usize] {
                    f(id);
                }
            }
        }
    }

    /// Candidates for a range query centred at `p`: the 3×3 bucket
    /// neighborhood when buckets are sized to the query radius.  With
    /// `side >= radius` this is a guaranteed superset of every member
    /// within `radius` of `p` (two points at most `side` apart are at most
    /// one bucket apart on each axis); the caller applies the exact
    /// distance filter.
    pub fn query_point_sorted_into(&self, p: Point2, out: &mut Vec<u32>) {
        let (bx, by) = self.bucket_of(p);
        self.gather_sorted_into(bx, by, 1, out);
    }

    /// Drop every member (bucket capacity is retained for reuse).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.slots.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> SpatialIndex {
        SpatialIndex::new(1000.0, 1000.0, 250.0)
    }

    #[test]
    fn layout_matches_gridmap_convention() {
        let s = idx();
        assert_eq!((s.cols(), s.rows()), (4, 4));
        // ragged remainder rounds up
        let s = SpatialIndex::new(1100.0, 300.0, 250.0);
        assert_eq!((s.cols(), s.rows()), (5, 2));
    }

    #[test]
    fn bucket_of_clamps_far_edge_into_last_bucket() {
        let s = idx();
        assert_eq!(s.bucket_of(Point2::new(0.0, 0.0)), (0, 0));
        assert_eq!(s.bucket_of(Point2::new(249.999, 0.0)), (0, 0));
        assert_eq!(s.bucket_of(Point2::new(250.0, 0.0)), (1, 0));
        assert_eq!(s.bucket_of(Point2::new(1000.0, 1000.0)), (3, 3));
        assert_eq!(s.bucket_of(Point2::new(1000.0001, -0.0001)), (3, 0));
    }

    #[test]
    fn insert_move_remove_roundtrip() {
        let mut s = idx();
        s.insert(7, 0, 0);
        s.insert(3, 0, 0);
        s.insert(9, 3, 3);
        assert_eq!(s.len(), 3);
        assert!(s.contains(7));
        assert_eq!(s.bucket_of_id(9), Some((3, 3)));
        s.move_to(7, 2, 1);
        assert_eq!(s.bucket_of_id(7), Some((2, 1)));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 2);
        // removal is idempotent
        s.remove(3);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already in the index")]
    fn double_insert_panics() {
        let mut s = idx();
        s.insert(1, 0, 0);
        s.insert(1, 1, 1);
    }

    #[test]
    fn gather_is_ascending_regardless_of_history() {
        let mut s = idx();
        // insert out of order, shuffle with moves and swap-removals
        for id in [9u32, 2, 7, 4, 1, 8] {
            s.insert(id, 0, 0);
        }
        s.remove(7);
        s.move_to(9, 1, 0);
        s.move_to(9, 0, 0); // back again: lands at a new bucket position
        s.insert(7, 1, 1);
        let got = s.gather_sorted(0, 0, 1);
        assert_eq!(got, vec![1, 2, 4, 7, 8, 9]);
    }

    #[test]
    fn gather_clips_at_field_boundary() {
        let mut s = idx();
        s.insert(0, 0, 0);
        s.insert(1, 3, 3);
        // corner query must not panic and must not see the far corner
        assert_eq!(s.gather_sorted(0, 0, 1), vec![0]);
        assert_eq!(s.gather_sorted(3, 3, 1), vec![1]);
        // a field-wide reach sees everyone
        assert_eq!(s.gather_sorted(0, 0, 3), vec![0, 1]);
    }

    #[test]
    fn three_by_three_covers_the_query_radius() {
        // side == radius: any point within `radius` of p lies in the 3×3
        // neighborhood of p's bucket — including points exactly at the
        // radius and exactly on bucket boundaries.
        let side = 250.0;
        let mut s = SpatialIndex::new(1000.0, 1000.0, side);
        let probes = [
            Point2::new(0.0, 0.0),
            Point2::new(250.0, 250.0),   // exactly on a bucket corner
            Point2::new(500.0, 0.0),     // on a bucket edge
            Point2::new(999.0, 999.0),   // far corner
            Point2::new(374.999, 625.0), // interior
        ];
        let mut id = 0u32;
        let mut pts = Vec::new();
        for &p in &probes {
            for &(dx, dy) in &[
                (side, 0.0),
                (-side, 0.0),
                (0.0, side),
                (0.0, -side),
                (side * 0.707, side * 0.707), // just inside the circle
                (120.0, -90.0),
            ] {
                let q = Point2::new((p.x + dx).clamp(0.0, 1000.0), (p.y + dy).clamp(0.0, 1000.0));
                s.insert_at(id, q);
                pts.push(q);
                id += 1;
            }
        }
        let mut out = Vec::new();
        for &p in &probes {
            s.query_point_sorted_into(p, &mut out);
            for (i, &q) in pts.iter().enumerate() {
                if p.within_range(q, side) {
                    assert!(
                        out.contains(&(i as u32)),
                        "point {q:?} within {side} of {p:?} missed by the 3×3 query"
                    );
                }
            }
        }
    }

    #[test]
    fn large_id_universe_falls_back_to_sort() {
        // ids past the bitmap capacity exercise the comparison-sort path;
        // the contract (ascending emit) is identical.
        let mut s = idx();
        for id in [9000u32, 4097, 12, 5000, 4096] {
            s.insert(id, 0, 0);
        }
        s.insert(7000, 1, 1);
        assert_eq!(s.gather_sorted(0, 0, 1), vec![12, 4096, 4097, 5000, 7000, 9000]);
        s.remove(5000);
        assert_eq!(s.gather_sorted(0, 0, 1), vec![12, 4096, 4097, 7000, 9000]);
    }

    #[test]
    fn parse_gather_fallback() {
        assert_eq!(GatherFallback::parse("auto"), Some(GatherFallback::Auto));
        assert_eq!(GatherFallback::parse("on"), Some(GatherFallback::On));
        assert_eq!(GatherFallback::parse("off"), Some(GatherFallback::Off));
        assert_eq!(GatherFallback::parse("maybe"), None);
        assert_eq!(GatherFallback::default(), GatherFallback::Auto);
        assert_eq!(GatherFallback::On.name(), "on");
    }

    #[test]
    fn auto_threshold_scales_with_neighborhood_area() {
        // paper grid: reach 4 → 9×9 buckets → 243-member crossover
        assert_eq!(auto_gather_threshold(4), 243);
        assert_eq!(auto_gather_threshold(1), 27);
        // crossover sits between the bench's regressing and winning scales
        assert!(auto_gather_threshold(4) > 200);
        assert!(auto_gather_threshold(4) < 500);
    }

    #[test]
    fn parse_neighbor_index() {
        assert_eq!(NeighborIndex::parse("brute"), Some(NeighborIndex::Brute));
        assert_eq!(NeighborIndex::parse("grid"), Some(NeighborIndex::Grid));
        assert_eq!(NeighborIndex::parse("quad"), None);
        assert_eq!(NeighborIndex::default(), NeighborIndex::Grid);
        assert_eq!(NeighborIndex::Brute.name(), "brute");
    }
}
