//! The three-level battery classification driving gateway election (§2).
//!
//! > upper level if R_brc > 0.6; boundary level if 0.2 < R_brc <= 0.6;
//! > lower level if R_brc <= 0.2.
//!
//! Levels order `Lower < Boundary < Upper` so "higher level wins" is the
//! natural `Ord` comparison.

use std::fmt;

/// Remaining-battery level class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergyLevel {
    Lower,
    Boundary,
    Upper,
}

/// R_brc threshold between `Boundary` and `Upper`.
pub const UPPER_THRESHOLD: f64 = 0.6;
/// R_brc threshold between `Lower` and `Boundary`.
pub const LOWER_THRESHOLD: f64 = 0.2;

impl EnergyLevel {
    /// Classify an R_brc value (paper §2).
    #[inline]
    pub fn classify(rbrc: f64) -> Self {
        if rbrc > UPPER_THRESHOLD {
            EnergyLevel::Upper
        } else if rbrc > LOWER_THRESHOLD {
            EnergyLevel::Boundary
        } else {
            EnergyLevel::Lower
        }
    }

    /// The level below this one, if any — a gateway retires when its level
    /// *changes* downwards (§3.2 load balance), i.e. crosses one of these.
    pub fn next_down(self) -> Option<EnergyLevel> {
        match self {
            EnergyLevel::Upper => Some(EnergyLevel::Boundary),
            EnergyLevel::Boundary => Some(EnergyLevel::Lower),
            EnergyLevel::Lower => None,
        }
    }

    /// The R_brc value at which this level is exited downwards; the load
    /// balance scheme schedules a retirement check at this boundary.
    pub fn lower_bound_rbrc(self) -> f64 {
        match self {
            EnergyLevel::Upper => UPPER_THRESHOLD,
            EnergyLevel::Boundary => LOWER_THRESHOLD,
            EnergyLevel::Lower => 0.0,
        }
    }
}

impl fmt::Display for EnergyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EnergyLevel::Upper => "upper",
            EnergyLevel::Boundary => "boundary",
            EnergyLevel::Lower => "lower",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper() {
        assert_eq!(EnergyLevel::classify(1.0), EnergyLevel::Upper);
        assert_eq!(EnergyLevel::classify(0.61), EnergyLevel::Upper);
        assert_eq!(EnergyLevel::classify(0.6), EnergyLevel::Boundary);
        assert_eq!(EnergyLevel::classify(0.21), EnergyLevel::Boundary);
        assert_eq!(EnergyLevel::classify(0.2), EnergyLevel::Lower);
        assert_eq!(EnergyLevel::classify(0.0), EnergyLevel::Lower);
    }

    #[test]
    fn ordering_prefers_more_energy() {
        assert!(EnergyLevel::Upper > EnergyLevel::Boundary);
        assert!(EnergyLevel::Boundary > EnergyLevel::Lower);
        assert_eq!(
            [EnergyLevel::Lower, EnergyLevel::Upper, EnergyLevel::Boundary]
                .iter()
                .max()
                .unwrap(),
            &EnergyLevel::Upper
        );
    }

    #[test]
    fn level_boundaries() {
        assert_eq!(EnergyLevel::Upper.next_down(), Some(EnergyLevel::Boundary));
        assert_eq!(EnergyLevel::Boundary.next_down(), Some(EnergyLevel::Lower));
        assert_eq!(EnergyLevel::Lower.next_down(), None);
        assert_eq!(EnergyLevel::Upper.lower_bound_rbrc(), 0.6);
        assert_eq!(EnergyLevel::Boundary.lower_bound_rbrc(), 0.2);
        assert_eq!(EnergyLevel::Lower.lower_bound_rbrc(), 0.0);
    }

    #[test]
    fn classify_is_consistent_with_bounds() {
        for lvl in [EnergyLevel::Upper, EnergyLevel::Boundary] {
            let b = lvl.lower_bound_rbrc();
            assert_eq!(EnergyLevel::classify(b + 1e-9), lvl);
            assert!(EnergyLevel::classify(b) < lvl);
        }
    }
}
