//! The energy model: power profiles, batteries, and per-node meters.
//!
//! The paper adopts the measurement-based model of Feeney & Nillsson (as
//! used by the Span paper): a Cabletron Roamabout 802.11 DS card at 2 Mbps
//! drawing **1400 mW transmitting, 1000 mW receiving, 830 mW idle, and
//! 130 mW asleep**, plus **33 mW** of continuous GPS draw for the
//! location-aware protocols.  RAS paging hardware is idealized at zero
//! cost, exactly as in §2 ("the power consumption of RAS … can thus be
//! ignored").
//!
//! Energy accounting is a state integrator: a node's meter records the
//! current radio mode and the last transition instant; every transition
//! (or explicit sampling) integrates `power × elapsed` into the battery.
//! Death times are predictable in closed form, which lets the simulator
//! schedule death events instead of polling.

pub mod battery;
pub mod level;
pub mod meter;
pub mod power;

pub use battery::Battery;
pub use level::EnergyLevel;
pub use meter::{EnergyAudit, EnergyMeter};
pub use power::{PowerProfile, RadioMode};
