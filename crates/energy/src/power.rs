//! Radio operating modes and the measured power profile.

use std::fmt;

/// The operating mode of a host's main transceiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RadioMode {
    /// Actively transmitting a frame.
    Tx,
    /// Actively receiving (or overhearing) a frame.
    Rx,
    /// Powered on, listening, but no frame on the air — the expensive state
    /// the paper attacks ("power consumption is not reduced much even
    /// though the mobile host is idle").
    Idle,
    /// Transceiver off; only the RAS paging receiver is reachable.
    Sleep,
    /// Battery exhausted (or the host crashed); consumes nothing, forever.
    Off,
}

impl RadioMode {
    /// True if the main transceiver can receive frames in this mode.
    #[inline]
    pub fn can_receive(self) -> bool {
        matches!(self, RadioMode::Rx | RadioMode::Idle | RadioMode::Tx)
    }

    /// True if the host is alive (any mode but `Off`).
    #[inline]
    pub fn is_alive(self) -> bool {
        self != RadioMode::Off
    }
}

impl fmt::Display for RadioMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RadioMode::Tx => "tx",
            RadioMode::Rx => "rx",
            RadioMode::Idle => "idle",
            RadioMode::Sleep => "sleep",
            RadioMode::Off => "off",
        };
        f.write_str(s)
    }
}

/// Power draw per mode, in watts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerProfile {
    pub tx_w: f64,
    pub rx_w: f64,
    pub idle_w: f64,
    pub sleep_w: f64,
    /// Continuous positioning-device draw for location-aware protocols
    /// (0 for protocols without GPS).
    pub gps_w: f64,
}

impl PowerProfile {
    /// The paper's constants (§4): 1400/1000/830/130 mW + 33 mW GPS.
    pub const fn paper_default() -> Self {
        PowerProfile {
            tx_w: 1.4,
            rx_w: 1.0,
            idle_w: 0.83,
            sleep_w: 0.13,
            gps_w: 0.033,
        }
    }

    /// Same radio, no positioning device (for non-location-aware baselines).
    pub const fn paper_no_gps() -> Self {
        PowerProfile {
            gps_w: 0.0,
            ..Self::paper_default()
        }
    }

    /// Total draw in a given mode, including GPS.
    ///
    /// GPS stays powered in sleep mode too — the host must know its position
    /// to set/refresh the dwell timer (§3.2).  `Off` draws nothing.
    #[inline]
    pub fn draw_w(&self, mode: RadioMode) -> f64 {
        let radio = match mode {
            RadioMode::Tx => self.tx_w,
            RadioMode::Rx => self.rx_w,
            RadioMode::Idle => self.idle_w,
            RadioMode::Sleep => self.sleep_w,
            RadioMode::Off => return 0.0,
        };
        radio + self.gps_w
    }
}

impl Default for PowerProfile {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = PowerProfile::paper_default();
        assert_eq!(p.draw_w(RadioMode::Tx), 1.4 + 0.033);
        assert_eq!(p.draw_w(RadioMode::Rx), 1.0 + 0.033);
        assert_eq!(p.draw_w(RadioMode::Idle), 0.83 + 0.033);
        assert_eq!(p.draw_w(RadioMode::Sleep), 0.13 + 0.033);
        assert_eq!(p.draw_w(RadioMode::Off), 0.0);
    }

    #[test]
    fn idle_vs_sleep_gap_motivates_the_paper() {
        // the whole point: idle burns ~5x sleep
        let p = PowerProfile::paper_default();
        assert!(p.draw_w(RadioMode::Idle) / p.draw_w(RadioMode::Sleep) > 5.0);
    }

    #[test]
    fn mode_predicates() {
        assert!(RadioMode::Idle.can_receive());
        assert!(RadioMode::Rx.can_receive());
        assert!(RadioMode::Tx.can_receive());
        assert!(!RadioMode::Sleep.can_receive());
        assert!(!RadioMode::Off.can_receive());
        assert!(RadioMode::Sleep.is_alive());
        assert!(!RadioMode::Off.is_alive());
    }

    #[test]
    fn no_gps_profile() {
        let p = PowerProfile::paper_no_gps();
        assert_eq!(p.draw_w(RadioMode::Idle), 0.83);
        assert_eq!(p.draw_w(RadioMode::Sleep), 0.13);
    }
}
