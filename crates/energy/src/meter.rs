//! The per-node energy meter: a radio-state integrator over virtual time.

use crate::battery::Battery;
use crate::level::EnergyLevel;
use crate::power::{PowerProfile, RadioMode};
use sim_engine::SimTime;

/// Integrates power draw over time as the radio changes modes.
///
/// ```
/// use energy::{EnergyMeter, RadioMode};
/// use sim_engine::SimTime;
///
/// let mut meter = EnergyMeter::paper_default(); // 500 J, 802.11 + GPS
/// meter.set_mode(SimTime::from_secs(10), RadioMode::Sleep); // 10 s idle...
/// meter.advance(SimTime::from_secs(70));                    // ...60 s asleep
/// // 10 s x 0.863 W + 60 s x 0.163 W
/// assert!((meter.consumed_j() - (8.63 + 9.78)).abs() < 1e-9);
/// assert!(meter.is_alive());
/// ```
///
/// Invariants:
/// * consumed energy is monotonically non-decreasing;
/// * once the battery empties the mode latches to [`RadioMode::Off`];
/// * `advance` is idempotent for the same timestamp.
#[derive(Clone, Debug)]
pub struct EnergyMeter {
    profile: PowerProfile,
    battery: Battery,
    mode: RadioMode,
    /// Draw of the current mode, cached at every mode transition so the
    /// per-event `advance` is a multiply instead of a profile match.  The
    /// cache holds exactly `profile.draw_w(mode)` — the same expression the
    /// integrator used to evaluate inline — so consumption stays
    /// bit-identical (checked by `cached_draw_tracks_mode`).
    draw_w: f64,
    last_update: SimTime,
    audit: EnergyAudit,
}

/// Per-mode breakdown of where a host's time and energy went — the raw
/// material of Fig. 5-style analyses ("how much of the battery did idle
/// listening burn versus transmission?").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyAudit {
    pub tx_secs: f64,
    pub rx_secs: f64,
    pub idle_secs: f64,
    pub sleep_secs: f64,
    pub tx_j: f64,
    pub rx_j: f64,
    pub idle_j: f64,
    pub sleep_j: f64,
    /// Energy charged outside mode intervals (MAC ACK exchanges).
    pub direct_j: f64,
}

impl EnergyAudit {
    /// Total awake (non-sleep) time.
    pub fn awake_secs(&self) -> f64 {
        self.tx_secs + self.rx_secs + self.idle_secs
    }

    /// Total accounted energy (should match the meter's consumed_j).
    pub fn total_j(&self) -> f64 {
        self.tx_j + self.rx_j + self.idle_j + self.sleep_j + self.direct_j
    }

    fn charge(&mut self, mode: RadioMode, secs: f64, joules: f64) {
        match mode {
            RadioMode::Tx => {
                self.tx_secs += secs;
                self.tx_j += joules;
            }
            RadioMode::Rx => {
                self.rx_secs += secs;
                self.rx_j += joules;
            }
            RadioMode::Idle => {
                self.idle_secs += secs;
                self.idle_j += joules;
            }
            RadioMode::Sleep => {
                self.sleep_secs += secs;
                self.sleep_j += joules;
            }
            RadioMode::Off => {}
        }
    }
}

impl EnergyMeter {
    pub fn new(profile: PowerProfile, battery: Battery) -> Self {
        let draw_w = profile.draw_w(RadioMode::Idle);
        EnergyMeter {
            profile,
            battery,
            mode: RadioMode::Idle,
            draw_w,
            last_update: SimTime::ZERO,
            audit: EnergyAudit::default(),
        }
    }

    /// The paper's evaluation host: 500 J battery, measured 802.11 profile
    /// with GPS, starting idle at t=0.
    pub fn paper_default() -> Self {
        EnergyMeter::new(PowerProfile::paper_default(), Battery::paper_default())
    }

    #[inline]
    pub fn mode(&self) -> RadioMode {
        self.mode
    }

    #[inline]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    #[inline]
    pub fn profile(&self) -> &PowerProfile {
        &self.profile
    }

    #[inline]
    pub fn rbrc(&self) -> f64 {
        self.battery.rbrc()
    }

    #[inline]
    pub fn level(&self) -> EnergyLevel {
        EnergyLevel::classify(self.battery.rbrc())
    }

    #[inline]
    pub fn consumed_j(&self) -> f64 {
        self.battery.consumed_j()
    }

    #[inline]
    pub fn remaining_j(&self) -> f64 {
        self.battery.remaining_j()
    }

    #[inline]
    pub fn is_alive(&self) -> bool {
        self.mode.is_alive()
    }

    #[inline]
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }

    /// Per-mode time/energy breakdown accumulated so far.
    #[inline]
    pub fn audit(&self) -> &EnergyAudit {
        &self.audit
    }

    /// Integrate consumption up to `now`.  If the battery empties somewhere
    /// in the interval, the mode latches to `Off` and the overshoot is
    /// clamped (the node was dead for the tail of the interval).
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "meter moved backwards");
        let dt = now.since(self.last_update).as_secs_f64();
        self.last_update = now;
        if dt == 0.0 || self.mode == RadioMode::Off {
            return;
        }
        let before = self.battery.consumed_j();
        self.battery.drain(self.draw_w * dt);
        let spent = self.battery.consumed_j() - before;
        self.audit.charge(self.mode, dt, spent);
        if self.battery.is_empty() {
            self.enter_mode(RadioMode::Off);
        }
    }

    /// Switch modes and refresh the cached draw — the only place either
    /// field is written after construction, so they can't desync.
    #[inline]
    fn enter_mode(&mut self, mode: RadioMode) {
        self.mode = mode;
        self.draw_w = self.profile.draw_w(mode);
    }

    /// Integrate up to `now`, then switch to `mode`.  Returns the mode
    /// actually in effect (dead nodes stay `Off` regardless of the request).
    pub fn set_mode(&mut self, now: SimTime, mode: RadioMode) -> RadioMode {
        self.advance(now);
        if self.mode != RadioMode::Off {
            self.enter_mode(mode);
        }
        self.mode
    }

    /// Integrate up to `now`, then draw `joules` directly (used for
    /// sub-frame exchanges like MAC ACKs that are charged analytically
    /// rather than modelled as mode intervals).
    pub fn drain_direct(&mut self, now: SimTime, joules: f64) {
        self.advance(now);
        if self.mode == RadioMode::Off {
            return;
        }
        let before = self.battery.consumed_j();
        self.battery.drain(joules.max(0.0));
        self.audit.direct_j += self.battery.consumed_j() - before;
        if self.battery.is_empty() {
            self.enter_mode(RadioMode::Off);
        }
    }

    /// Absolute time at which the battery empties if the current mode
    /// persists; `None` for infinite batteries, dead nodes, or zero draw.
    pub fn predicted_death(&self) -> Option<SimTime> {
        if self.mode == RadioMode::Off {
            return None;
        }
        let secs = self.battery.seconds_until_empty(self.draw_w)?;
        // + last_update because prediction is from the last integration point
        Some(self.last_update + sim_engine::SimDuration::from_secs_f64(secs))
    }

    /// Absolute time at which R_brc crosses down out of its current level
    /// band (the load-balance retirement trigger), if the current mode
    /// persists.
    pub fn predicted_level_drop(&self) -> Option<SimTime> {
        if self.mode == RadioMode::Off || self.battery.is_infinite() {
            return None;
        }
        if self.draw_w <= 0.0 {
            return None;
        }
        let bound = self.level().lower_bound_rbrc();
        let target_consumed = self.battery.capacity_j() * (1.0 - bound);
        let secs = (target_consumed - self.battery.consumed_j()) / self.draw_w;
        if !secs.is_finite() || secs < 0.0 {
            return None;
        }
        Some(self.last_update + sim_engine::SimDuration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> EnergyMeter {
        EnergyMeter::paper_default()
    }

    #[test]
    fn idle_integration() {
        let mut m = meter();
        m.advance(SimTime::from_secs(100));
        // 100 s at 0.863 W
        assert!((m.consumed_j() - 86.3).abs() < 1e-9);
        assert_eq!(m.mode(), RadioMode::Idle);
    }

    #[test]
    fn mode_changes_integrate_piecewise() {
        let mut m = meter();
        m.set_mode(SimTime::from_secs(10), RadioMode::Tx); // 10 s idle
        m.set_mode(SimTime::from_secs(11), RadioMode::Idle); // 1 s tx
        m.advance(SimTime::from_secs(11));
        let expect = 10.0 * (0.83 + 0.033) + 1.0 * (1.4 + 0.033);
        assert!((m.consumed_j() - expect).abs() < 1e-9, "{}", m.consumed_j());
    }

    #[test]
    fn sleep_is_cheap() {
        let mut idle = meter();
        let mut asleep = meter();
        asleep.set_mode(SimTime::ZERO, RadioMode::Sleep);
        idle.advance(SimTime::from_secs(500));
        asleep.advance(SimTime::from_secs(500));
        assert!(idle.consumed_j() > 5.0 * asleep.consumed_j() * 0.9);
    }

    #[test]
    fn death_latches_off() {
        let mut m = meter();
        m.advance(SimTime::from_secs(1000)); // way past 579 s idle lifetime
        assert_eq!(m.mode(), RadioMode::Off);
        assert!(!m.is_alive());
        assert_eq!(m.remaining_j(), 0.0);
        // further requests can't revive it
        assert_eq!(
            m.set_mode(SimTime::from_secs(1001), RadioMode::Idle),
            RadioMode::Off
        );
        let j = m.consumed_j();
        m.advance(SimTime::from_secs(2000));
        assert_eq!(m.consumed_j(), j, "dead node consumed energy");
    }

    #[test]
    fn predicted_death_matches_integration() {
        let mut m = meter();
        let death = m.predicted_death().unwrap();
        assert!((death.as_secs_f64() - 500.0 / 0.863).abs() < 1e-6);
        // advancing exactly to the predicted time kills the node
        m.advance(death + sim_engine::SimDuration::from_nanos(1));
        assert!(!m.is_alive());
    }

    #[test]
    fn predicted_death_shifts_with_consumption() {
        let mut m = meter();
        m.advance(SimTime::from_secs(100));
        let death = m.predicted_death().unwrap();
        let expect = 100.0 + (500.0 - 86.3) / 0.863;
        assert!((death.as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn level_transitions() {
        let mut m = meter();
        assert_eq!(m.level(), EnergyLevel::Upper);
        let drop = m.predicted_level_drop().unwrap();
        // Upper->Boundary at rbrc = 0.6 → consumed 200 J at 0.863 W
        assert!((drop.as_secs_f64() - 200.0 / 0.863).abs() < 1e-6);
        m.advance(drop + sim_engine::SimDuration::from_millis(1));
        assert_eq!(m.level(), EnergyLevel::Boundary);
        let drop2 = m.predicted_level_drop().unwrap();
        assert!(drop2 > drop);
        m.advance(drop2 + sim_engine::SimDuration::from_millis(1));
        assert_eq!(m.level(), EnergyLevel::Lower);
    }

    #[test]
    fn infinite_battery_never_predicts_death() {
        let mut m = EnergyMeter::new(PowerProfile::paper_default(), Battery::infinite());
        assert!(m.predicted_death().is_none());
        assert!(m.predicted_level_drop().is_none());
        m.advance(SimTime::from_secs(1_000_000));
        assert!(m.is_alive());
        assert_eq!(m.level(), EnergyLevel::Upper);
    }

    #[test]
    fn audit_accounts_for_every_joule() {
        let mut m = meter();
        m.set_mode(SimTime::from_secs(10), RadioMode::Tx);
        m.set_mode(SimTime::from_secs(12), RadioMode::Rx);
        m.set_mode(SimTime::from_secs(15), RadioMode::Sleep);
        m.advance(SimTime::from_secs(100));
        m.drain_direct(SimTime::from_secs(100), 1.5);
        let a = *m.audit();
        assert!(
            (a.total_j() - m.consumed_j()).abs() < 1e-9,
            "audit {} vs meter {}",
            a.total_j(),
            m.consumed_j()
        );
        assert!((a.idle_secs - 10.0).abs() < 1e-9);
        assert!((a.tx_secs - 2.0).abs() < 1e-9);
        assert!((a.rx_secs - 3.0).abs() < 1e-9);
        assert!((a.sleep_secs - 85.0).abs() < 1e-9);
        assert!((a.direct_j - 1.5).abs() < 1e-9);
        assert!((a.awake_secs() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn audit_stops_at_death() {
        let mut m = meter();
        m.advance(SimTime::from_secs(2000)); // dies at ~579 s
        let a = *m.audit();
        assert!(
            (a.total_j() - 500.0).abs() < 1e-6,
            "all 500 J accounted: {}",
            a.total_j()
        );
        assert!(
            (a.idle_secs - 2000.0).abs() < 1e-9,
            "time integration covers the whole interval"
        );
    }

    #[test]
    fn cached_draw_tracks_mode() {
        let mut m = meter();
        for (t, mode) in [
            (1, RadioMode::Tx),
            (2, RadioMode::Rx),
            (3, RadioMode::Sleep),
            (4, RadioMode::Idle),
        ] {
            m.set_mode(SimTime::from_secs(t), mode);
            assert_eq!(m.draw_w, m.profile.draw_w(m.mode()), "after {mode:?}");
        }
        // the Off latch inside advance() must refresh the cache too
        m.advance(SimTime::from_secs(10_000));
        assert_eq!(m.mode(), RadioMode::Off);
        assert_eq!(m.draw_w, 0.0);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut m = meter();
        m.advance(SimTime::from_secs(50));
        let j = m.consumed_j();
        m.advance(SimTime::from_secs(50));
        assert_eq!(m.consumed_j(), j);
    }
}
