//! Batteries: finite (500 J in the paper's evaluation) or infinite
//! (Model 1's source/destination endpoints for GAF).

/// A battery tracking consumed energy against an optional capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Battery {
    /// `None` = infinite energy (Model 1 endpoints).
    capacity_j: Option<f64>,
    consumed_j: f64,
}

impl Battery {
    /// Finite battery with the given capacity in joules.
    pub fn with_capacity(capacity_j: f64) -> Self {
        assert!(capacity_j > 0.0, "capacity must be positive");
        Battery {
            capacity_j: Some(capacity_j),
            consumed_j: 0.0,
        }
    }

    /// The paper's evaluation battery: 500 J.
    pub fn paper_default() -> Self {
        Battery::with_capacity(500.0)
    }

    /// An infinite battery (never dies, R_brc pinned at 1).
    pub fn infinite() -> Self {
        Battery {
            capacity_j: None,
            consumed_j: 0.0,
        }
    }

    pub fn is_infinite(&self) -> bool {
        self.capacity_j.is_none()
    }

    /// Draw `joules` from the battery (clamped at empty).
    pub fn drain(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0);
        self.consumed_j += joules;
        if let Some(cap) = self.capacity_j {
            if self.consumed_j > cap {
                self.consumed_j = cap;
            }
        }
    }

    /// Total energy consumed so far, in joules.
    #[inline]
    pub fn consumed_j(&self) -> f64 {
        self.consumed_j
    }

    /// Remaining energy; `f64::INFINITY` for infinite batteries.
    #[inline]
    pub fn remaining_j(&self) -> f64 {
        match self.capacity_j {
            Some(cap) => (cap - self.consumed_j).max(0.0),
            None => f64::INFINITY,
        }
    }

    /// Nominal capacity; `f64::INFINITY` for infinite batteries.
    #[inline]
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j.unwrap_or(f64::INFINITY)
    }

    /// The paper's R_brc (Eq. 1): remaining / full capacity, in `[0, 1]`.
    /// Infinite batteries report 1.
    #[inline]
    pub fn rbrc(&self) -> f64 {
        match self.capacity_j {
            Some(cap) => ((cap - self.consumed_j) / cap).max(0.0),
            None => 1.0,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        match self.capacity_j {
            Some(cap) => self.consumed_j >= cap,
            None => false,
        }
    }

    /// Seconds until empty at a constant `draw_w` watts; `None` if the
    /// battery never empties (infinite, or zero draw).
    pub fn seconds_until_empty(&self, draw_w: f64) -> Option<f64> {
        let cap = self.capacity_j?;
        if draw_w <= 0.0 {
            return None;
        }
        Some(((cap - self.consumed_j) / draw_w).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_and_rbrc() {
        let mut b = Battery::with_capacity(500.0);
        assert_eq!(b.rbrc(), 1.0);
        b.drain(100.0);
        assert_eq!(b.rbrc(), 0.8);
        assert_eq!(b.remaining_j(), 400.0);
        assert_eq!(b.consumed_j(), 100.0);
        assert!(!b.is_empty());
    }

    #[test]
    fn drain_clamps_at_empty() {
        let mut b = Battery::with_capacity(10.0);
        b.drain(25.0);
        assert!(b.is_empty());
        assert_eq!(b.remaining_j(), 0.0);
        assert_eq!(b.rbrc(), 0.0);
        assert_eq!(b.consumed_j(), 10.0);
    }

    #[test]
    fn infinite_battery_never_dies() {
        let mut b = Battery::infinite();
        b.drain(1e12);
        assert!(!b.is_empty());
        assert_eq!(b.rbrc(), 1.0);
        assert_eq!(b.remaining_j(), f64::INFINITY);
        assert!(b.is_infinite());
        assert!(b.seconds_until_empty(1.0).is_none());
    }

    #[test]
    fn death_prediction_matches_paper_idle_lifetime() {
        // 500 J at idle+GPS (0.863 W) dies at ~579 s — the paper observes
        // the GRID network down at ~590 s
        let b = Battery::paper_default();
        let t = b.seconds_until_empty(0.863).unwrap();
        assert!((t - 579.37).abs() < 0.1, "t = {t}");
    }

    #[test]
    fn zero_draw_never_empties() {
        let b = Battery::with_capacity(1.0);
        assert!(b.seconds_until_empty(0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        Battery::with_capacity(0.0);
    }
}
