//! # DSDV — Destination-Sequenced Distance-Vector routing
//!
//! Perkins & Bhagwat (SIGCOMM'94), the paper's reference \[4\] and the
//! classic *proactive* MANET protocol: every host maintains a route to
//! every other host at all times by periodically broadcasting its distance
//! vector, with per-destination sequence numbers preventing loops and
//! count-to-infinity.
//!
//! In this workspace DSDV completes the routing-protocol lineage the paper
//! sketches (§1): DSDV (proactive) → AODV (reactive) → GRID (grid-by-grid)
//! → ECGRID (energy-conserving).  It also serves as the always-on,
//! maximum-chatter extreme in overhead comparisons: a DSDV host transmits
//! O(network size) state every dump period whether or not anyone talks.
//!
//! Implemented per the original design:
//! * **even** own-sequence numbers, bumped on every periodic advertisement;
//! * routes adopted when strictly fresher (higher seq) or equally fresh
//!   with a shorter metric;
//! * broken links advertised immediately with metric ∞ and an **odd**
//!   sequence number (the "link broken" epoch), repaired by the
//!   destination's next even advertisement;
//! * full dumps on a slow period, triggered incremental updates when the
//!   table changes.

pub mod proto;

pub use proto::{Dsdv, DsdvConfig, DsdvStats};
