//! The DSDV state machine.

use manet::{AppPacket, Ctx, FrameKind, NodeId, Protocol, SimTime, WireSize};
use rand::Rng;
use std::collections::HashMap;

/// Metric value meaning "unreachable".
pub const INFINITY_METRIC: u8 = 16;
const DATA_TTL: u8 = 32;

/// DSDV parameters (times in seconds).
#[derive(Clone, Copy, Debug)]
pub struct DsdvConfig {
    /// Period of incremental advertisements.
    pub advert_interval: f64,
    /// Every `full_dump_every` advertisements, send the whole table.
    pub full_dump_every: u32,
    /// Drop routes not refreshed for this long.
    pub route_ttl: f64,
    /// Packets buffered per destination awaiting a route.
    pub buffer_cap: usize,
}

impl Default for DsdvConfig {
    fn default() -> Self {
        DsdvConfig {
            advert_interval: 1.5,
            full_dump_every: 10,
            route_ttl: 12.0,
            buffer_cap: 64,
        }
    }
}

/// One advertised route entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Advert {
    pub dst: NodeId,
    pub seq: u32,
    pub metric: u8,
}

/// DSDV wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum DsdvMsg {
    /// A distance-vector update (full dump or incremental).
    Update(Vec<Advert>),
    /// A data packet in transit.
    Data {
        packet: AppPacket,
        src: NodeId,
        dst: NodeId,
        ttl: u8,
    },
}

impl WireSize for DsdvMsg {
    fn wire_bytes(&self) -> u32 {
        match self {
            // dst 4 + seq 4 + metric 1 per entry, + 8 header
            DsdvMsg::Update(entries) => 8 + 9 * entries.len() as u32,
            DsdvMsg::Data { packet, .. } => packet.bytes + 21,
        }
    }
}

/// DSDV timers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DsdvTimer {
    Advertise,
}

/// Per-host counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DsdvStats {
    pub adverts_sent: u64,
    pub full_dumps: u64,
    pub entries_advertised: u64,
    pub routes_adopted: u64,
    pub breaks_advertised: u64,
    pub data_forwarded: u64,
    pub data_delivered: u64,
    pub data_dropped: u64,
}

#[derive(Clone, Copy, Debug)]
struct Route {
    next_hop: NodeId,
    metric: u8,
    seq: u32,
    updated: SimTime,
    /// Entry changed since the last advertisement (incremental dump set).
    dirty: bool,
}

/// One DSDV instance.
pub struct Dsdv {
    cfg: DsdvConfig,
    me: NodeId,
    my_seq: u32,
    routes: HashMap<NodeId, Route>,
    advert_count: u32,
    pending: HashMap<NodeId, Vec<(AppPacket, NodeId)>>,
    pub stats: DsdvStats,
}

impl Dsdv {
    pub fn new(cfg: DsdvConfig, me: NodeId) -> Self {
        Dsdv {
            cfg,
            me,
            my_seq: 0,
            routes: HashMap::new(),
            advert_count: 0,
            pending: HashMap::new(),
            stats: DsdvStats::default(),
        }
    }

    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    pub fn next_hop(&self, dst: NodeId) -> Option<NodeId> {
        self.routes
            .get(&dst)
            .filter(|r| r.metric < INFINITY_METRIC)
            .map(|r| r.next_hop)
    }

    pub fn metric_to(&self, dst: NodeId) -> Option<u8> {
        self.routes.get(&dst).map(|r| r.metric)
    }

    /// Adopt an advertised entry heard from `from` (standard DSDV rule):
    /// newer sequence wins; same sequence, better metric wins.
    fn consider(&mut self, now: SimTime, from: NodeId, adv: Advert) {
        if adv.dst == self.me {
            return; // my own row: my_seq is authoritative
        }
        let metric = adv.metric.saturating_add(1).min(INFINITY_METRIC);
        let adopt = match self.routes.get(&adv.dst) {
            None => metric < INFINITY_METRIC,
            Some(cur) => adv.seq > cur.seq || (adv.seq == cur.seq && metric < cur.metric),
        };
        if adopt {
            self.stats.routes_adopted += 1;
            self.routes.insert(
                adv.dst,
                Route {
                    next_hop: from,
                    metric,
                    seq: adv.seq,
                    updated: now,
                    dirty: true,
                },
            );
        }
    }

    fn advertise(&mut self, ctx: &mut Ctx<'_, Self>, full: bool) {
        let now = ctx.now();
        // expire stale routes first (their destinations stopped refreshing)
        let ttl = self.cfg.route_ttl;
        for r in self.routes.values_mut() {
            if now.since(r.updated).as_secs_f64() > ttl && r.metric < INFINITY_METRIC {
                r.metric = INFINITY_METRIC;
                r.seq += 1; // odd: the break epoch
                r.dirty = true;
            }
        }
        self.my_seq += 2; // even: alive
        let mut entries = vec![Advert {
            dst: self.me,
            seq: self.my_seq,
            metric: 0,
        }];
        for (dst, r) in self.routes.iter_mut() {
            if full || r.dirty {
                entries.push(Advert {
                    dst: *dst,
                    seq: r.seq,
                    metric: r.metric,
                });
                r.dirty = false;
            }
        }
        self.stats.adverts_sent += 1;
        if full {
            self.stats.full_dumps += 1;
        }
        self.stats.entries_advertised += entries.len() as u64;
        ctx.broadcast(DsdvMsg::Update(entries));
    }

    fn dispatch_data(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        packet: AppPacket,
        src: NodeId,
        dst: NodeId,
        ttl: u8,
    ) {
        if dst == self.me {
            self.stats.data_delivered += 1;
            ctx.deliver_app(packet);
            return;
        }
        if ttl == 0 {
            self.stats.data_dropped += 1;
            return;
        }
        match self.next_hop(dst) {
            Some(hop) => {
                self.stats.data_forwarded += 1;
                ctx.unicast(
                    hop,
                    DsdvMsg::Data {
                        packet,
                        src,
                        dst,
                        ttl: ttl - 1,
                    },
                );
            }
            None => {
                // proactive protocol: no on-demand search — buffer briefly
                // in case the next advertisement brings a route
                let q = self.pending.entry(dst).or_default();
                if q.len() >= self.cfg.buffer_cap {
                    q.remove(0);
                    self.stats.data_dropped += 1;
                }
                q.push((packet, src));
            }
        }
    }

    fn flush_pending(&mut self, ctx: &mut Ctx<'_, Self>) {
        let ready: Vec<NodeId> = self
            .pending
            .keys()
            .copied()
            .filter(|d| self.next_hop(*d).is_some())
            .collect();
        for dst in ready {
            for (packet, src) in self.pending.remove(&dst).unwrap_or_default() {
                self.dispatch_data(ctx, packet, src, dst, DATA_TTL);
            }
        }
    }
}

impl Protocol for Dsdv {
    type Msg = DsdvMsg;
    type Timer = DsdvTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        let stagger = ctx.rng().gen_range(0.0..self.cfg.advert_interval);
        ctx.set_timer_secs(stagger, DsdvTimer::Advertise);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, _kind: FrameKind, msg: &DsdvMsg) {
        let now = ctx.now();
        match msg {
            DsdvMsg::Update(entries) => {
                // the sender itself is a 0-hop... 1-hop neighbour
                for adv in entries {
                    self.consider(now, src, *adv);
                }
                self.flush_pending(ctx);
            }
            DsdvMsg::Data {
                packet,
                src: s,
                dst,
                ttl,
            } => {
                self.dispatch_data(ctx, *packet, *s, *dst, *ttl);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: DsdvTimer) {
        match timer {
            DsdvTimer::Advertise => {
                self.advert_count += 1;
                let full = self.advert_count.is_multiple_of(self.cfg.full_dump_every);
                self.advertise(ctx, full);
                let jitter = 1.0 + 0.1 * (ctx.rng().gen::<f64>() * 2.0 - 1.0);
                ctx.set_timer_secs(self.cfg.advert_interval * jitter, DsdvTimer::Advertise);
            }
        }
    }

    fn on_app_send(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, packet: AppPacket) {
        self.dispatch_data(ctx, packet, self.me, dst, DATA_TTL);
    }

    fn on_unicast_failed(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, msg: &DsdvMsg) {
        // the neighbour is gone: poison every route through it with an odd
        // (break-epoch) sequence and advertise the change at once
        let mut poisoned = false;
        for r in self.routes.values_mut() {
            if r.next_hop == dst && r.metric < INFINITY_METRIC {
                r.metric = INFINITY_METRIC;
                r.seq += 1;
                r.dirty = true;
                poisoned = true;
            }
        }
        if poisoned {
            self.stats.breaks_advertised += 1;
            // immediate triggered (incremental) update
            let now_entries: Vec<Advert> = self
                .routes
                .iter()
                .filter(|(_, r)| r.dirty)
                .map(|(d, r)| Advert {
                    dst: *d,
                    seq: r.seq,
                    metric: r.metric,
                })
                .collect();
            for r in self.routes.values_mut() {
                r.dirty = false;
            }
            self.stats.adverts_sent += 1;
            self.stats.entries_advertised += now_entries.len() as u64;
            ctx.broadcast(DsdvMsg::Update(now_entries));
        }
        // our own data packet on that hop is lost (DSDV has no local repair)
        if matches!(msg, DsdvMsg::Data { .. }) {
            self.stats.data_dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet::{FlowSet, HostSetup, Point2, SimDuration, World, WorldConfig};
    use mobility::MobilityTrace;
    use traffic::{CbrFlow, FlowId};

    const HORIZON: SimTime = SimTime(2_000_000_000_000);

    fn chain(n: u32) -> Vec<HostSetup> {
        (0..n)
            .map(|i| {
                HostSetup::paper(MobilityTrace::stationary(
                    Point2::new(20.0 + i as f64 * 240.0, 500.0),
                    HORIZON,
                ))
            })
            .collect()
    }

    fn world(hosts: Vec<HostSetup>, flows: FlowSet, seed: u64) -> World<Dsdv> {
        World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
            Dsdv::new(DsdvConfig::default(), id)
        })
    }

    #[test]
    fn tables_converge_across_a_chain() {
        let mut w = world(chain(5), FlowSet::default(), 1);
        w.run_until(SimTime::from_secs(15));
        // node 0 knows a route to node 4, four hops away, via node 1
        let p = w.protocol(NodeId(0));
        assert_eq!(p.next_hop(NodeId(4)), Some(NodeId(1)));
        assert_eq!(p.metric_to(NodeId(4)), Some(4));
        // every node knows every other node
        for i in 0..5u32 {
            assert_eq!(w.protocol(NodeId(i)).route_count(), 4, "node {i}");
        }
    }

    #[test]
    fn data_flows_without_on_demand_discovery() {
        let flows = FlowSet::new(vec![CbrFlow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(4),
            packet_bytes: 512,
            interval: SimDuration::from_secs(1),
            start: SimTime::from_secs(10), // after convergence
            stop: SimTime::from_secs(40),
            burst: None,
        }]);
        let mut w = world(chain(5), flows, 2);
        w.run_until(SimTime::from_secs(45));
        let pdr = w.ledger().delivery_rate().unwrap();
        assert!(pdr >= 0.95, "pdr {pdr}");
        // latency has no discovery spike: pure per-hop costs
        let lat = w.ledger().mean_latency_ms().unwrap();
        assert!(lat < 20.0, "latency {lat} ms");
    }

    #[test]
    fn broken_links_are_poisoned_with_odd_seq() {
        let mut w = world(chain(3), FlowSet::default(), 3);
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.protocol(NodeId(0)).next_hop(NodeId(2)), Some(NodeId(1)));
        // kill the middle relay
        w.kill_node(NodeId(1));
        w.run_until(SimTime::from_secs(40));
        // node 0's routes through 1 eventually become unreachable (stale
        // timeout poisons them even without traffic)
        let m = w.protocol(NodeId(0)).metric_to(NodeId(2));
        assert!(
            m.is_none() || m == Some(INFINITY_METRIC),
            "route should be poisoned or expired, metric {m:?}"
        );
    }

    #[test]
    fn proactive_overhead_is_constant_background() {
        // with zero traffic DSDV still chatters: that is its signature
        let mut w = world(chain(4), FlowSet::default(), 4);
        w.run_until(SimTime::from_secs(30));
        let adverts: u64 = (0..4).map(|i| w.protocol(NodeId(i)).stats.adverts_sent).sum();
        // 4 nodes × ~20 advertisement rounds in 30 s
        assert!(adverts >= 60, "adverts {adverts}");
        let dumps: u64 = (0..4).map(|i| w.protocol(NodeId(i)).stats.full_dumps).sum();
        assert!(dumps >= 4, "periodic full dumps expected, got {dumps}");
    }

    #[test]
    fn fresher_sequence_wins_over_shorter_metric() {
        let mut d = Dsdv::new(DsdvConfig::default(), NodeId(0));
        let now = SimTime::from_secs(1);
        d.consider(
            now,
            NodeId(1),
            Advert {
                dst: NodeId(9),
                seq: 10,
                metric: 1,
            },
        );
        assert_eq!(d.next_hop(NodeId(9)), Some(NodeId(1)));
        assert_eq!(d.metric_to(NodeId(9)), Some(2));
        // older seq with a better metric: rejected
        d.consider(
            now,
            NodeId(2),
            Advert {
                dst: NodeId(9),
                seq: 8,
                metric: 0,
            },
        );
        assert_eq!(d.next_hop(NodeId(9)), Some(NodeId(1)));
        // same seq, better metric: adopted
        d.consider(
            now,
            NodeId(3),
            Advert {
                dst: NodeId(9),
                seq: 10,
                metric: 0,
            },
        );
        assert_eq!(d.next_hop(NodeId(9)), Some(NodeId(3)));
        // newer seq, worse metric: adopted (freshness dominates)
        d.consider(
            now,
            NodeId(4),
            Advert {
                dst: NodeId(9),
                seq: 12,
                metric: 5,
            },
        );
        assert_eq!(d.next_hop(NodeId(9)), Some(NodeId(4)));
    }

    #[test]
    fn own_row_is_never_overwritten() {
        let mut d = Dsdv::new(DsdvConfig::default(), NodeId(7));
        d.consider(
            SimTime::from_secs(1),
            NodeId(1),
            Advert {
                dst: NodeId(7),
                seq: 999,
                metric: 3,
            },
        );
        assert_eq!(d.route_count(), 0);
    }
}
