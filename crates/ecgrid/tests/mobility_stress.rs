//! High-mobility stress tests: ECGRID under the paper's 10 m/s regime,
//! buffering bounds, and gateway handoff (TableXfer) correctness.

use ecgrid::{Ecgrid, EcgridConfig, Role};
use manet::{FlowSet, GridCoord, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig};
use mobility::{MobilityModel, MobilityTrace, RandomWaypoint, Segment};
use traffic::{CbrFlow, FlowId, FlowSpec};

const HORIZON: SimTime = SimTime(3_000_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

#[test]
fn fast_mobility_keeps_the_protocol_stable() {
    // 60 hosts at up to 10 m/s for 200 s: gateways churn constantly; the
    // run must stay live, deliver most packets, and keep per-grid
    // uniqueness *eventually* (we check a weaker, checkable invariant:
    // the run finishes and delivery stays reasonable)
    let seed = 31;
    let rngs = manet::sim_engine::RngFactory::new(seed);
    let model = RandomWaypoint::paper(10.0, 0.0);
    let end = SimTime::from_secs(200);
    let horizon = end + SimDuration::from_secs(10);
    let hosts: Vec<HostSetup> = (0..60)
        .map(|i| HostSetup::paper(model.build_trace(&mut rngs.stream("mobility", i), horizon)))
        .collect();
    let ids: Vec<NodeId> = (0..60).map(NodeId).collect();
    let spec = FlowSpec {
        n_flows: 6,
        ..FlowSpec::paper_default(end)
    };
    let flows = FlowSet::random(&mut rngs.stream("traffic", 0), &ids, &spec);
    let mut w = World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    w.run_until(end);
    let pdr = w.ledger().delivery_rate().unwrap();
    assert!(pdr > 0.7, "pdr under churn {pdr}");
    // gateway churn really happened
    let retires: u64 = (0..60).map(|i| w.protocol(NodeId(i)).stats.retires).sum();
    assert!(retires > 20, "expected heavy retiring at 10 m/s, got {retires}");
    // nobody is stuck mid-election forever
    let electing = (0..60)
        .filter(|i| w.protocol(NodeId(*i)).role() == Role::Electing && w.node_alive(NodeId(*i)))
        .count();
    assert!(electing <= 6, "{electing} hosts stuck electing");
}

#[test]
fn replacement_transfers_tables_to_the_newcomer() {
    // a full-battery host drives into a grid whose gateway has a lower
    // level: §3.2 says the newcomer takes over and inherits the tables.
    // Drain the incumbent by making it serve alone for ~250 s first.
    let newcomer_dwell = Segment::rest(SimTime::ZERO, SimTime::from_secs(250), Point2::new(920.0, 920.0));
    let drive = Segment::travel(
        newcomer_dwell.end,
        newcomer_dwell.from,
        Point2::new(155.0, 155.0),
        10.0,
    );
    let rest = Segment::rest(drive.end, HORIZON, drive.end_position());
    let hosts = vec![
        still(150.0, 150.0), // incumbent gateway of (1,1), drains while serving alone
        HostSetup::paper(MobilityTrace::new(vec![newcomer_dwell, drive, rest])),
        still(950.0, 950.0), // companion at the corner-grid center: it wins
                             // that grid's election so the newcomer SLEEPS
                             // through the dwell phase and arrives at upper
                             // level while the incumbent has drained
    ];
    let mut w = World::new(WorldConfig::paper_default(8), hosts, FlowSet::default(), |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    // the incumbent serves alone, so every load-balance retire re-elects
    // it; by the newcomer's arrival (~360 s) the incumbent sits at
    // boundary level (~310 J burnt) while the newcomer — asleep for 250 s,
    // then briefly gatewaying empty grids en route — is still upper
    w.run_until(SimTime::from_secs(400));
    assert_eq!(w.node_cell(NodeId(1)), GridCoord::new(1, 1));
    let p1 = w.protocol(NodeId(1));
    assert!(
        p1.is_gateway(),
        "higher-level newcomer must take over, got {:?} (gw {:?})",
        p1.role(),
        p1.gateway()
    );
    // the ex-incumbent yielded
    assert_ne!(w.protocol(NodeId(0)).role(), Role::Gateway);
}

#[test]
fn gateway_buffer_is_bounded_per_destination() {
    // a burst of 100 packets toward a sleeping destination: the gateway
    // buffers at most `buffer_cap` (64) and the overflow is dropped, not
    // leaked or crashed on
    let hosts = vec![
        still(50.0, 50.0),  // gateway (0,0)
        still(30.0, 70.0),  // sleeping destination
        still(250.0, 50.0), // source, neighbour grid gateway
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(2),
        dst: NodeId(1),
        packet_bytes: 512,
        interval: SimDuration::from_millis(2), // 500 pkt/s burst
        start: SimTime::from_secs(10),
        stop: SimTime::from_secs_f64(10.2),
        burst: None,
    }]);
    let cfg = EcgridConfig {
        forward_wake_wait: 0.5,
        ..EcgridConfig::default()
    };
    let mut w = World::new(WorldConfig::paper_default(12), hosts, flows, move |id| {
        Ecgrid::new(cfg, id)
    });
    w.run_until(SimTime::from_secs(20));
    let ledger = w.ledger();
    assert_eq!(ledger.sent_count(), 100);
    // some delivered (buffered + flushed after the page), some dropped
    assert!(ledger.delivered_count() > 0, "buffered packets must flush");
    let dropped: u64 = (0..3).map(|i| w.protocol(NodeId(i)).stats.data_dropped).sum();
    assert!(
        dropped > 0 || ledger.delivered_count() >= 95,
        "either the cap dropped overflow or nearly everything made it: \
         delivered {} dropped {dropped}",
        ledger.delivered_count()
    );
}

#[test]
fn constant_churn_does_not_leak_pending_state() {
    // drive a small fast swarm for a while and make sure route/pending
    // structures stay bounded (spot-check through route_count)
    let seed = 77;
    let rngs = manet::sim_engine::RngFactory::new(seed);
    let model = RandomWaypoint::paper(10.0, 0.0);
    let end = SimTime::from_secs(300);
    let horizon = end + SimDuration::from_secs(10);
    let hosts: Vec<HostSetup> = (0..30)
        .map(|i| HostSetup::paper(model.build_trace(&mut rngs.stream("mobility", i), horizon)))
        .collect();
    let ids: Vec<NodeId> = (0..30).map(NodeId).collect();
    let spec = FlowSpec {
        n_flows: 4,
        ..FlowSpec::paper_default(end)
    };
    let flows = FlowSet::random(&mut rngs.stream("traffic", 0), &ids, &spec);
    let mut w = World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    w.run_until(end);
    for i in 0..30u32 {
        let routes = w.protocol(NodeId(i)).route_count();
        assert!(routes <= 60, "node {i} accumulated {routes} routes");
    }
}
