//! End-to-end behavioural tests for ECGRID on the full simulator.

use ecgrid::{Ecgrid, EcgridConfig, Role};
use manet::{
    FlowSet, GridCoord, HostSetup, NodeId, Point2, RadioMode, SimDuration, SimTime, World, WorldConfig,
};
use mobility::{MobilityTrace, Segment};
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(3_000_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

fn ec_world(hosts: Vec<HostSetup>, flows: FlowSet, seed: u64) -> World<Ecgrid> {
    World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    })
}

fn flow(id: u32, src: u32, dst: u32, start_s: u64, stop_s: u64) -> CbrFlow {
    CbrFlow {
        id: FlowId(id),
        src: NodeId(src),
        dst: NodeId(dst),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(start_s),
        stop: SimTime::from_secs(stop_s),
        burst: None,
    }
}

/// Three hosts per grid in a row of three grids.
fn three_grid_hosts() -> Vec<HostSetup> {
    vec![
        // grid (0,0): node 0 at center, 1 and 2 off-center
        still(50.0, 50.0),
        still(20.0, 30.0),
        still(80.0, 70.0),
        // grid (2,0): node 3 at center, 4 off-center
        still(250.0, 50.0),
        still(220.0, 20.0),
        // grid (4,0): node 5 at center, 6 and 7 off-center
        still(450.0, 50.0),
        still(430.0, 20.0),
        still(470.0, 80.0),
    ]
}

#[test]
fn one_gateway_per_grid_and_others_sleep() {
    let mut w = ec_world(three_grid_hosts(), FlowSet::default(), 1);
    w.run_until(SimTime::from_secs(10));
    // the grid-center hosts win the election (all levels equal)
    for (gw, members) in [(0u32, vec![1u32, 2]), (3, vec![4]), (5, vec![6, 7])] {
        assert!(w.protocol(NodeId(gw)).is_gateway(), "node {gw} should be gateway");
        assert_eq!(w.node_mode(NodeId(gw)), RadioMode::Idle);
        for m in members {
            assert_eq!(
                w.protocol(NodeId(m)).role(),
                Role::Sleeping,
                "node {m} should sleep"
            );
            assert_eq!(w.node_mode(NodeId(m)), RadioMode::Sleep);
            assert_eq!(w.protocol(NodeId(m)).gateway(), Some(NodeId(gw)));
        }
    }
}

#[test]
fn multi_hop_delivery_between_gateways() {
    // flow between the two edge-grid gateways (0 -> 5): 2 grid hops away
    let flows = FlowSet::new(vec![flow(0, 0, 5, 5, 35)]);
    let mut w = ec_world(three_grid_hosts(), flows, 2);
    w.run_until(SimTime::from_secs(40));
    let ledger = w.ledger();
    assert_eq!(ledger.sent_count(), 30);
    assert!(
        ledger.delivery_rate().unwrap() >= 0.95,
        "pdr {:?}",
        ledger.delivery_rate()
    );
    let lat = ledger.mean_latency_ms().unwrap();
    assert!(lat < 60.0, "latency {lat} ms");
}

#[test]
fn sleeping_destination_is_paged_and_served() {
    // node 7 (a sleeping member of grid (4,0)) is the destination
    let flows = FlowSet::new(vec![flow(0, 0, 7, 5, 25)]);
    let mut w = ec_world(three_grid_hosts(), flows, 3);
    w.run_until(SimTime::from_secs(30));
    let ledger = w.ledger();
    assert!(
        ledger.delivery_rate().unwrap() >= 0.95,
        "pdr {:?}",
        ledger.delivery_rate()
    );
    assert!(w.stats().pages_sent >= 1, "the gateway must page the sleeper");
    // while the flow runs, the destination stays awake; after it stops it
    // goes back to sleep
    assert_eq!(w.protocol(NodeId(7)).role(), Role::Sleeping);
}

#[test]
fn sleeping_source_wakes_and_uses_acq_handshake() {
    // node 6 sleeps in grid (4,0); its application starts a flow at t=10
    let flows = FlowSet::new(vec![flow(0, 6, 0, 10, 30)]);
    let mut w = ec_world(three_grid_hosts(), flows, 4);
    w.run_until(SimTime::from_secs(35));
    assert!(
        w.protocol(NodeId(6)).stats.acqs_sent >= 1,
        "source must handshake with ACQ"
    );
    assert!(
        w.ledger().delivery_rate().unwrap() >= 0.9,
        "pdr {:?}",
        w.ledger().delivery_rate()
    );
}

#[test]
fn energy_aware_election_prefers_higher_level() {
    // node 0 is closest to the center but nearly drained; node 1 has full
    // battery and must win under ECGRID rules
    let mut hosts = vec![still(50.0, 50.0), still(70.0, 60.0), still(30.0, 40.0)];
    // drain node 0 to lower level before start by shrinking its battery
    hosts[0].battery = manet::Battery::with_capacity(50.0); // rbrc tracks consumption fast
    let mut w = World::new(WorldConfig::paper_default(5), hosts, FlowSet::default(), |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    // by election time (~1.2 s) node 0 has consumed ~1 J of 50 J => still
    // upper; instead verify over time: the load-balance retire rotates duty
    w.run_until(SimTime::from_secs(120));
    // node 0's small battery forces early level drops; someone else must
    // have taken over the gateway role by now
    let gw_count = (0..3).filter(|i| w.protocol(NodeId(*i)).is_gateway()).count();
    assert_eq!(gw_count, 1, "exactly one gateway");
    assert!(
        !w.protocol(NodeId(0)).is_gateway(),
        "drained node 0 must have rotated out (role {:?})",
        w.protocol(NodeId(0)).role()
    );
}

#[test]
fn load_balance_rotates_gateway_duty() {
    // three hosts in one grid, no traffic: gateway idles at ~0.86 W while
    // sleepers idle at ~0.16 W; when the gateway's level drops a class it
    // must retire and another host takes over
    let hosts = vec![still(50.0, 50.0), still(40.0, 60.0), still(60.0, 40.0)];
    let mut w = ec_world(hosts, FlowSet::default(), 6);
    w.run_until(SimTime::from_secs(500));
    let retires: u64 = (0..3)
        .map(|i| w.protocol(NodeId(i)).stats.load_balance_retires)
        .sum();
    assert!(retires >= 1, "expected load-balance retires, got {retires}");
    let distinct_gateways = (0..3)
        .filter(|i| w.protocol(NodeId(*i)).stats.became_gateway > 0)
        .count();
    assert!(
        distinct_gateways >= 2,
        "duty must rotate, got {distinct_gateways}"
    );
    // consumption should be far more even than all-idle-on-one-host
    let consumed: Vec<f64> = (0..3).map(|i| w.node_consumed_j(NodeId(i))).collect();
    let max = consumed.iter().cloned().fold(0.0_f64, f64::max);
    let min = consumed.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max / min < 4.0, "rotation should bound the skew: {consumed:?}");
}

#[test]
fn ecgrid_network_outlives_grid_style_idling() {
    // 3 hosts per grid: with rotation and sleep, the *first* death must
    // come well after the 579 s all-idle death time
    let mut w = ec_world(three_grid_hosts(), FlowSet::default(), 7);
    w.run_until(SimTime::from_secs(1200));
    let first_death = w.alive_series().first_time_at_or_below(0.99);
    match first_death {
        None => {} // nobody died in 1200 s: clearly better than 579 s
        Some(t) => assert!(t > 700.0, "first death at {t} s, expected > 700 s"),
    }
}

#[test]
fn gateway_handoff_on_mobility_keeps_grid_served() {
    // node 0 starts as gateway of (0,0) and drives away at t≈20 s;
    // node 1 and 2 stay: one of them must take over
    let leg0 = Segment::rest(SimTime::ZERO, SimTime::from_secs(20), Point2::new(50.0, 50.0));
    let leg1 = Segment::travel(leg0.end, leg0.from, Point2::new(450.0, 50.0), 10.0);
    let rest = Segment::rest(leg1.end, HORIZON, leg1.end_position());
    let mover = MobilityTrace::new(vec![leg0, leg1, rest]);
    let hosts = vec![HostSetup::paper(mover), still(30.0, 60.0), still(60.0, 30.0)];
    let mut w = ec_world(hosts, FlowSet::default(), 8);
    w.run_until(SimTime::from_secs(60));
    // node 0 is long gone from (0,0); someone there is gateway
    assert_ne!(w.node_cell(NodeId(0)), GridCoord::new(0, 0));
    let local_gw = [1u32, 2]
        .iter()
        .filter(|i| w.protocol(NodeId(**i)).is_gateway() && w.node_cell(NodeId(**i)) == GridCoord::new(0, 0))
        .count();
    assert_eq!(local_gw, 1, "the abandoned grid must re-elect");
    let retired: u64 = w.protocol(NodeId(0)).stats.retires;
    assert!(retired >= 1, "the departing gateway must retire");
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let flows = FlowSet::new(vec![flow(0, 1, 7, 5, 50)]);
        let mut w = ec_world(three_grid_hosts(), flows, 99);
        w.run_until(SimTime::from_secs(60));
        (
            *w.stats(),
            w.ledger().delivered_count(),
            w.ledger().mean_latency_ms(),
            (0..8).map(|i| w.node_consumed_j(NodeId(i))).collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn empty_grid_arrival_declares_itself_gateway() {
    // a single host: elects itself, stays gateway
    let mut w = ec_world(vec![still(550.0, 550.0)], FlowSet::default(), 11);
    w.run_until(SimTime::from_secs(5));
    assert!(w.protocol(NodeId(0)).is_gateway());
    assert_eq!(w.protocol(NodeId(0)).grid(), GridCoord::new(5, 5));
}

#[test]
fn sleeper_dwell_checks_extend_sleep_in_place() {
    // shorten the dwell cap so checks fire between gateway rotations
    // (stationary hosts have zero velocity, so the estimate hits the cap)
    let cfg = EcgridConfig {
        dwell_cap: 30.0,
        ..EcgridConfig::default()
    };
    let mut w = World::new(
        WorldConfig::paper_default(12),
        three_grid_hosts(),
        FlowSet::default(),
        move |id| Ecgrid::new(cfg, id),
    );
    w.run_until(SimTime::from_secs(200));
    // stationary sleepers never leave their grid: every dwell check must
    // re-arm in place rather than wake the host
    let ext: u64 = [1u32, 2, 4, 6, 7]
        .iter()
        .map(|i| w.protocol(NodeId(*i)).stats.dwell_extensions)
        .sum();
    assert!(ext >= 10, "expected dwell extensions, got {ext}");
    // and the sleepers are still asleep
    for i in [1u32, 2, 4, 6, 7] {
        assert_eq!(w.protocol(NodeId(i)).role(), Role::Sleeping);
    }
}
