//! Failure injection: the no-gateway events of §3.2 ("in case a gateway is
//! down because of an accident and the RETIRE message is not issued in
//! time") and related recovery paths.

use ecgrid::{Ecgrid, EcgridConfig};
use manet::{Battery, FlowSet, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig};
use mobility::MobilityTrace;
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(3_000_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

/// A host whose battery dies early (without any chance to say RETIRE at
/// the very end — its battery is sized to die mid-run "by accident").
fn frail(x: f64, y: f64, joules: f64) -> HostSetup {
    HostSetup {
        battery: Battery::with_capacity(joules),
        ..HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
    }
}

#[test]
fn silent_gateway_death_triggers_reelection() {
    // node 0 wins the first election (center-closest) and is then crashed
    // at t=40 s with no RETIRE — the paper's "accident".  Condition 1: an
    // active host misses the gateway's HELLOs and starts an election.  To
    // keep a member awake (condition 1 proper), give it traffic.
    let hosts = vec![
        still(50.0, 50.0), // gateway, crashed at t=40
        still(30.0, 70.0),
        still(70.0, 30.0),
        still(250.0, 50.0), // neighbour grid endpoint
    ];
    // nodes 1 -> 3 stream continuously so node 1 stays awake and notices
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(1),
        dst: NodeId(3),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(2),
        stop: SimTime::from_secs(120),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(5), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    w.run_until(SimTime::from_secs(40));
    assert!(
        w.protocol(NodeId(0)).is_gateway(),
        "node 0 must hold duty before the crash"
    );
    w.kill_node(NodeId(0));
    w.run_until(SimTime::from_secs(120));
    assert!(!w.node_alive(NodeId(0)), "crashed gateway must be dead");
    // someone else must have taken over grid (0,0)
    let successor = [1u32, 2]
        .iter()
        .filter(|i| w.protocol(NodeId(**i)).is_gateway())
        .count();
    assert_eq!(successor, 1, "grid must re-elect after the silent death");
    let events: u64 = [1u32, 2]
        .iter()
        .map(|i| w.protocol(NodeId(*i)).stats.no_gateway_events)
        .sum();
    assert!(events >= 1, "a no-gateway event must have been detected");
    // and the flow keeps going afterwards
    let pdr = w.ledger().delivery_rate().unwrap();
    assert!(pdr > 0.8, "flow must survive the gateway death: pdr {pdr}");
}

#[test]
fn sleeping_host_detects_dead_gateway_via_acq() {
    // node 1 sleeps; its gateway (node 0) is crashed; when node 1's
    // application wants to transmit, its ACQ goes unanswered ->
    // no-gateway event (§3.2 condition 2) -> it elects itself and routes.
    let hosts = vec![
        still(50.0, 50.0),  // gateway of (0,0), crashed at t=30
        still(30.0, 70.0),  // sleeper, becomes the source at t=60
        still(250.0, 50.0), // destination area gateway
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(1),
        dst: NodeId(2),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(60), // well after node 0 died
        stop: SimTime::from_secs(90),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(6), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    w.run_until(SimTime::from_secs(30));
    w.kill_node(NodeId(0));
    w.run_until(SimTime::from_secs(100));
    assert!(!w.node_alive(NodeId(0)));
    let p1 = w.protocol(NodeId(1));
    assert!(p1.stats.acqs_sent >= 1, "the waking source must have tried ACQ");
    assert!(
        p1.stats.no_gateway_events >= 1,
        "unanswered ACQ must trigger a no-gateway event"
    );
    assert!(p1.is_gateway(), "alone in the grid, it elects itself");
    let pdr = w.ledger().delivery_rate().unwrap();
    assert!(pdr > 0.8, "traffic must flow after recovery: pdr {pdr}");
}

#[test]
fn gateway_retires_before_battery_empties() {
    // §3.2: "the gateway will issue a broadcast sequence and a RETIRE
    // message before its battery runs out" — driven by the level-drop
    // rule.  With two hosts the duty must bounce between them.
    let hosts = vec![still(50.0, 50.0), still(60.0, 60.0)];
    let mut w = World::new(WorldConfig::paper_default(7), hosts, FlowSet::default(), |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    // a lone permanent gateway dies at 579 s; with rotation, the pair's
    // combined budget (1000 J at ~1.03 W) carries both well past 700 s
    w.run_until(SimTime::from_secs(700));
    let terms: u64 = (0..2).map(|i| w.protocol(NodeId(i)).stats.became_gateway).sum();
    assert!(terms >= 3, "duty must alternate, got {terms} terms");
    for i in 0..2u32 {
        assert!(w.node_alive(NodeId(i)), "host {i} should still be alive at 700 s");
    }
}

#[test]
fn data_for_dead_local_host_is_dropped_not_looped() {
    // destination dies mid-flow; the gateway must not loop or crash, and
    // undelivered packets show up as losses only
    let hosts = vec![
        still(50.0, 50.0),       // gateway (0,0)
        frail(30.0, 60.0, 20.0), // destination, dies at ~40 s (sleeping earlier)
        still(250.0, 50.0),      // source in neighbour grid
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(2),
        dst: NodeId(1),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(180),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(8), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    w.run_until(SimTime::from_secs(200));
    assert!(!w.node_alive(NodeId(1)));
    // early packets (while alive/sleeping) arrive; later ones are lost
    let ledger = w.ledger();
    assert!(ledger.delivered_count() >= 10, "early packets must arrive");
    assert!(ledger.delivery_rate().unwrap() < 0.9, "late packets must be lost");
    // the simulation kept running to the end without event storms
    assert!(w.now() >= SimTime::from_secs(200));
}

#[test]
fn whole_grid_death_leaves_neighbors_functional() {
    // all hosts of the middle grid die; a flow crossing that grid must
    // re-discover around it... or fail cleanly if no detour exists.
    // Here grids are on a line with 250 m radio range: (0,0) can reach
    // (2,0) directly (200 m apart corners), so a detour exists.
    let hosts = vec![
        still(50.0, 50.0),        // src grid (0,0)
        frail(150.0, 50.0, 25.0), // middle grid (1,0), dies ~30 s
        still(250.0, 50.0),       // dst grid (2,0)
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(2),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(120),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(9), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    w.run_until(SimTime::from_secs(130));
    assert!(!w.node_alive(NodeId(1)));
    let pdr = w.ledger().delivery_rate().unwrap();
    assert!(pdr > 0.85, "flow must survive the middle grid dying: pdr {pdr}");
}
