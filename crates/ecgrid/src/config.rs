//! ECGRID protocol parameters.
//!
//! The paper specifies the mechanisms but not every constant; defaults
//! below are conventional values for 2003-era MANET protocols (1 s HELLO
//! beacons, a few beacon periods of silence before declaring a neighbour
//! gone) and are exercised by the ablation benches.

use grid_common::SearchStrategy;

/// Tunable protocol constants (times in seconds).
#[derive(Clone, Copy, Debug)]
pub struct EcgridConfig {
    /// Period of the HELLO beacon for active hosts ("HELLO period", §3.1).
    pub hello_interval: f64,
    /// Uniform jitter applied to each HELLO send (fraction of interval),
    /// decorrelating beacons that would otherwise collide.
    pub hello_jitter: f64,
    /// Length of the election window: hosts collect HELLOs this long
    /// before applying the gateway-election rules.
    pub election_window: f64,
    /// A member that has not heard its gateway's HELLO for this long
    /// declares a no-gateway event (§3.2 condition 1).
    pub gateway_silence: f64,
    /// Cap on the dwell-timer duration of a sleeping host.
    pub dwell_cap: f64,
    /// An active member with no pending traffic sleeps after this long;
    /// sends of own data and deliveries of own data re-arm it (a CBR
    /// endpoint therefore stays awake while its flow is active).
    pub sleep_quiet_delay: f64,
    /// τ: gap between paging the grid awake and broadcasting RETIRE
    /// (§3.2: "after waiting for time, τ").
    pub retire_wait: f64,
    /// How long the gateway waits after paging a sleeping destination
    /// before flushing its buffered packets to it.
    pub forward_wake_wait: f64,
    /// A host that sent ACQ and got no gateway HELLO back within this time
    /// declares a no-gateway event (§3.2 condition 2).
    pub acq_timeout: f64,
    /// Route-discovery retry timeout per attempt.
    pub discovery_timeout: f64,
    /// Discovery attempts before the pending packets are dropped; the
    /// second and later attempts search globally (§3.3: "another round of
    /// route searching should be initialized to search all areas").
    pub max_discovery_attempts: u32,
    /// Routing-table entry lifetime (seconds).
    pub route_ttl: f64,
    /// Neighbour-gateway cache entry lifetime (seconds).
    pub neighbor_ttl: f64,
    /// How the first, confined search round builds its area from the
    /// destination's last known grid (§3.3; retries always go global).
    pub search: SearchStrategy,
    /// Max packets buffered per destination at a gateway.
    pub buffer_cap: usize,
    /// A local host counts as certainly-awake this long after its last
    /// frame; otherwise the gateway pages it before forwarding.
    pub host_fresh_secs: f64,
    /// Minimum spacing of reactive gateway HELLO responses (to arrival
    /// HELLOs and ACQs), preventing response storms.
    pub gw_response_min_gap: f64,
    /// How many times a gateway re-pages an unresponsive sleeping
    /// destination (with exponentially backed-off wake waits) before the
    /// buffered packet is dropped and the host forgotten.  Bounds the
    /// implicit page→flush→fail retry loop that a lossy paging channel
    /// would otherwise spin until the data TTL ran out.
    pub max_page_attempts: u32,
    /// Grace period a member woken by a retiring gateway's grid page
    /// waits for the RETIRE handover; if neither the RETIRE nor any
    /// gateway HELLO arrives, the member declares a no-gateway event
    /// instead of idling in a gateway-less grid.
    pub handoff_grace: f64,
    /// A host continuously asleep this long wakes once to revalidate that
    /// its grid still has a live gateway (orphaned-cell detection: a
    /// crashed gateway can never page its sleepers).
    pub orphan_check_secs: f64,
}

impl Default for EcgridConfig {
    fn default() -> Self {
        EcgridConfig {
            hello_interval: 1.0,
            hello_jitter: 0.1,
            election_window: 1.0,
            gateway_silence: 3.0,
            dwell_cap: 300.0,
            sleep_quiet_delay: 1.5,
            retire_wait: 0.03,
            forward_wake_wait: 0.008,
            acq_timeout: 0.25,
            discovery_timeout: 0.5,
            max_discovery_attempts: 3,
            route_ttl: 60.0,
            neighbor_ttl: 3.5,
            search: SearchStrategy::CoveringRect,
            buffer_cap: 64,
            host_fresh_secs: 1.6,
            gw_response_min_gap: 0.2,
            max_page_attempts: 5,
            handoff_grace: 1.0,
            orphan_check_secs: 60.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EcgridConfig::default();
        assert!(c.hello_interval > 0.0);
        assert!(
            c.gateway_silence > 2.0 * c.hello_interval,
            "watchdog must tolerate one lost HELLO"
        );
        assert!(
            c.election_window >= c.hello_interval,
            "must collect a full beacon round"
        );
        assert!(c.retire_wait > 0.005, "must exceed the RAS wake latency");
        assert!(c.forward_wake_wait > 0.005, "must exceed the RAS wake latency");
        assert!(c.max_discovery_attempts >= 2, "need a global retry round");
        assert!(c.max_page_attempts >= 2, "need at least one page retry");
        assert!(
            c.handoff_grace > c.retire_wait,
            "grace must outlast the RETIRE handover"
        );
        assert!(
            c.orphan_check_secs > c.gateway_silence,
            "orphan check is the slow path behind the watchdog"
        );
    }
}
