//! The ECGRID state machine (see crate docs for the paper mapping).

use crate::config::EcgridConfig;
use crate::msg::{EcMsg, EcTimer};
use grid_common::{
    elect_gateway, HelloInfo, NeighborGateways, RouteSnapshot, RouteTable, Rrep, Rreq, RreqSeen,
};
use manet::{
    AppPacket, Ctx, EnergyLevel, EventKind, FrameKind, GridCoord, GridRect, NodeId, PageSignal, Protocol,
    SimDuration, SimTime,
};
use rand::Rng;
use std::collections::{HashMap, VecDeque};

/// Initial TTL of data packets in grid-by-grid transit.
const DATA_TTL: u8 = 32;

/// The host's role in its grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Collecting HELLOs; will apply the election rules when the window
    /// closes.
    Electing,
    /// Active non-gateway that knows its gateway.
    Member,
    /// Transceiver off; only the RAS can reach this host.
    Sleeping,
    /// The gateway of the host's grid.
    Gateway,
}

/// Per-host protocol counters (inspected by tests and experiment reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EcStats {
    pub elections_started: u64,
    pub became_gateway: u64,
    pub retires: u64,
    pub load_balance_retires: u64,
    pub no_gateway_events: u64,
    pub rreqs_sent: u64,
    pub rreqs_forwarded: u64,
    pub rreps_sent: u64,
    pub data_forwarded: u64,
    pub data_delivered: u64,
    pub data_dropped: u64,
    pub acqs_sent: u64,
    pub pages_sent: u64,
    pub sleeps: u64,
    pub dwell_extensions: u64,
    /// Re-pages of an unresponsive sleeping destination (attempt ≥ 1).
    pub page_retries: u64,
    /// Buffered packets abandoned after `max_page_attempts` failed pages.
    pub page_gave_up: u64,
    /// Handoff grace periods that expired without a successor gateway.
    pub handoff_timeouts: u64,
    /// Orphan revalidation wake-ups of long-sleeping hosts.
    pub orphan_checks: u64,
}

#[derive(Clone, Copy, Debug)]
struct HostEntry {
    last_seen: SimTime,
    /// Host-table status field: true once the host announced sleep (or a
    /// unicast to it failed); cleared whenever it is heard again.
    asleep: bool,
}

impl HostEntry {
    fn awake(now: SimTime) -> Self {
        HostEntry {
            last_seen: now,
            asleep: false,
        }
    }
}

/// One ECGRID instance (one per host).
pub struct Ecgrid {
    cfg: EcgridConfig,
    me: NodeId,
    role: Role,
    /// The grid this host believes it is in (sleepers learn changes only
    /// when their dwell timer wakes them).
    my_grid: GridCoord,
    /// Gateway of `my_grid` as last known.
    gateway: Option<NodeId>,
    /// Level when (last) elected; a drop below it triggers a load-balance
    /// retire.
    level_at_election: EnergyLevel,
    routes: RouteTable,
    seen: RreqSeen,
    neighbors: NeighborGateways,
    /// Gateway only: hosts known to live in my grid.
    host_table: HashMap<NodeId, HostEntry>,
    /// HELLOs collected during the current election window.
    candidates: Vec<HelloInfo>,
    /// Epoch counters making stale timers harmless.
    election_epoch: u32,
    watch_epoch: u32,
    dwell_epoch: u32,
    quiet_epoch: u32,
    acq_epoch: u32,
    handoff_epoch: u32,
    /// My destination sequence number.
    my_seq: u32,
    rreq_counter: u32,
    /// Gateway: packets awaiting a route (keyed by destination).
    pending_route: HashMap<NodeId, VecDeque<EcMsg>>,
    /// Gateway: packets awaiting a paged local host.
    pending_wake: HashMap<NodeId, VecDeque<EcMsg>>,
    /// Gateway: how many consecutive pages toward each sleeping host went
    /// unanswered (any frame from the host clears its entry).
    page_attempts: HashMap<NodeId, u32>,
    /// When the current uninterrupted sleep began (orphan detection).
    sleep_since: SimTime,
    /// Discoveries in flight: dst -> attempt.
    discovering: HashMap<NodeId, u32>,
    /// Last known grid of remote destinations (learned from RREPs; may be
    /// pre-seeded through [`Ecgrid::seed_location`]).  Used to confine the
    /// first search round to the covering rectangle (§3.3).
    dst_hints: HashMap<NodeId, GridCoord>,
    /// Member: own packets awaiting a confirmed gateway (ACQ handshake).
    pending_own: Vec<(NodeId, AppPacket)>,
    awaiting_acq: bool,
    last_gw_hello: SimTime,
    last_own_hello: SimTime,
    hello_epoch: u32,
    /// Snapshot carried from gateway duty into a pending RETIRE.
    retiring: Option<(GridCoord, RouteSnapshot, Vec<NodeId>)>,
    /// The cell this host's trace recorder believes it is gateway of
    /// (keeps GatewayElect/GatewayRetire strictly alternating per host).
    gw_traced: Option<GridCoord>,
    pub stats: EcStats,
}

impl Ecgrid {
    pub fn new(cfg: EcgridConfig, me: NodeId) -> Self {
        Ecgrid {
            cfg,
            me,
            role: Role::Electing,
            my_grid: GridCoord::new(0, 0),
            gateway: None,
            level_at_election: EnergyLevel::Upper,
            routes: RouteTable::new(SimDuration::from_secs_f64(cfg.route_ttl)),
            seen: RreqSeen::default(),
            neighbors: NeighborGateways::new(SimDuration::from_secs_f64(cfg.neighbor_ttl)),
            host_table: HashMap::new(),
            candidates: Vec::new(),
            election_epoch: 0,
            watch_epoch: 0,
            dwell_epoch: 0,
            quiet_epoch: 0,
            acq_epoch: 0,
            handoff_epoch: 0,
            my_seq: 0,
            rreq_counter: 0,
            pending_route: HashMap::new(),
            pending_wake: HashMap::new(),
            page_attempts: HashMap::new(),
            sleep_since: SimTime::ZERO,
            discovering: HashMap::new(),
            dst_hints: HashMap::new(),
            pending_own: Vec::new(),
            awaiting_acq: false,
            last_gw_hello: SimTime::ZERO,
            last_own_hello: SimTime::ZERO,
            hello_epoch: 0,
            retiring: None,
            gw_traced: None,
            stats: EcStats::default(),
        }
    }

    pub fn role(&self) -> Role {
        self.role
    }

    pub fn is_gateway(&self) -> bool {
        self.role == Role::Gateway
    }

    pub fn gateway(&self) -> Option<NodeId> {
        self.gateway
    }

    pub fn grid(&self) -> GridCoord {
        self.my_grid
    }

    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Location-service hook: tell this host which grid `dst` was last
    /// seen in, so its first route search can be confined (the paper's
    /// Fig. 2 "supposes" the source has this information).
    pub fn seed_location(&mut self, dst: NodeId, grid: GridCoord) {
        self.dst_hints.insert(dst, grid);
    }

    // ----- small helpers ----------------------------------------------

    /// Reconcile the trace's view of this host's gateway tenure with
    /// `role`.  Called after every role transition; emits GatewayElect /
    /// GatewayRetire so the two strictly alternate per (host, cell) — the
    /// invariant the trace test-suite checks.
    fn sync_gateway_trace(&mut self, ctx: &mut Ctx<'_, Self>) {
        let me = self.me;
        let now_gw = self.role == Role::Gateway;
        match (self.gw_traced, now_gw) {
            (None, true) => {
                let cell = self.my_grid;
                self.gw_traced = Some(cell);
                ctx.emit(|| EventKind::GatewayElect { node: me, cell });
            }
            (Some(old), false) => {
                self.gw_traced = None;
                ctx.emit(|| EventKind::GatewayRetire { node: me, cell: old });
            }
            (Some(old), true) if old != self.my_grid => {
                let cell = self.my_grid;
                self.gw_traced = Some(cell);
                ctx.emit(|| EventKind::GatewayRetire { node: me, cell: old });
                ctx.emit(|| EventKind::GatewayElect { node: me, cell });
            }
            _ => {}
        }
    }

    fn my_hello(&self, ctx: &mut Ctx<'_, Self>, gflag: bool) -> HelloInfo {
        HelloInfo {
            id: self.me,
            grid: self.my_grid,
            gflag,
            level: ctx.level(),
            dist: ctx.dist_to_center(),
        }
    }

    fn send_hello(&mut self, ctx: &mut Ctx<'_, Self>, gflag: bool) {
        let h = self.my_hello(ctx, gflag);
        self.last_own_hello = ctx.now();
        ctx.broadcast(EcMsg::Hello(h));
    }

    /// (Re)start the periodic HELLO chain.  Bumping the epoch kills any
    /// chain that is still pending, so sleep/wake cycles can never stack
    /// multiple concurrent beacon timers.
    fn arm_hello(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.hello_epoch += 1;
        let jitter = 1.0 + self.cfg.hello_jitter * (ctx.rng().gen::<f64>() * 2.0 - 1.0);
        ctx.set_timer_secs(
            self.cfg.hello_interval * jitter,
            EcTimer::Hello {
                epoch: self.hello_epoch,
            },
        );
    }

    /// Continue the current HELLO chain.
    fn rearm_hello(&mut self, ctx: &mut Ctx<'_, Self>, epoch: u32) {
        let jitter = 1.0 + self.cfg.hello_jitter * (ctx.rng().gen::<f64>() * 2.0 - 1.0);
        ctx.set_timer_secs(self.cfg.hello_interval * jitter, EcTimer::Hello { epoch });
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.stats.elections_started += 1;
        self.role = Role::Electing;
        self.gateway = None;
        self.candidates.clear();
        self.election_epoch += 1;
        self.handoff_epoch += 1; // an election supersedes any handoff wait
        self.send_hello(ctx, false);
        self.arm_hello(ctx);
        ctx.set_timer_secs(
            self.cfg.election_window,
            EcTimer::ElectionDecide {
                epoch: self.election_epoch,
            },
        );
        ctx.note(|| "election started".into());
        self.sync_gateway_trace(ctx);
    }

    fn no_gateway_event(&mut self, ctx: &mut Ctx<'_, Self>, why: &str) {
        self.stats.no_gateway_events += 1;
        ctx.note(|| format!("no-gateway event: {why}"));
        self.start_election(ctx);
    }

    fn arm_gateway_watch(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.watch_epoch += 1;
        ctx.set_timer_secs(
            self.cfg.gateway_silence,
            EcTimer::GatewayWatch {
                epoch: self.watch_epoch,
            },
        );
    }

    fn arm_quiet_sleep(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.quiet_epoch += 1;
        ctx.set_timer_secs(
            self.cfg.sleep_quiet_delay,
            EcTimer::SleepAfterQuiet {
                epoch: self.quiet_epoch,
            },
        );
    }

    fn become_member(&mut self, ctx: &mut Ctx<'_, Self>, gateway: NodeId) {
        self.role = Role::Member;
        self.sync_gateway_trace(ctx);
        self.gateway = Some(gateway);
        self.last_gw_hello = ctx.now();
        self.handoff_epoch += 1;
        self.host_table.clear();
        self.page_attempts.clear();
        self.arm_gateway_watch(ctx);
        self.arm_quiet_sleep(ctx);
        self.flush_pending_own(ctx);
    }

    fn become_gateway(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.stats.became_gateway += 1;
        self.role = Role::Gateway;
        self.sync_gateway_trace(ctx);
        self.handoff_epoch += 1;
        self.gateway = Some(self.me);
        self.level_at_election = ctx.level();
        self.send_hello(ctx, true);
        self.arm_hello(ctx);
        // the election candidates are my initial host table
        let now = ctx.now();
        for c in &self.candidates {
            if c.id != self.me && c.grid == self.my_grid {
                self.host_table.insert(c.id, HostEntry::awake(now));
            }
        }
        self.candidates.clear();
        ctx.note(|| format!("became gateway of {}", self.my_grid));
        // route any packets we were holding as a member
        let own: Vec<(NodeId, AppPacket)> = self.pending_own.drain(..).collect();
        for (dst, packet) in own {
            let msg = EcMsg::Data {
                packet,
                src: self.me,
                dst,
                via_grid: self.my_grid,
                ttl: DATA_TTL,
            };
            self.route_data(ctx, msg);
        }
    }

    /// Member with a confirmed gateway: hand over queued own packets.
    fn flush_pending_own(&mut self, ctx: &mut Ctx<'_, Self>) {
        let Some(gw) = self.gateway else { return };
        self.awaiting_acq = false;
        if self.pending_own.is_empty() {
            return;
        }
        let own: Vec<(NodeId, AppPacket)> = self.pending_own.drain(..).collect();
        for (dst, packet) in own {
            ctx.unicast(
                gw,
                EcMsg::Data {
                    packet,
                    src: self.me,
                    dst,
                    via_grid: self.my_grid,
                    ttl: DATA_TTL,
                },
            );
        }
        self.arm_quiet_sleep(ctx);
    }

    fn go_to_sleep(&mut self, ctx: &mut Ctx<'_, Self>) {
        debug_assert_eq!(self.role, Role::Member);
        // keep the gateway's host-table status accurate (§3)
        if let Some(gw) = self.gateway {
            if gw != self.me {
                ctx.unicast(gw, EcMsg::SleepNotice);
            }
        }
        self.stats.sleeps += 1;
        self.role = Role::Sleeping;
        self.hello_epoch += 1; // kill the beacon chain while asleep
        self.watch_epoch += 1; // invalidate the watchdog while asleep
        self.handoff_epoch += 1; // a sleeper is not waiting on a handoff
        self.sleep_since = ctx.now();
        self.arm_dwell(ctx);
        ctx.sleep();
        ctx.note(|| format!("sleeping in {}", self.my_grid));
    }

    fn arm_dwell(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.dwell_epoch += 1;
        // never sleep past the orphan-revalidation deadline: a crashed
        // gateway can neither beacon nor page, so a sleeper is the only
        // party able to notice its cell went dark
        let slept = ctx.now().since(self.sleep_since).as_secs_f64();
        let until_check = (self.cfg.orphan_check_secs - slept).max(0.05);
        let dwell = ctx
            .estimated_dwell_secs(self.cfg.dwell_cap)
            .max(0.05)
            .min(until_check);
        ctx.set_timer_secs(
            dwell,
            EcTimer::Dwell {
                epoch: self.dwell_epoch,
            },
        );
    }

    /// Wake from sleep into Member state (RAS page, dwell check, own data).
    fn wake_to_member(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.wake();
        self.dwell_epoch += 1; // cancel pending dwell checks
        self.role = Role::Member;
        self.last_gw_hello = ctx.now(); // grace: restart the watchdog window
        self.arm_gateway_watch(ctx);
        self.arm_quiet_sleep(ctx);
        self.arm_hello(ctx);
    }

    // ----- entering / leaving grids ------------------------------------

    /// Arrived in a new grid (awake): HELLO and wait for the gateway.
    fn enter_grid(&mut self, ctx: &mut Ctx<'_, Self>, new: GridCoord) {
        self.my_grid = new;
        self.host_table.clear();
        self.page_attempts.clear();
        self.gateway = None;
        self.role = Role::Electing;
        self.sync_gateway_trace(ctx);
        self.candidates.clear();
        self.election_epoch += 1;
        self.handoff_epoch += 1;
        self.send_hello(ctx, false);
        self.arm_hello(ctx);
        // if nobody answers within a HELLO period, the grid is empty and we
        // declare ourselves (§3.2 "Hosts move into a new grid")
        ctx.set_timer_secs(
            self.cfg.election_window,
            EcTimer::ElectionDecide {
                epoch: self.election_epoch,
            },
        );
    }

    /// Leaving the current grid as gateway: page everyone, then RETIRE.
    fn gateway_leave(&mut self, ctx: &mut Ctx<'_, Self>, old: GridCoord, load_balance: bool) {
        self.stats.retires += 1;
        if load_balance {
            self.stats.load_balance_retires += 1;
        }
        self.stats.pages_sent += 1;
        ctx.page_grid(old);
        self.retiring = Some((
            old,
            self.routes.snapshot(),
            self.host_table.keys().copied().collect(),
        ));
        ctx.set_timer_secs(self.cfg.retire_wait, EcTimer::RetireSend { grid: old });
        ctx.note(|| format!("retiring from {old} (load_balance={load_balance})"));
    }

    // ----- data plane ---------------------------------------------------

    /// Gateway-side routing of a data message (also used when we originate
    /// data as a gateway).
    fn route_data(&mut self, ctx: &mut Ctx<'_, Self>, msg: EcMsg) {
        let EcMsg::Data {
            packet,
            src,
            dst,
            ttl,
            ..
        } = msg
        else {
            unreachable!("route_data only handles Data");
        };
        if dst == self.me {
            self.stats.data_delivered += 1;
            ctx.deliver_app(packet);
            return;
        }
        if ttl == 0 {
            self.stats.data_dropped += 1;
            return;
        }
        let now = ctx.now();
        // local delivery: the destination lives in my grid
        if let Some(entry) = self.host_table.get(&dst) {
            let awake = !entry.asleep && now.since(entry.last_seen).as_secs_f64() < self.cfg.host_fresh_secs;
            let fwd = EcMsg::Data {
                packet,
                src,
                dst,
                via_grid: self.my_grid,
                ttl: ttl - 1,
            };
            if awake {
                ctx.unicast(dst, fwd);
            } else {
                // paper §3.3: wake the sleeping destination, buffer, flush
                let q = self.pending_wake.entry(dst).or_default();
                if q.len() >= self.cfg.buffer_cap {
                    q.pop_front();
                    self.stats.data_dropped += 1;
                }
                q.push_back(fwd);
                if q.len() == 1 {
                    self.start_page(ctx, dst);
                }
            }
            return;
        }
        // remote: grid-by-grid forwarding
        if let Some(route) = self.routes.lookup(dst, now) {
            let fwd = EcMsg::Data {
                packet,
                src,
                dst,
                via_grid: route.next_grid,
                ttl: ttl - 1,
            };
            let next = self.neighbors.get(route.next_grid, now).unwrap_or(route.via_node);
            self.stats.data_forwarded += 1;
            let me = self.me;
            ctx.emit(|| EventKind::PacketForwarded {
                node: me,
                flow: packet.flow,
                seq: packet.seq,
            });
            ctx.unicast(next, fwd);
            return;
        }
        // no route: buffer and discover
        let q = self.pending_route.entry(dst).or_default();
        if q.len() >= self.cfg.buffer_cap {
            q.pop_front();
            self.stats.data_dropped += 1;
        }
        q.push_back(EcMsg::Data {
            packet,
            src,
            dst,
            via_grid: self.my_grid,
            ttl,
        });
        self.start_discovery(ctx, dst, 0);
    }

    /// Page a sleeping local destination and arm the flush timer.  The
    /// wake wait backs off exponentially with the number of pages this
    /// host has already ignored (a lossy RAS channel would otherwise spin
    /// the page→flush→fail loop at full rate until the data TTL died);
    /// attempt 0 is the normal paper behaviour and attempts ≥ 1 are
    /// traced as [`EventKind::PageRetry`].
    fn start_page(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId) {
        let attempt = *self.page_attempts.entry(dst).or_insert(0);
        self.stats.pages_sent += 1;
        ctx.page_host(dst);
        let wait = self.cfg.forward_wake_wait * f64::from(1u32 << attempt.min(6));
        ctx.set_timer_secs(wait, EcTimer::ForwardBuffered { dst });
        if attempt >= 1 {
            self.stats.page_retries += 1;
            let me = self.me;
            ctx.emit(|| EventKind::PageRetry {
                node: me,
                target: dst,
                attempt,
            });
        }
    }

    fn start_discovery(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, attempt: u32) {
        if attempt == 0 && self.discovering.contains_key(&dst) {
            return; // one in flight already
        }
        self.discovering.insert(dst, attempt);
        self.my_seq += 1;
        self.rreq_counter += 1;
        // first attempt: confined by the configured strategy around the
        // destination's last known grid (if any); retries: global (§3.3)
        let range = if attempt == 0 {
            self.cfg
                .search
                .range_for(self.my_grid, self.dst_hints.get(&dst).copied())
        } else {
            GridRect::everywhere()
        };
        let rreq = Rreq {
            src: self.me,
            s_seq: self.my_seq,
            dst,
            d_seq: 0,
            id: self.rreq_counter,
            range,
            last_grid: self.my_grid,
        };
        self.seen.insert(self.me, self.rreq_counter);
        self.stats.rreqs_sent += 1;
        ctx.broadcast(EcMsg::Rreq(rreq));
        ctx.set_timer_secs(
            self.cfg.discovery_timeout,
            EcTimer::DiscoveryTimeout { dst, attempt },
        );
        ctx.note(|| format!("RREQ #{} for {dst} range={range:?}", self.rreq_counter));
    }

    fn flush_route_buffer(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId) {
        let Some(q) = self.pending_route.remove(&dst) else {
            return;
        };
        for msg in q {
            self.route_data(ctx, msg);
        }
    }

    // ----- frame handlers -----------------------------------------------

    fn on_hello(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, h: HelloInfo) {
        let now = ctx.now();
        if h.gflag {
            self.neighbors.note(h.grid, h.id, now);
        } else if self.neighbors.get(h.grid, now) == Some(h.id) {
            // it no longer claims the grid
            self.neighbors.forget_grid(h.grid);
        }
        if h.grid != self.my_grid {
            // a former local host has moved away
            if self.role == Role::Gateway && self.host_table.remove(&src).is_some() {
                ctx.note(|| format!("host {src} moved to {}", h.grid));
            }
            return;
        }
        match self.role {
            Role::Electing => {
                if h.gflag {
                    // a gateway already exists (or just won): join it
                    self.election_epoch += 1; // cancel my decide
                    self.maybe_replace_or_join(ctx, h);
                } else {
                    self.candidates.retain(|c| c.id != h.id);
                    self.candidates.push(h);
                }
            }
            Role::Member => {
                if h.gflag {
                    self.gateway = Some(h.id);
                    self.last_gw_hello = now;
                    self.handoff_epoch += 1; // a live gateway ends any handoff wait
                    self.arm_gateway_watch(ctx);
                    if self.awaiting_acq || !self.pending_own.is_empty() {
                        self.flush_pending_own(ctx);
                    }
                }
            }
            Role::Gateway => {
                if h.gflag && src != self.me {
                    // Two declared gateways in one grid.  Resolve with a
                    // *stable* ordering (level desc, id asc) — distance is
                    // deliberately excluded because it drifts with motion
                    // and would let both sides believe they win.
                    let my_level = ctx.level();
                    let they_win = h.level > my_level || (h.level == my_level && h.id < self.me);
                    if they_win {
                        ctx.unicast(
                            h.id,
                            EcMsg::TableXfer {
                                routes: self.routes.snapshot(),
                                hosts: self.host_table.keys().copied().collect(),
                            },
                        );
                        ctx.note(|| format!("yielding gateway of {} to {src}", self.my_grid));
                        self.host_table.clear();
                        self.become_member(ctx, h.id);
                    } else if ctx.now().since(self.last_own_hello).as_secs_f64()
                        > self.cfg.gw_response_min_gap
                    {
                        // re-assert my claim (rate-limited: an un-throttled
                        // re-assert duel would melt the channel)
                        self.send_hello(ctx, true);
                    }
                } else if !h.gflag {
                    // a (new or existing) host in my grid
                    self.host_table.insert(src, HostEntry::awake(now));
                    // respond so arrivals learn the gateway (§3.2), rate
                    // limited to avoid storms
                    if now.since(self.last_own_hello).as_secs_f64() > self.cfg.gw_response_min_gap {
                        self.send_hello(ctx, true);
                    }
                }
            }
            Role::Sleeping => {
                // a frame can slip in during the short window between the
                // sleep decision and the MAC quiescing — ignore it
            }
        }
    }

    /// Electing/arriving host heard the gateway: replace it (strictly
    /// higher battery level, §3.2) or join as a member.
    fn maybe_replace_or_join(&mut self, ctx: &mut Ctx<'_, Self>, gw_hello: HelloInfo) {
        if ctx.level() > gw_hello.level {
            // declare myself; the old gateway yields and transfers tables
            self.candidates.clear();
            self.become_gateway(ctx);
        } else {
            self.become_member(ctx, gw_hello.id);
        }
    }

    fn on_retire(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        grid: GridCoord,
        routes: &RouteSnapshot,
        _hosts: &[NodeId],
    ) {
        let now = ctx.now();
        self.neighbors.forget_grid(grid);
        if grid != self.my_grid || self.role == Role::Gateway {
            return;
        }
        // inherit the tables and elect a successor (§3.2)
        self.routes.install(routes, now);
        self.start_election(ctx);
    }

    fn on_rreq(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, r: Rreq) {
        let now = ctx.now();
        // destination host replies even when it is not a gateway (§3.3:
        // "When D (or its gateway, if D is not a gateway) receives this
        // RREQ, it will unicast a reply")
        if r.dst == self.me {
            self.my_seq += 1;
            let rep = Rrep {
                src: r.src,
                dst: self.me,
                d_seq: self.my_seq,
                from_grid: self.my_grid,
                dst_grid: self.my_grid,
            };
            self.routes.upsert(r.src, r.last_grid, src, r.s_seq, now);
            self.stats.rreps_sent += 1;
            ctx.unicast(src, EcMsg::Rrep(rep));
            return;
        }
        if self.role != Role::Gateway {
            return;
        }
        if !r.range.contains(self.my_grid) {
            return; // outside the search area
        }
        if !self.seen.insert(r.src, r.id) {
            return; // duplicate
        }
        // reverse pointer to the previous sending gateway's grid
        self.routes.upsert(r.src, r.last_grid, src, r.s_seq, now);
        if self.host_table.contains_key(&r.dst) {
            // I am the destination's gateway: reply
            self.my_seq += 1;
            let rep = Rrep {
                src: r.src,
                dst: r.dst,
                d_seq: self.my_seq,
                from_grid: self.my_grid,
                dst_grid: self.my_grid,
            };
            self.stats.rreps_sent += 1;
            ctx.unicast(src, EcMsg::Rrep(rep));
            ctx.note(|| format!("RREP for {} (local host) back via {src}", r.dst));
            return;
        }
        // rebroadcast with my grid as the previous hop
        let mut fwd = r;
        fwd.last_grid = self.my_grid;
        self.stats.rreqs_forwarded += 1;
        ctx.broadcast(EcMsg::Rreq(fwd));
        ctx.note(|| format!("RREQ {}#{} rebroadcast", r.src, r.id));
    }

    fn on_rrep(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, r: Rrep) {
        let now = ctx.now();
        // forward pointer: dst reachable through the grid the RREP came from
        self.routes.upsert(r.dst, r.from_grid, src, r.d_seq, now);
        self.dst_hints.insert(r.dst, r.dst_grid);
        if r.src == self.me {
            // discovery complete
            self.discovering.remove(&r.dst);
            self.flush_route_buffer(ctx, r.dst);
            ctx.note(|| format!("route to {} established", r.dst));
            return;
        }
        // relay along the reverse path
        if let Some(back) = self.routes.lookup(r.src, now) {
            let next = self.neighbors.get(back.next_grid, now).unwrap_or(back.via_node);
            let fwd = Rrep {
                from_grid: self.my_grid,
                ..r
            };
            ctx.unicast(next, EcMsg::Rrep(fwd));
        } else {
            ctx.note(|| format!("RREP for {} dropped: no reverse route", r.src));
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_, Self>, _src: NodeId, msg: EcMsg) {
        let EcMsg::Data { packet, dst, .. } = msg else {
            unreachable!()
        };
        if dst == self.me {
            self.stats.data_delivered += 1;
            ctx.deliver_app(packet);
            // receiving own traffic keeps an endpoint awake
            if self.role == Role::Member {
                self.arm_quiet_sleep(ctx);
            }
            return;
        }
        match self.role {
            Role::Gateway => self.route_data(ctx, msg),
            Role::Member | Role::Electing => {
                // we were asked to forward but are not a gateway (stale
                // neighbour caches after a retire): bounce to our gateway
                if let (
                    Some(gw),
                    EcMsg::Data {
                        packet,
                        src,
                        dst,
                        ttl,
                        ..
                    },
                ) = (self.gateway, msg)
                {
                    if ttl > 0 && gw != self.me {
                        ctx.unicast(
                            gw,
                            EcMsg::Data {
                                packet,
                                src,
                                dst,
                                via_grid: self.my_grid,
                                ttl: ttl - 1,
                            },
                        );
                        return;
                    }
                }
                self.stats.data_dropped += 1;
            }
            Role::Sleeping => {
                // see on_hello: pre-quiesce window; drop silently
                self.stats.data_dropped += 1;
            }
        }
    }

    fn on_acq(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, gid: GridCoord) {
        if self.role != Role::Gateway || gid != self.my_grid {
            return;
        }
        self.host_table.insert(src, HostEntry::awake(ctx.now()));
        // respond with a HELLO so the waker learns the current gateway
        self.send_hello(ctx, true);
    }
}

impl Protocol for Ecgrid {
    type Msg = EcMsg;
    type Timer = EcTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.my_grid = ctx.cell();
        // stagger the very first HELLO so 100 simultaneous broadcasts don't
        // collide at t=0
        let stagger = ctx.rng().gen_range(0.0..0.3);
        self.election_epoch += 1;
        self.role = Role::Electing;
        self.hello_epoch += 1;
        ctx.set_timer_secs(
            stagger,
            EcTimer::Hello {
                epoch: self.hello_epoch,
            },
        );
        ctx.set_timer_secs(
            self.cfg.election_window + stagger,
            EcTimer::ElectionDecide {
                epoch: self.election_epoch,
            },
        );
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, _kind: FrameKind, msg: &EcMsg) {
        // any frame from a host proves it is awake: its page-failure
        // streak (if any) is over
        self.page_attempts.remove(&src);
        match msg {
            EcMsg::Hello(h) => self.on_hello(ctx, src, *h),
            EcMsg::Retire { grid, routes, hosts } => self.on_retire(ctx, *grid, routes, hosts),
            EcMsg::TableXfer { routes, hosts } => {
                let now = ctx.now();
                self.routes.install(routes, now);
                if self.role == Role::Gateway {
                    for h in hosts {
                        if *h != self.me {
                            self.host_table.entry(*h).or_insert(HostEntry {
                                last_seen: now,
                                asleep: true,
                            });
                        }
                    }
                }
            }
            EcMsg::Leave { .. } => {
                if self.role == Role::Gateway {
                    self.host_table.remove(&src);
                }
            }
            EcMsg::SleepNotice => {
                if self.role == Role::Gateway {
                    if let Some(e) = self.host_table.get_mut(&src) {
                        e.asleep = true;
                    } else {
                        self.host_table.insert(
                            src,
                            HostEntry {
                                last_seen: ctx.now(),
                                asleep: true,
                            },
                        );
                    }
                }
            }
            EcMsg::Acq { gid, .. } => self.on_acq(ctx, src, *gid),
            EcMsg::Rreq(r) => self.on_rreq(ctx, src, *r),
            EcMsg::Rrep(r) => self.on_rrep(ctx, src, *r),
            EcMsg::Data { .. } => self.on_data(ctx, src, msg.clone()),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: EcTimer) {
        match timer {
            EcTimer::Hello { epoch } => {
                if epoch != self.hello_epoch || self.role == Role::Sleeping {
                    return; // superseded chain or asleep
                }
                // periodic beacon + housekeeping
                let now = ctx.now();
                self.routes.purge(now);
                self.neighbors.purge(now);
                if self.role == Role::Gateway {
                    self.send_hello(ctx, true);
                    // load-balance retirement when the battery level drops a
                    // class (§3.2) — unless already at the lowest level
                    if ctx.level() < self.level_at_election {
                        self.gateway_leave(ctx, self.my_grid, true);
                    }
                } else {
                    self.send_hello(ctx, false);
                }
                self.rearm_hello(ctx, epoch);
            }
            EcTimer::ElectionDecide { epoch } => {
                if epoch != self.election_epoch || self.role != Role::Electing {
                    return;
                }
                let mine = self.my_hello(ctx, false);
                self.candidates.retain(|c| c.id != self.me);
                self.candidates.push(mine);
                let winner = elect_gateway(self.candidates.iter(), true).expect("self is a candidate");
                if winner == self.me {
                    self.become_gateway(ctx);
                } else {
                    let w = winner;
                    self.candidates.clear();
                    self.become_member(ctx, w);
                }
            }
            EcTimer::GatewayWatch { epoch } => {
                if epoch != self.watch_epoch || self.role != Role::Member {
                    return;
                }
                let silent = ctx.now().since(self.last_gw_hello).as_secs_f64();
                if silent >= self.cfg.gateway_silence {
                    self.no_gateway_event(ctx, "gateway silent");
                } else {
                    // re-arm for the remainder
                    self.watch_epoch += 1;
                    ctx.set_timer_secs(
                        self.cfg.gateway_silence - silent,
                        EcTimer::GatewayWatch {
                            epoch: self.watch_epoch,
                        },
                    );
                }
            }
            EcTimer::Dwell { epoch } => {
                if epoch != self.dwell_epoch || self.role != Role::Sleeping {
                    return;
                }
                // the host CPU wakes; check the GPS without powering the radio
                let here = ctx.cell();
                if here == self.my_grid {
                    if ctx.now().since(self.sleep_since).as_secs_f64() >= self.cfg.orphan_check_secs {
                        // orphaned-cell check: wake and revalidate the
                        // gateway with the ACQ handshake — a crashed
                        // gateway can never page its sleepers awake, so
                        // this is the only path out of a dead cell
                        self.stats.orphan_checks += 1;
                        self.wake_to_member(ctx);
                        self.awaiting_acq = true;
                        self.acq_epoch += 1;
                        self.stats.acqs_sent += 1;
                        let gid = self.my_grid;
                        let me = self.me;
                        ctx.broadcast(EcMsg::Acq { gid, dst: me });
                        ctx.set_timer_secs(
                            self.cfg.acq_timeout,
                            EcTimer::AcqTimeout {
                                epoch: self.acq_epoch,
                            },
                        );
                        return;
                    }
                    self.stats.dwell_extensions += 1;
                    self.arm_dwell(ctx);
                } else {
                    // left the grid while asleep (§3.2): wake, tell the old
                    // gateway, join the new grid
                    let old_gw = self.gateway;
                    let old_grid = self.my_grid;
                    self.wake_to_member(ctx);
                    if let Some(gw) = old_gw {
                        ctx.unicast(gw, EcMsg::Leave { grid: old_grid });
                    }
                    self.enter_grid(ctx, here);
                }
            }
            EcTimer::SleepAfterQuiet { epoch } => {
                if epoch != self.quiet_epoch || self.role != Role::Member {
                    return;
                }
                if !self.pending_own.is_empty() || self.awaiting_acq {
                    self.arm_quiet_sleep(ctx);
                    return;
                }
                self.go_to_sleep(ctx);
            }
            EcTimer::RetireSend { grid } => {
                let Some((g, routes, hosts)) = self.retiring.take() else {
                    return;
                };
                debug_assert_eq!(g, grid);
                ctx.broadcast(EcMsg::Retire {
                    grid: g,
                    routes,
                    hosts,
                });
                self.neighbors.forget_node(self.me);
                if self.role == Role::Gateway && self.my_grid == grid {
                    // load-balance retire: stay in the grid and stand for
                    // re-election with my (now lower) level
                    self.host_table.clear();
                    self.start_election(ctx);
                }
                // if we left the grid, enter_grid already runs the arrival
                // protocol for the new grid
            }
            EcTimer::ForwardBuffered { dst } => {
                let Some(q) = self.pending_wake.remove(&dst) else {
                    return;
                };
                if self.role != Role::Gateway {
                    self.stats.data_dropped += q.len() as u64;
                    return;
                }
                self.host_table.insert(dst, HostEntry::awake(ctx.now()));
                let me = self.me;
                for msg in q {
                    self.stats.data_forwarded += 1;
                    if let EcMsg::Data { packet, .. } = &msg {
                        let (flow, seq) = (packet.flow, packet.seq);
                        ctx.emit(|| EventKind::PacketForwarded { node: me, flow, seq });
                    }
                    ctx.unicast(dst, msg);
                }
            }
            EcTimer::HandoffGrace { epoch } => {
                if epoch != self.handoff_epoch || self.role != Role::Member {
                    return;
                }
                self.stats.handoff_timeouts += 1;
                let me = self.me;
                let cell = self.my_grid;
                ctx.emit(|| EventKind::GatewayHandoffTimeout { node: me, cell });
                self.no_gateway_event(ctx, "handoff grace expired");
            }
            EcTimer::AcqTimeout { epoch } => {
                if epoch != self.acq_epoch || !self.awaiting_acq {
                    return;
                }
                self.awaiting_acq = false;
                if self.role == Role::Member {
                    self.no_gateway_event(ctx, "ACQ unanswered");
                }
            }
            EcTimer::DiscoveryTimeout { dst, attempt } => {
                if self.discovering.get(&dst) != Some(&attempt) {
                    return; // superseded or finished
                }
                if self.role != Role::Gateway {
                    // retired (possibly asleep) since starting the search
                    self.discovering.remove(&dst);
                    let dropped = self.pending_route.remove(&dst).map(|q| q.len()).unwrap_or(0);
                    self.stats.data_dropped += dropped as u64;
                    return;
                }
                if attempt + 1 < self.cfg.max_discovery_attempts {
                    self.start_discovery(ctx, dst, attempt + 1);
                } else {
                    self.discovering.remove(&dst);
                    let dropped = self.pending_route.remove(&dst).map(|q| q.len()).unwrap_or(0);
                    self.stats.data_dropped += dropped as u64;
                    ctx.note(|| format!("discovery for {dst} failed; {dropped} packets dropped"));
                }
            }
        }
    }

    fn on_page(&mut self, ctx: &mut Ctx<'_, Self>, signal: PageSignal) {
        // The RAS hardware has already powered the transceiver on — the
        // protocol must follow it out of sleep unconditionally, or radio
        // and protocol state desynchronize.
        if self.role != Role::Sleeping {
            return;
        }
        self.wake_to_member(ctx);
        match signal {
            PageSignal::Host(_) => ctx.note(|| "woken by paging sequence".into()),
            PageSignal::Grid(_) => ctx.note(|| "woken by broadcast sequence".into()),
        }
        // A grid broadcast sequence addresses the grid we are *physically*
        // in; if we drifted while asleep, this is the moment the GPS gets
        // read — run the §3.2 departure flow instead of waiting for the
        // (now stale) dwell timer.
        let here = ctx.cell();
        if here != self.my_grid {
            let old_gw = self.gateway;
            let old_grid = self.my_grid;
            if let Some(gw) = old_gw {
                if gw != self.me {
                    ctx.unicast(gw, EcMsg::Leave { grid: old_grid });
                }
            }
            self.enter_grid(ctx, here);
            return;
        }
        // A broadcast sequence for my own grid is almost always a retiring
        // gateway about to hand over (§3.2).  If the RETIRE (or any
        // gateway HELLO) never arrives — the gateway crashed mid-handoff —
        // the grace timer declares a no-gateway event instead of leaving
        // the grid black-holed.
        if matches!(signal, PageSignal::Grid(g) if g == self.my_grid) && self.role == Role::Member {
            self.handoff_epoch += 1;
            ctx.set_timer_secs(
                self.cfg.handoff_grace,
                EcTimer::HandoffGrace {
                    epoch: self.handoff_epoch,
                },
            );
        }
    }

    fn on_cell_change(&mut self, ctx: &mut Ctx<'_, Self>, old: GridCoord, new: GridCoord) {
        match self.role {
            Role::Gateway => {
                // §3.2 "hosts move out of a grid", gateway case
                self.gateway_leave(ctx, old, false);
                self.role = Role::Member; // formally off duty while retiring
                self.gateway = None;
                self.enter_grid(ctx, new);
            }
            Role::Member | Role::Electing => {
                // §3.2 non-gateway case: unicast the departure
                if let Some(gw) = self.gateway {
                    if gw != self.me {
                        ctx.unicast(gw, EcMsg::Leave { grid: old });
                    }
                }
                self.enter_grid(ctx, new);
            }
            Role::Sleeping => {
                // unreachable: the world suppresses GPS callbacks in sleep
            }
        }
    }

    fn on_app_send(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, packet: AppPacket) {
        match self.role {
            Role::Gateway => {
                let msg = EcMsg::Data {
                    packet,
                    src: self.me,
                    dst,
                    via_grid: self.my_grid,
                    ttl: DATA_TTL,
                };
                self.route_data(ctx, msg);
            }
            Role::Member => {
                self.arm_quiet_sleep(ctx);
                if let Some(gw) = self.gateway {
                    ctx.unicast(
                        gw,
                        EcMsg::Data {
                            packet,
                            src: self.me,
                            dst,
                            via_grid: self.my_grid,
                            ttl: DATA_TTL,
                        },
                    );
                } else {
                    self.pending_own.push((dst, packet));
                }
            }
            Role::Electing => {
                self.pending_own.push((dst, packet));
            }
            Role::Sleeping => {
                // §3.3: wake and handshake — the gateway may have changed
                self.wake_to_member(ctx);
                self.pending_own.push((dst, packet));
                self.awaiting_acq = true;
                self.acq_epoch += 1;
                self.stats.acqs_sent += 1;
                ctx.broadcast(EcMsg::Acq {
                    gid: self.my_grid,
                    dst,
                });
                ctx.set_timer_secs(
                    self.cfg.acq_timeout,
                    EcTimer::AcqTimeout {
                        epoch: self.acq_epoch,
                    },
                );
            }
        }
    }

    fn on_unicast_failed(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, msg: &EcMsg) {
        let now = ctx.now();
        match msg {
            EcMsg::Data {
                packet,
                src,
                dst: final_dst,
                ttl,
                ..
            } => {
                // a local delivery failed: the host slipped into sleep
                // between its last HELLO and our forward — mark it and go
                // through the page+buffer path instead of tearing routes
                if self.role == Role::Gateway && dst == *final_dst {
                    if let Some(e) = self.host_table.get_mut(&dst) {
                        e.asleep = true;
                        // if a page preceded this failure it went
                        // unanswered — count it against the retry budget
                        if let Some(attempts) = self.page_attempts.get_mut(&dst) {
                            *attempts += 1;
                            if *attempts >= self.cfg.max_page_attempts {
                                self.page_attempts.remove(&dst);
                                self.host_table.remove(&dst);
                                self.stats.page_gave_up += 1;
                                self.stats.data_dropped += 1;
                                ctx.note(|| format!("gave up paging {dst}"));
                                return;
                            }
                        }
                        if *ttl > 0 {
                            let retry = EcMsg::Data {
                                packet: *packet,
                                src: *src,
                                dst: *final_dst,
                                via_grid: self.my_grid,
                                ttl: ttl - 1,
                            };
                            self.route_data(ctx, retry);
                            return;
                        }
                    }
                }
                // next hop is gone: clean up and re-route (§3.4)
                self.neighbors.forget_node(dst);
                self.routes.remove_via(dst);
                self.host_table.remove(&dst);
                self.page_attempts.remove(&dst);
                if Some(dst) == self.gateway && self.role == Role::Member {
                    // my own gateway vanished
                    self.pending_own.push((*final_dst, *packet));
                    self.no_gateway_event(ctx, "gateway unreachable");
                    return;
                }
                if self.role == Role::Gateway && *ttl > 0 {
                    let retry = EcMsg::Data {
                        packet: *packet,
                        src: *src,
                        dst: *final_dst,
                        via_grid: self.my_grid,
                        ttl: ttl - 1,
                    };
                    self.route_data(ctx, retry);
                } else {
                    self.stats.data_dropped += 1;
                }
            }
            EcMsg::Rrep(r) => {
                // reverse path broke; the source's discovery timer retries
                self.routes.remove(r.src);
                self.neighbors.forget_node(dst);
            }
            EcMsg::TableXfer { .. } | EcMsg::Leave { .. } => {
                self.neighbors.forget_node(dst);
                let _ = now;
            }
            _ => {}
        }
    }
}
