//! # ECGRID — the Energy-Conserving GRID routing protocol
//!
//! The paper's contribution (§3): grid-by-grid routing as in GRID, plus
//! energy conservation.  One host per logical grid is elected **gateway**
//! and stays continuously active to forward routing traffic and data; all
//! other hosts turn their transceivers off.  Unlike GAF or Span, sleepers
//! never wake on a schedule to poll — the gateway wakes them on demand
//! through the RAS paging channel, so sleeping cannot cause packet loss.
//!
//! The implementation follows the paper section by section:
//!
//! * **Gateway election (§3.1)** — active hosts exchange HELLOs for one
//!   HELLO period, then every host applies the three rules (battery level,
//!   distance to grid center, smallest id) to the same candidate set; the
//!   agreed winner declares itself with a gflag HELLO and everyone else
//!   may sleep.
//! * **Gateway maintenance (§3.2)** — sleepers set a dwell timer from GPS
//!   position/velocity and re-check on expiry; hosts entering a grid
//!   HELLO and may replace a strictly-lower-level gateway; a departing
//!   gateway pages its grid awake (broadcast sequence), waits τ, then
//!   broadcasts RETIRE(grid, rtab) and the grid re-elects; a gateway whose
//!   battery level drops a class retires in place for load balance;
//!   no-gateway events (silent gateway, unanswered ACQ, unanswered entry
//!   HELLO) trigger re-election.
//! * **Route discovery and data delivery (§3.3)** — RREQ floods gateway-
//!   to-gateway inside the search rectangle, RREP unicasts back along the
//!   reverse grid path, data follows grid-by-grid; packets for sleeping
//!   hosts are buffered at their gateway, the host is paged, and the
//!   buffer is flushed when it is up; sleeping sources wake and handshake
//!   with ACQ(gid, D) because the gateway may have changed while they
//!   slept.
//! * **Route maintenance (§3.4)** — broken next hops purge routes and
//!   trigger re-discovery; roaming sources/destinations re-anchor to the
//!   gateway of their new grid.

pub mod config;
pub mod msg;
pub mod proto;

pub use config::EcgridConfig;
pub use msg::{EcMsg, EcTimer};
pub use proto::{EcStats, Ecgrid, Role};
