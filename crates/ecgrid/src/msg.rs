//! ECGRID wire messages and timers.

use grid_common::{HelloInfo, RouteSnapshot, Rrep, Rreq};
use manet::{AppPacket, GridCoord, NodeId, WireSize};

/// Every message ECGRID puts on the air.
#[derive(Clone, Debug, PartialEq)]
pub enum EcMsg {
    /// Periodic beacon (§3.1) — also the gateway's declaration (gflag) and
    /// its reactive response to arrival HELLOs and ACQs.
    Hello(HelloInfo),
    /// A departing/retiring gateway hands the grid its tables (§3.2):
    /// `RETIRE(grid, rtab)` plus the host table.
    Retire {
        grid: GridCoord,
        routes: RouteSnapshot,
        hosts: Vec<NodeId>,
    },
    /// Unicast table transfer to a replacement gateway (§3.2 case 1).
    TableXfer {
        routes: RouteSnapshot,
        hosts: Vec<NodeId>,
    },
    /// A non-gateway host leaving the grid notifies the gateway (§3.2).
    Leave { grid: GridCoord },
    /// A member tells its gateway it is turning its transceiver off, so
    /// the host table's status field (§3: "host ID and status
    /// (transmit/sleep mode)") stays accurate.
    SleepNotice,
    /// A sleeping host woke to transmit: `ACQ(gid, D)` (§3.3).
    Acq { gid: GridCoord, dst: NodeId },
    /// Route request flood.
    Rreq(Rreq),
    /// Route reply along the reverse path.
    Rrep(Rrep),
    /// A data packet in grid-by-grid transit.  `ttl` bounds forwarding.
    Data {
        packet: AppPacket,
        src: NodeId,
        dst: NodeId,
        via_grid: GridCoord,
        ttl: u8,
    },
}

impl WireSize for EcMsg {
    fn wire_bytes(&self) -> u32 {
        match self {
            EcMsg::Hello(h) => h.wire_bytes(),
            EcMsg::Retire { routes, hosts, .. } => 16 + 20 * routes.len() as u32 + 4 * hosts.len() as u32,
            EcMsg::TableXfer { routes, hosts } => 8 + 20 * routes.len() as u32 + 4 * hosts.len() as u32,
            EcMsg::Leave { .. } => 12,
            EcMsg::SleepNotice => 8,
            EcMsg::Acq { .. } => 16,
            EcMsg::Rreq(r) => r.wire_bytes(),
            EcMsg::Rrep(r) => r.wire_bytes(),
            EcMsg::Data { packet, .. } => packet.bytes + 29,
        }
    }
}

/// ECGRID timers.  Several carry an epoch so that stale instances are
/// ignored after role changes (cheap, race-free cancellation).
#[derive(Clone, Debug, PartialEq)]
pub enum EcTimer {
    /// Periodic HELLO beacon (chained; stale epochs are ignored).
    Hello { epoch: u32 },
    /// End of the election window: apply the rules.
    ElectionDecide { epoch: u32 },
    /// Member watchdog: the gateway has been silent too long.
    GatewayWatch { epoch: u32 },
    /// Sleeping host re-checks whether it left its grid (§3.2).
    Dwell { epoch: u32 },
    /// Quiet member goes to sleep.
    SleepAfterQuiet { epoch: u32 },
    /// τ elapsed after paging the grid: broadcast RETIRE.
    RetireSend { grid: GridCoord },
    /// Paged destination should be awake: flush its buffer.
    ForwardBuffered { dst: NodeId },
    /// ACQ went unanswered (no-gateway event, §3.2 condition 2).
    AcqTimeout { epoch: u32 },
    /// A member woken by a retiring gateway's grid page has waited the
    /// whole handoff grace period without a RETIRE or a gateway HELLO.
    HandoffGrace { epoch: u32 },
    /// Route discovery attempt for `dst` timed out.
    DiscoveryTimeout { dst: NodeId, attempt: u32 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_common::RouteEntry;
    use manet::{EnergyLevel, SimTime};

    #[test]
    fn wire_sizes_scale_with_tables() {
        let empty = EcMsg::Retire {
            grid: GridCoord::new(0, 0),
            routes: vec![],
            hosts: vec![],
        };
        assert_eq!(empty.wire_bytes(), 16);
        let entry = RouteEntry {
            next_grid: GridCoord::new(1, 1),
            via_node: NodeId(3),
            seq: 1,
            expires: SimTime::from_secs(10),
        };
        let full = EcMsg::Retire {
            grid: GridCoord::new(0, 0),
            routes: vec![(NodeId(1), entry), (NodeId(2), entry)],
            hosts: vec![NodeId(5), NodeId(6), NodeId(7)],
        };
        assert_eq!(full.wire_bytes(), 16 + 40 + 12);
    }

    #[test]
    fn data_carries_payload_plus_header() {
        let d = EcMsg::Data {
            packet: AppPacket {
                flow: 0,
                seq: 0,
                bytes: 512,
            },
            src: NodeId(0),
            dst: NodeId(1),
            via_grid: GridCoord::new(0, 0),
            ttl: 32,
        };
        assert_eq!(d.wire_bytes(), 541);
    }

    #[test]
    fn hello_is_compact() {
        let h = EcMsg::Hello(HelloInfo {
            id: NodeId(1),
            grid: GridCoord::new(0, 0),
            gflag: true,
            level: EnergyLevel::Upper,
            dist: 3.0,
        });
        assert!(h.wire_bytes() <= 24);
    }
}
