//! Property tests for the discrete-event core.

use proptest::prelude::*;
use sim_engine::{CalendarQueue, EventQueue, PendingEvents, Scheduler, SimDuration, SimTime};

proptest! {
    /// The calendar queue and the binary heap dequeue identical sequences
    /// for any insertion schedule (including duplicates and bursts).
    #[test]
    fn calendar_equals_heap(times in proptest::collection::vec(0u64..5_000_000u64, 1..300)) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new();
        for (i, &t) in times.iter().enumerate() {
            heap.insert(SimTime(t), i);
            cal.insert(SimTime(t), i);
        }
        loop {
            match (heap.pop_next(), cal.pop_next()) {
                (None, None) => break,
                (Some((ta, _, va)), Some((tb, _, vb))) => {
                    prop_assert_eq!(ta, tb);
                    prop_assert_eq!(va, vb);
                }
                _ => prop_assert!(false, "queues disagree on length"),
            }
        }
    }

    /// Dequeue order is non-decreasing in time and FIFO within a timestamp,
    /// no matter the insertion order.
    #[test]
    fn heap_order_invariant(times in proptest::collection::vec(0u64..1000u64, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.insert(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, _, v)) = q.pop_next() {
            if let Some((lt, lv)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(v > lv, "FIFO violated at {t:?}");
                }
            }
            last = Some((t, v));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(1u64..1000u64, 1..100),
        kill_mask in proptest::collection::vec(any::<bool>(), 100)
    ) {
        let mut s = Scheduler::new();
        let mut expected: Vec<usize> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let h = s.schedule_at(SimTime(t), i);
            if kill_mask[i % kill_mask.len()] {
                s.cancel(h);
            } else {
                expected.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, v)) = s.next() {
            got.push(v);
        }
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Duration arithmetic round-trips through seconds for representable
    /// values.
    #[test]
    fn duration_roundtrip(ms in 0u64..10_000_000u64) {
        let d = SimDuration::from_millis(ms);
        let d2 = SimDuration::from_secs_f64(d.as_secs_f64());
        prop_assert_eq!(d, d2);
    }

    /// for_bits never undercounts airtime: bits / rate <= airtime.
    #[test]
    fn airtime_rounds_up(bits in 1u64..10_000_000u64, rate in 1_000u64..100_000_000u64) {
        let d = SimDuration::for_bits(bits, rate);
        let exact_ns = bits as f64 * 1e9 / rate as f64;
        prop_assert!(d.as_nanos() as f64 >= exact_ns - 1e-6);
        prop_assert!((d.as_nanos() as f64) < exact_ns + 1.0);
    }
}
