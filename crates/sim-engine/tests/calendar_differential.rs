//! Randomized differential test: the calendar queue must dequeue exactly
//! the heap's sequence on thousands of insert-then-drain workloads.
//! (This caught a real bug: an insert earlier than the dequeue cursor was
//! skipped by the forward day-scan until the year-wrap fallback.)

use sim_engine::{CalendarQueue, EventQueue, PendingEvents, SimTime, SplitMix64};

#[test]
fn calendar_matches_heap_on_random_workloads() {
    for seed in 0..2000u64 {
        let mut rng = SplitMix64::new(seed);
        let n = 1 + (rng.next_u64() % 64) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_u64() % 5_000_000).collect();
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new();
        for (i, &t) in times.iter().enumerate() {
            heap.insert(SimTime(t), i);
            cal.insert(SimTime(t), i);
        }
        let mut step = 0;
        loop {
            match (heap.pop_next(), cal.pop_next()) {
                (None, None) => break,
                (Some((ta, _, va)), Some((tb, _, vb))) => {
                    if ta != tb || va != vb {
                        panic!(
                            "seed {seed} step {step}: heap ({},{va}) cal ({},{vb}) times={times:?}",
                            ta.0, tb.0
                        );
                    }
                }
                _ => panic!("seed {seed}: length mismatch"),
            }
            step += 1;
        }
    }
}
