//! Lookahead-safety property tests for the barrier mailbox.
//!
//! The conservative-sync contract: a message produced inside an epoch
//! is stamped with that epoch's virtual time and delivered at the next
//! barrier. No message may ever carry a timestamp earlier than the
//! barrier that has already been delivered (it would have to rewrite
//! committed history), and no drain may deliver a message stamped after
//! its own barrier (it would commit the future early). Both directions
//! are asserted inside `Mailbox`; these tests drive randomized
//! post/drain schedules through it and check that legal schedules never
//! trip the asserts while illegal ones always do.

use proptest::prelude::*;
use sim_engine::{chunk_count, Mailbox, SimTime, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};

proptest! {
    /// Any schedule of epochs with monotone barriers, where each epoch
    /// posts messages stamped inside `[barrier_prev, barrier_next]`,
    /// drains cleanly and in deterministic lane-major order.
    #[test]
    fn legal_epoch_schedules_never_violate_lookahead(
        steps in proptest::collection::vec((0u64..1000u64, proptest::collection::vec((0usize..4, 0u64..1000u64), 0..20)), 1..30)
    ) {
        let mut mb: Mailbox<u64> = Mailbox::new();
        mb.ensure_lanes(4);
        let mut barrier = 0u64;
        let mut posted = 0u64;
        let mut delivered = 0u64;
        for (advance, posts) in steps {
            let next = barrier + advance;
            for (lane, jitter) in posts {
                // Stamp inside the open window [barrier, next].
                let at = barrier + jitter % (advance + 1);
                mb.post(lane, SimTime(at), at);
                posted += 1;
            }
            mb.drain(SimTime(next), |at, m| {
                // Stamp is echoed in the payload and lies in-window.
                assert_eq!(at.0, m);
                assert!(at.0 >= barrier && at.0 <= next);
                delivered += 1;
            });
            barrier = next;
        }
        prop_assert_eq!(posted, delivered);
        prop_assert_eq!(mb.pending(), 0);
    }

    /// A message stamped before the last delivered barrier must panic
    /// at post time — it can never silently enter a lane.
    #[test]
    fn stale_post_always_panics(barrier in 1u64..10_000, back in 1u64..10_000) {
        let mut mb: Mailbox<u64> = Mailbox::new();
        mb.ensure_lanes(1);
        mb.drain(SimTime(barrier), |_, _| {});
        let stale = barrier.saturating_sub(back.min(barrier));
        if stale < barrier {
            let hit = catch_unwind(AssertUnwindSafe(|| mb.post(0, SimTime(stale), 0)));
            prop_assert!(hit.is_err(), "stale post at {stale} past barrier {barrier} was accepted");
        }
    }

    /// A message stamped after the drain barrier must panic at drain
    /// time — the barrier may never commit the future.
    #[test]
    fn future_message_always_panics_at_barrier(barrier in 0u64..10_000, ahead in 1u64..10_000) {
        let mut mb: Mailbox<u64> = Mailbox::new();
        mb.ensure_lanes(1);
        mb.post(0, SimTime(barrier + ahead), 0);
        let hit = catch_unwind(AssertUnwindSafe(|| mb.drain(SimTime(barrier), |_, _| {})));
        prop_assert!(hit.is_err(), "message stamped {} delivered at barrier {barrier}", barrier + ahead);
    }

    /// Parallel posting through chunk-owned lanes yields the same drain
    /// sequence as serial posting, for any thread count — the mailbox
    /// half of the digest-identity argument.
    #[test]
    fn parallel_posts_drain_in_serial_order(
        n in 1usize..3000,
        grain in 1usize..512,
        stamp in 0u64..1_000_000,
        modulus in 1usize..13
    ) {
        let lanes = chunk_count(n, grain);
        let mut serial: Mailbox<usize> = Mailbox::new();
        serial.ensure_lanes(lanes);
        for i in 0..n {
            if i % modulus == 0 {
                serial.post(i / grain, SimTime(stamp), i);
            }
        }
        let mut expect = Vec::new();
        serial.drain(SimTime(stamp), |_, m| expect.push(m));

        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let mut mb: Mailbox<usize> = Mailbox::new();
            mb.ensure_lanes(lanes);
            let split = mb.split();
            pool.for_each_range(n, grain, &|chunk, range| {
                let mut w = unsafe { split.writer(chunk) };
                for i in range {
                    if i % modulus == 0 {
                        w.post(SimTime(stamp), i);
                    }
                }
            });
            let mut got = Vec::new();
            mb.drain(SimTime(stamp), |_, m| got.push(m));
            prop_assert_eq!(&got, &expect, "threads={}", threads);
        }
    }
}
