//! The determinism kernel, tested in isolation from the MANET stack: for
//! random event schedules spanning shards — including mid-stream
//! scheduling after pops and random cancellation — the sharded
//! scheduler's merged dispatch stream is *identical* to a single-queue
//! [`Scheduler`]'s, for every shard count and every shard assignment.
//!
//! This is the property the whole `--parallel-world` mode leans on: if
//! dispatch order is bit-identical, every downstream consumer (RNG
//! draws, energy-meter integration steps, tx-id allocation, trace
//! emission) replays identically, so the digest equality proven end to
//! end in `tests/parallel_equivalence.rs` reduces to this kernel.

use proptest::prelude::*;
use sim_engine::{Scheduler, ShardedScheduler, SimDuration, SimTime};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// One generated workload step after the initial burst: pop an event,
/// then schedule `spawn` follow-ups at `now + delta` and maybe cancel a
/// previously issued handle.
#[derive(Clone, Debug)]
struct Step {
    spawn: usize,
    delta_ms: u64,
    cancel_idx: Option<usize>,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        // the compat proptest stub has no Option strategy: encode "no
        // cancel" as the top fifth of the index range
        (0usize..3, 0u64..50, 0usize..1250).prop_map(|(spawn, delta_ms, raw)| Step {
            spawn,
            delta_ms,
            cancel_idx: (raw < 1000).then_some(raw),
        }),
        1..120,
    )
}

/// Run the workload on the serial scheduler, returning the dispatch
/// sequence as (time, payload) pairs plus the drained pool stats and the
/// pending-set high-water mark.
fn run_serial(initial: &[u64], steps: &[Step]) -> (Vec<(SimTime, u64)>, sim_engine::PoolStats, usize) {
    let mut s = Scheduler::new();
    let mut handles = Vec::new();
    let mut payload = 0u64;
    for &t in initial {
        handles.push(s.schedule_at(SimTime::from_millis(t), payload));
        payload += 1;
    }
    let mut out = Vec::new();
    for st in steps {
        if let Some((t, v)) = s.next() {
            out.push((t, v));
        }
        for _ in 0..st.spawn {
            handles.push(s.schedule_in(SimDuration::from_millis(st.delta_ms), payload));
            payload += 1;
        }
        if let Some(ci) = st.cancel_idx {
            if !handles.is_empty() {
                s.cancel(handles[ci % handles.len()]);
            }
        }
    }
    while let Some(x) = s.next() {
        out.push(x);
    }
    (out, s.pool_stats(), s.max_pending())
}

/// The same workload on the sharded scheduler, with the i-th scheduled
/// event assigned to an arbitrary (but deterministic) shard.
fn run_sharded(
    k: usize,
    initial: &[u64],
    steps: &[Step],
) -> (Vec<(SimTime, u64)>, sim_engine::PoolStats, usize) {
    let shard_of = |i: u64| ((i.wrapping_mul(2654435761)) % k as u64) as usize;
    let mut s = ShardedScheduler::new(k);
    let mut handles = Vec::new();
    let mut payload = 0u64;
    for &t in initial {
        handles.push(s.schedule_at(shard_of(payload), SimTime::from_millis(t), payload));
        payload += 1;
    }
    let mut out = Vec::new();
    for st in steps {
        if let Some((t, v)) = s.next() {
            out.push((t, v));
        }
        for _ in 0..st.spawn {
            handles.push(s.schedule_in(shard_of(payload), SimDuration::from_millis(st.delta_ms), payload));
            payload += 1;
        }
        if let Some(ci) = st.cancel_idx {
            if !handles.is_empty() {
                s.cancel(handles[ci % handles.len()]);
            }
        }
    }
    while let Some(x) = s.next() {
        out.push(x);
    }
    (out, s.pool_stats(), s.max_pending())
}

proptest! {
    /// The epoch-barrier merge emits the exact same dispatch order as a
    /// single-queue scheduler, for K ∈ {1, 2, 4, 7}, on workloads with
    /// timestamp collisions, mid-stream scheduling, and cancellation.
    /// The aggregated pool books must balance after every workload drains
    /// and the global high-water/depth marks must match the serial
    /// scheduler's — the invariants `tests/event_pool.rs` pins at the
    /// world level.
    #[test]
    fn merge_equals_single_queue(
        initial in proptest::collection::vec(0u64..100u64, 1..80),
        steps in steps(),
    ) {
        let (want, serial_stats, serial_depth) = run_serial(&initial, &steps);
        for k in SHARD_COUNTS {
            let (got, stats, depth) = run_sharded(k, &initial, &steps);
            prop_assert_eq!(&got, &want, "k={} diverged from single queue", k);
            prop_assert_eq!(stats.allocated, stats.freed, "k={}: leaked events", k);
            prop_assert_eq!(stats.live, 0);
            prop_assert_eq!(stats.allocated, serial_stats.allocated);
            prop_assert_eq!(stats.high_water, serial_stats.high_water,
                "k={}: global high-water drifted from the single pool's", k);
            prop_assert_eq!(depth, serial_depth,
                "k={}: pending-set high-water drifted", k);
        }
    }
}
