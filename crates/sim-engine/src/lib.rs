//! Deterministic discrete-event simulation core.
//!
//! This crate plays the role ns-2's scheduler played for the paper: a
//! virtual clock, a pending-event set, and reproducible randomness.
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] — binary-heap pending-event set with strict FIFO
//!   tie-breaking, so runs are bit-reproducible.
//! * [`CalendarQueue`] — a Brown calendar queue with the same interface;
//!   O(1) amortized hold operations under stationary event populations
//!   (the classic DES data structure; benchmarked against the heap).
//! * [`Scheduler`] — clock + queue + lazy cancellation handles.
//! * [`ShardedScheduler`] — K per-shard queues sharing one global
//!   insertion counter; merged dispatch order is provably identical to
//!   the single queue's (the conservative-sync determinism kernel).
//! * [`RunBudget`] — event-count / virtual-time ceilings turning runaway
//!   loops into [`BudgetExceeded`] diagnostics instead of hangs.
//! * [`WorkerPool`] / [`Mailbox`] — deterministic fork–join chunks plus
//!   barrier-delivered timestamped messages; the threaded world engine's
//!   conservative-sync substrate.
//! * [`rng`] — a master seed fanned out into independent, stable streams
//!   per (domain, index), so adding a consumer never perturbs others.

pub mod backend;
pub mod budget;
pub mod calendar;
pub mod exec;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod time;

pub use backend::{AnyQueue, Backend};
pub use budget::{BudgetExceeded, RunBudget, WALL_CHECK_STRIDE};
pub use calendar::CalendarQueue;
pub use exec::{chunk_count, LaneWriter, MailSplit, Mailbox, SlicePtr, WorkerPool};
pub use pool::{EventPool, PoolStats};
pub use queue::{EventQueue, PendingEvents};
pub use rng::{derive_seed, RngFactory, SplitMix64};
pub use sched::{EventHandle, Scheduler};
pub use shard::ShardedScheduler;
pub use time::{SimDuration, SimTime};
