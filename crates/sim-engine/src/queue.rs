//! The pending-event set: a binary heap with strict FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Interface shared by the heap-based [`EventQueue`] and the
/// [`CalendarQueue`](crate::CalendarQueue), so schedulers and benchmarks can
/// swap implementations.
pub trait PendingEvents<E> {
    /// Insert an event; returns a monotonically-increasing sequence number
    /// that doubles as the FIFO tie-break key and a cancellation handle.
    fn insert(&mut self, at: SimTime, event: E) -> u64;
    /// Remove and return the earliest event (FIFO among equal timestamps).
    fn pop_next(&mut self) -> Option<(SimTime, u64, E)>;
    /// Timestamp of the earliest pending event.
    fn next_time(&self) -> Option<SimTime>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Reverse ordering so BinaryHeap (a max-heap) pops the *earliest* entry;
// equal timestamps break ties by insertion order (lower seq first).
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// Binary-heap pending-event set.
///
/// `O(log n)` insert/pop, deterministic order: events with equal timestamps
/// come out in insertion order.  This is the default scheduler backend.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }
}

impl<E> PendingEvents<E> for EventQueue<E> {
    fn insert(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        seq
    }

    fn pop_next(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.event))
    }

    fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.insert(SimTime::from_secs(3), "c");
        q.insert(SimTime::from_secs(1), "a");
        q.insert(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.insert(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next()).map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seq_numbers_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        let s1 = q.insert(SimTime::from_secs(5), ());
        let s2 = q.insert(SimTime::from_secs(1), ());
        assert!(s2 > s1);
    }

    #[test]
    fn next_time_peeks_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.insert(SimTime::from_secs(9), ());
        q.insert(SimTime::from_secs(4), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop_next().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_insert_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.insert(SimTime::from_secs(10), 10);
        q.insert(SimTime::from_secs(5), 5);
        assert_eq!(q.pop_next().unwrap().2, 5);
        q.insert(SimTime::from_secs(7), 7);
        q.insert(SimTime::from_secs(1), 1);
        assert_eq!(q.pop_next().unwrap().2, 1);
        assert_eq!(q.pop_next().unwrap().2, 7);
        assert_eq!(q.pop_next().unwrap().2, 10);
    }
}
