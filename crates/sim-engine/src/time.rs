//! Virtual time: nanosecond-resolution instants and durations.
//!
//! Integer nanoseconds make event ordering exact (no float comparison
//! hazards) while still covering ~584 years of simulated time in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel later than any reachable simulation time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Build from fractional seconds; panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration since an earlier instant; saturates to zero if `earlier` is
    /// actually later (clock misuse is a bug, but saturation keeps energy
    /// integration monotone).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Serialization delay of `bits` at `bits_per_sec` — the building block
    /// of every transmission time in the radio model.
    #[inline]
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "zero bandwidth");
        // round up: a partial nanosecond still occupies the channel
        let ns = (bits as u128 * NANOS_PER_SEC as u128).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(0.25).as_nanos(), 250_000_000);
        assert_eq!(SimDuration::from_secs_f64(2.5).as_millis_f64(), 2500.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
        assert_eq!(d + d - d, d);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(b.since(a), SimDuration::from_secs(2));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn for_bits_matches_paper_frame_time() {
        // 512-byte packet at 2 Mbps = 2.048 ms
        let d = SimDuration::for_bits(512 * 8, 2_000_000);
        assert_eq!(d.as_millis_f64(), 2.048);
        // rounding up for partial nanoseconds
        let d = SimDuration::for_bits(1, 3_000_000_000);
        assert_eq!(d.as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_time_panics() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert_eq!(SimDuration(5).min(SimDuration(3)), SimDuration(3));
        assert_eq!(SimDuration(5).max(SimDuration(3)), SimDuration(5));
    }
}
