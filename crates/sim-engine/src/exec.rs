//! Deterministic fork–join execution for the threaded world engine.
//!
//! The parallel world mode splits per-host work (energy integration,
//! mobility evaluation, reception verdicts) into fixed-size chunks and
//! fans the chunks out over a persistent [`WorkerPool`]. Determinism
//! comes from the *output layout*, not the schedule: each chunk owns a
//! disjoint slot range of the output arrays (via [`SlicePtr`]) and a
//! private [`Mailbox`] lane, so it does not matter which worker runs
//! which chunk or in what order — the serial commit phase reads slots
//! in index order and drains lanes in lane order, reproducing the
//! exact serial sequence of effects.
//!
//! [`Mailbox`] carries the conservative-synchronization contract: every
//! message is stamped with the virtual time of the epoch that produced
//! it, and [`Mailbox::drain`] delivers at a barrier no earlier than any
//! stamp. Both ends assert the invariant, so a lookahead violation is a
//! loud panic rather than a silent digest divergence.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::time::SimTime;

/// Number of chunks a parallel section of `n` items splits into.
pub fn chunk_count(n: usize, grain: usize) -> usize {
    let grain = grain.max(1);
    n.div_ceil(grain)
}

type TaskRef<'a> = &'a (dyn Fn(usize, Range<usize>) + Sync);

#[derive(Clone, Copy)]
struct JobDesc {
    task: &'static (dyn Fn(usize, Range<usize>) + Sync),
    n: usize,
    grain: usize,
}

struct Slot {
    epoch: u64,
    job: Option<JobDesc>,
    active: usize,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    work: Condvar,
    done: Condvar,
    cursor: AtomicUsize,
    panicked: AtomicBool,
}

/// A persistent pool of `threads - 1` worker threads plus the caller.
///
/// [`WorkerPool::for_each_range`] is a blocking fork–join: it returns
/// only after every chunk has run, so the task closure may borrow local
/// state. With `threads == 1` no threads are spawned and every chunk
/// runs inline on the caller — the zero-overhead serial path.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Build a pool that executes parallel sections on `threads` lanes
    /// (the caller counts as one). `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("world-worker-{i}"))
                    .spawn(move || Self::worker_main(sh))
                    .expect("spawn world worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Lanes this pool executes on, including the caller.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task(chunk_index, item_range)` over `0..n` split into
    /// `grain`-sized chunks. Chunk indices and ranges are a pure
    /// function of `(n, grain)`; only the worker-to-chunk assignment is
    /// nondeterministic. Blocks until all chunks finish; panics in any
    /// chunk are joined and re-raised here.
    pub fn for_each_range(&self, n: usize, grain: usize, task: TaskRef<'_>) {
        let grain = grain.max(1);
        if n == 0 {
            return;
        }
        if self.workers.is_empty() || n <= grain {
            let mut chunk = 0;
            let mut start = 0;
            while start < n {
                let end = (start + grain).min(n);
                task(chunk, start..end);
                chunk += 1;
                start = end;
            }
            return;
        }
        // Erase the lifetime so workers can hold the reference. Sound
        // because this function does not return until `active == 0`,
        // i.e. no worker can still observe the job.
        let task: &'static (dyn Fn(usize, Range<usize>) + Sync) = unsafe { std::mem::transmute(task) };
        let job = JobDesc { task, n, grain };
        {
            let mut g = self.shared.slot.lock().unwrap();
            debug_assert!(g.job.is_none(), "nested parallel section");
            self.shared.cursor.store(0, Ordering::SeqCst);
            g.epoch = g.epoch.wrapping_add(1);
            g.job = Some(job);
            g.active = self.workers.len();
        }
        self.shared.work.notify_all();
        Self::run_chunks(&self.shared, job);
        let mut g = self.shared.slot.lock().unwrap();
        while g.active > 0 {
            g = self.shared.done.wait(g).unwrap();
        }
        g.job = None;
        drop(g);
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("worker thread panicked during parallel section");
        }
    }

    fn run_chunks(shared: &Shared, job: JobDesc) {
        loop {
            let chunk = shared.cursor.fetch_add(1, Ordering::Relaxed);
            let Some(start) = chunk.checked_mul(job.grain) else {
                break;
            };
            if start >= job.n {
                break;
            }
            let end = (start + job.grain).min(job.n);
            let outcome = catch_unwind(AssertUnwindSafe(|| (job.task)(chunk, start..end)));
            if outcome.is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
                break;
            }
        }
    }

    fn worker_main(shared: Arc<Shared>) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut g = shared.slot.lock().unwrap();
                loop {
                    if g.shutdown {
                        return;
                    }
                    match g.job {
                        Some(j) if g.epoch != seen => {
                            seen = g.epoch;
                            break j;
                        }
                        _ => g = shared.work.wait(g).unwrap(),
                    }
                }
            };
            Self::run_chunks(&shared, job);
            let mut g = shared.slot.lock().unwrap();
            g.active -= 1;
            if g.active == 0 {
                shared.done.notify_all();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.slot.lock().unwrap();
            g.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A raw view of a `&mut [T]` that parallel chunks can slice into
/// disjoint sub-slices without aliasing through a shared `&mut`.
pub struct SlicePtr<T> {
    ptr: *mut T,
    len: usize,
}

impl<T> SlicePtr<T> {
    pub fn new(s: &mut [T]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// # Safety
    ///
    /// Concurrent callers must hand out pairwise-disjoint, in-bounds
    /// ranges, and the backing slice must outlive every returned
    /// reference (guaranteed when used inside a [`WorkerPool`] section,
    /// which joins before returning).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice(&self, r: Range<usize>) -> &mut [T] {
        debug_assert!(r.start <= r.end && r.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(r.start), r.end - r.start)
    }

    /// Single-element access for scatter patterns where chunks index a
    /// permutation (e.g. a candidate list) rather than a dense range.
    ///
    /// # Safety
    ///
    /// Same contract as [`SlicePtr::slice`]: each index must be claimed
    /// by at most one concurrent caller, and the backing slice must
    /// outlive the reference.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

impl<T> Clone for SlicePtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlicePtr<T> {}
unsafe impl<T: Send> Send for SlicePtr<T> {}
unsafe impl<T: Send> Sync for SlicePtr<T> {}

/// Timestamped messages produced inside a parallel epoch and applied
/// serially at the next barrier.
///
/// One lane per chunk keeps posting contention-free; draining lanes in
/// lane order (FIFO within a lane) yields a deterministic global order
/// because chunk → lane assignment is fixed by item index.
///
/// The conservative-sync invariant — no message is ever delivered at a
/// barrier earlier than its timestamp, and no message is ever posted
/// with a timestamp earlier than the last delivery barrier — is
/// asserted at both ends.
pub struct Mailbox<M> {
    lanes: Vec<Vec<(SimTime, M)>>,
    delivered_until: SimTime,
}

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Mailbox<M> {
    pub fn new() -> Self {
        Self {
            lanes: Vec::new(),
            delivered_until: SimTime::ZERO,
        }
    }

    /// Grow (never shrink) to at least `k` lanes.
    pub fn ensure_lanes(&mut self, k: usize) {
        if self.lanes.len() < k {
            self.lanes.resize_with(k, Vec::new);
        }
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The barrier up to which messages have been delivered.
    pub fn delivered_until(&self) -> SimTime {
        self.delivered_until
    }

    pub fn pending(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// Serial-path post into a lane.
    pub fn post(&mut self, lane: usize, at: SimTime, msg: M) {
        assert!(
            at >= self.delivered_until,
            "mailbox message stamped {at:?} precedes delivery barrier {:?}",
            self.delivered_until
        );
        self.lanes[lane].push((at, msg));
    }

    /// Split into per-lane writers for a parallel section. Each chunk
    /// must use only its own lane index.
    pub fn split(&mut self) -> MailSplit<M> {
        MailSplit {
            lanes: SlicePtr::new(&mut self.lanes),
            floor: self.delivered_until,
        }
    }

    /// Deliver every pending message at `barrier`, in lane order and
    /// FIFO within each lane. Asserts the lookahead contract: every
    /// stamp lies in `[delivered_until, barrier]`.
    pub fn drain(&mut self, barrier: SimTime, mut f: impl FnMut(SimTime, M)) {
        assert!(
            barrier >= self.delivered_until,
            "delivery barrier {barrier:?} went backwards past {:?}",
            self.delivered_until
        );
        let floor = self.delivered_until;
        self.delivered_until = barrier;
        for lane in &mut self.lanes {
            for (at, msg) in lane.drain(..) {
                assert!(
                    at >= floor && at <= barrier,
                    "mailbox message stamped {at:?} outside delivery window [{floor:?}, {barrier:?}]"
                );
                f(at, msg);
            }
        }
    }
}

/// Borrow-erased lane handles for a single parallel section.
pub struct MailSplit<M> {
    lanes: SlicePtr<Vec<(SimTime, M)>>,
    floor: SimTime,
}

impl<M> Clone for MailSplit<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for MailSplit<M> {}

impl<M> MailSplit<M> {
    /// # Safety
    ///
    /// Each lane index must be claimed by at most one chunk at a time,
    /// and the parent [`Mailbox`] must outlive the section (guaranteed
    /// inside a [`WorkerPool`] fork–join).
    pub unsafe fn writer(&self, lane: usize) -> LaneWriter<'_, M> {
        let lane = &mut self.lanes.slice(lane..lane + 1)[0];
        LaneWriter {
            lane,
            floor: self.floor,
        }
    }
}

/// Exclusive append handle to one mailbox lane.
pub struct LaneWriter<'a, M> {
    lane: &'a mut Vec<(SimTime, M)>,
    floor: SimTime,
}

impl<M> LaneWriter<'_, M> {
    pub fn post(&mut self, at: SimTime, msg: M) {
        assert!(
            at >= self.floor,
            "mailbox message stamped {at:?} precedes delivery barrier {:?}",
            self.floor
        );
        self.lane.push((at, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_geometry_is_pure() {
        assert_eq!(chunk_count(0, 128), 0);
        assert_eq!(chunk_count(1, 128), 1);
        assert_eq!(chunk_count(128, 128), 1);
        assert_eq!(chunk_count(129, 128), 2);
        assert_eq!(chunk_count(1000, 0), 1000);
    }

    #[test]
    fn pool_covers_every_item_exactly_once() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let n = 10_000usize;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.for_each_range(n, 64, &|_chunk, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pool_chunk_indices_match_item_ranges() {
        let pool = WorkerPool::new(4);
        let n = 1003usize;
        let grain = 97usize;
        let seen: Vec<AtomicU64> = (0..chunk_count(n, grain)).map(|_| AtomicU64::new(0)).collect();
        pool.for_each_range(n, grain, &|chunk, range| {
            assert_eq!(range.start, chunk * grain);
            assert_eq!(range.end, ((chunk + 1) * grain).min(n));
            seen[chunk].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_scatter_then_serial_commit_is_deterministic() {
        // The canonical usage: chunks write disjoint output slots, the
        // caller folds them serially afterwards. Result must be
        // identical for every thread count.
        let n = 5000usize;
        let expect: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![0u64; n];
            let view = SlicePtr::new(&mut out);
            pool.for_each_range(n, 128, &|_chunk, range| {
                let slots = unsafe { view.slice(range.clone()) };
                for (off, i) in range.enumerate() {
                    slots[off] = (i as u64) * (i as u64) + 1;
                }
            });
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn pool_reuse_across_many_sections() {
        let pool = WorkerPool::new(3);
        for round in 0..50u64 {
            let n = 257;
            let sum = AtomicU64::new(0);
            pool.for_each_range(n, 16, &|_c, r| {
                let mut local = 0;
                for i in r {
                    local += i as u64 + round;
                }
                sum.fetch_add(local, Ordering::Relaxed);
            });
            let expect: u64 = (0..n as u64).map(|i| i + round).sum();
            assert_eq!(sum.load(Ordering::Relaxed), expect);
        }
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let pool = WorkerPool::new(2);
        let hit = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_range(1000, 8, &|_c, r| {
                if r.contains(&500) {
                    panic!("boom");
                }
            });
        }));
        assert!(hit.is_err());
        // Pool must still be usable after a panicked section.
        let sum = AtomicU64::new(0);
        pool.for_each_range(100, 8, &|_c, r| {
            sum.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn mailbox_drains_in_lane_major_fifo_order() {
        let mut mb: Mailbox<u32> = Mailbox::new();
        mb.ensure_lanes(3);
        mb.post(2, SimTime(10), 20);
        mb.post(0, SimTime(10), 1);
        mb.post(0, SimTime(12), 2);
        mb.post(1, SimTime(11), 10);
        let mut got = Vec::new();
        mb.drain(SimTime(12), |at, m| got.push((at, m)));
        assert_eq!(
            got,
            vec![
                (SimTime(10), 1),
                (SimTime(12), 2),
                (SimTime(11), 10),
                (SimTime(10), 20)
            ]
        );
        assert_eq!(mb.delivered_until(), SimTime(12));
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "precedes delivery barrier")]
    fn mailbox_rejects_stale_post() {
        let mut mb: Mailbox<u32> = Mailbox::new();
        mb.ensure_lanes(1);
        mb.drain(SimTime(100), |_, _| {});
        mb.post(0, SimTime(99), 7);
    }

    #[test]
    #[should_panic(expected = "outside delivery window")]
    fn mailbox_rejects_future_message_at_barrier() {
        let mut mb: Mailbox<u32> = Mailbox::new();
        mb.ensure_lanes(1);
        mb.post(0, SimTime(500), 7);
        mb.drain(SimTime(400), |_, _| {});
    }

    #[test]
    fn mailbox_parallel_post_serial_drain() {
        let pool = WorkerPool::new(4);
        let n = 4096usize;
        let grain = 256usize;
        let mut mb: Mailbox<usize> = Mailbox::new();
        mb.ensure_lanes(chunk_count(n, grain));
        let split = mb.split();
        pool.for_each_range(n, grain, &|chunk, range| {
            let mut w = unsafe { split.writer(chunk) };
            for i in range {
                if i % 7 == 0 {
                    w.post(SimTime(42), i);
                }
            }
        });
        let mut got = Vec::new();
        mb.drain(SimTime(42), |_, i| got.push(i));
        let expect: Vec<usize> = (0..n).filter(|i| i % 7 == 0).collect();
        assert_eq!(got, expect);
    }
}
