//! Run budgets: hard ceilings that turn runaway event loops into
//! diagnosable terminations.
//!
//! A discrete-event simulation has three independent axes a bug can run
//! away along: the *event count* (zero-delay cycles, broadcast storms),
//! *virtual time* (a termination condition that never becomes true), and
//! *wall-clock time* (each event legitimate but pathologically slow — the
//! axis that matters to a resident service whose worker threads are a
//! shared resource).  A [`RunBudget`] bounds all three; the event loop
//! checks it after every dispatch and stops with a [`BudgetExceeded`]
//! diagnostic instead of hanging the process.  The all-`None` default is
//! free: two `Option` compares per event (the wall axis is only sampled
//! every [`WALL_CHECK_STRIDE`] dispatches, and only when bounded).
//!
//! Unlike the other two axes, the wall axis is *not* deterministic: where
//! it trips depends on the host machine.  That is fine for its purpose —
//! a tripped run is a failure to quarantine, never a result to average —
//! and the supervisor treats it exactly like an event-budget trip.

use crate::time::SimTime;
use std::fmt;

/// How many dispatches pass between wall-clock samples.  `Instant::now`
/// is cheap but not free; at a typical ≥ 1M events/s the stride bounds
/// detection latency to well under a millisecond while keeping the hot
/// loop clean.
pub const WALL_CHECK_STRIDE: u64 = 1024;

/// Ceilings for one event loop.  `None` on an axis means unbounded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum number of dispatched events.
    pub max_events: Option<u64>,
    /// Maximum virtual time the clock may reach.
    pub max_sim_time: Option<SimTime>,
    /// Maximum wall-clock milliseconds a run may consume.  The clock
    /// starts at the run loop's first budget check.
    pub max_wall_ms: Option<u64>,
}

impl RunBudget {
    /// No ceilings on any axis.
    pub const UNLIMITED: RunBudget = RunBudget {
        max_events: None,
        max_sim_time: None,
        max_wall_ms: None,
    };

    pub fn unlimited() -> Self {
        Self::UNLIMITED
    }

    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    pub fn with_max_sim_time(mut self, t: SimTime) -> Self {
        self.max_sim_time = Some(t);
        self
    }

    pub fn with_max_wall_ms(mut self, ms: u64) -> Self {
        self.max_wall_ms = Some(ms);
        self
    }

    /// True when no axis is bounded (the check is then a no-op).
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_sim_time.is_none() && self.max_wall_ms.is_none()
    }

    /// Check `processed` events at virtual time `now` against the budget.
    /// The event-count axis is checked first, so a run that trips both in
    /// the same dispatch reports deterministically.
    #[inline]
    pub fn check(&self, processed: u64, now: SimTime) -> Result<(), BudgetExceeded> {
        if let Some(limit) = self.max_events {
            if processed > limit {
                return Err(BudgetExceeded::Events {
                    limit,
                    processed,
                    at: now,
                });
            }
        }
        if let Some(limit) = self.max_sim_time {
            if now > limit {
                return Err(BudgetExceeded::SimTime {
                    limit,
                    now,
                    processed,
                });
            }
        }
        Ok(())
    }

    /// Check `elapsed_ms` of wall time against the wall axis.  Called by
    /// the schedulers every [`WALL_CHECK_STRIDE`] dispatches (and only
    /// when the axis is bounded).
    #[inline]
    pub fn check_wall(&self, elapsed_ms: u64, processed: u64, now: SimTime) -> Result<(), BudgetExceeded> {
        match self.max_wall_ms {
            Some(limit_ms) if elapsed_ms > limit_ms => Err(BudgetExceeded::Wall {
                limit_ms,
                elapsed_ms,
                processed,
                at: now,
            }),
            _ => Ok(()),
        }
    }
}

/// Why a budgeted run was cut short.  Carries enough context to tell an
/// event storm (huge `processed` at small `at`) from a run that simply
/// outlived its virtual-time allowance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The event-count ceiling was crossed.
    Events { limit: u64, processed: u64, at: SimTime },
    /// The virtual-time ceiling was crossed.
    SimTime {
        limit: SimTime,
        now: SimTime,
        processed: u64,
    },
    /// The wall-clock ceiling was crossed (non-deterministic by nature:
    /// the trip point depends on the host machine).
    Wall {
        limit_ms: u64,
        elapsed_ms: u64,
        processed: u64,
        at: SimTime,
    },
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Events { limit, processed, at } => write!(
                f,
                "event budget exceeded: {processed} events dispatched (limit {limit}) at t={:.3}s",
                at.as_secs_f64()
            ),
            BudgetExceeded::SimTime {
                limit,
                now,
                processed,
            } => write!(
                f,
                "virtual-time budget exceeded: t={:.3}s (limit {:.3}s) after {processed} events",
                now.as_secs_f64(),
                limit.as_secs_f64()
            ),
            BudgetExceeded::Wall {
                limit_ms,
                elapsed_ms,
                processed,
                at,
            } => write!(
                f,
                "wall-clock budget exceeded: {elapsed_ms} ms elapsed (limit {limit_ms} ms) after \
                 {processed} events at t={:.3}s",
                at.as_secs_f64()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check(u64::MAX, SimTime::MAX).is_ok());
    }

    #[test]
    fn event_ceiling_trips_past_limit() {
        let b = RunBudget::default().with_max_events(10);
        assert!(b.check(10, SimTime::ZERO).is_ok());
        let err = b.check(11, SimTime::from_secs(3)).unwrap_err();
        assert_eq!(
            err,
            BudgetExceeded::Events {
                limit: 10,
                processed: 11,
                at: SimTime::from_secs(3)
            }
        );
    }

    #[test]
    fn sim_time_ceiling_trips_past_limit() {
        let b = RunBudget::default().with_max_sim_time(SimTime::from_secs(5));
        assert!(b.check(1, SimTime::from_secs(5)).is_ok());
        let err = b.check(2, SimTime::from_secs(6)).unwrap_err();
        assert!(matches!(err, BudgetExceeded::SimTime { .. }));
    }

    #[test]
    fn events_axis_reported_first() {
        let b = RunBudget::default()
            .with_max_events(1)
            .with_max_sim_time(SimTime::from_secs(1));
        let err = b.check(5, SimTime::from_secs(5)).unwrap_err();
        assert!(matches!(err, BudgetExceeded::Events { .. }));
    }

    #[test]
    fn wall_ceiling_trips_past_limit() {
        let b = RunBudget::default().with_max_wall_ms(50);
        assert!(!b.is_unlimited());
        assert!(b.check_wall(50, 10, SimTime::ZERO).is_ok());
        let err = b.check_wall(51, 10, SimTime::from_secs(2)).unwrap_err();
        assert_eq!(
            err,
            BudgetExceeded::Wall {
                limit_ms: 50,
                elapsed_ms: 51,
                processed: 10,
                at: SimTime::from_secs(2)
            }
        );
        // the deterministic axes are untouched by the wall axis
        assert!(b.check(u64::MAX, SimTime::MAX).is_ok());
        // an unbounded wall axis never trips
        assert!(RunBudget::default()
            .check_wall(u64::MAX, 0, SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn display_names_the_axis() {
        let e = RunBudget::default()
            .with_max_events(1)
            .check(2, SimTime::ZERO)
            .unwrap_err();
        assert!(e.to_string().contains("event budget"));
        let t = RunBudget::default()
            .with_max_sim_time(SimTime::ZERO)
            .check(0, SimTime::from_secs(1))
            .unwrap_err();
        assert!(t.to_string().contains("virtual-time budget"));
        let w = RunBudget::default()
            .with_max_wall_ms(1)
            .check_wall(2, 0, SimTime::ZERO)
            .unwrap_err();
        assert!(w.to_string().contains("wall-clock budget"));
    }
}
