//! Reproducible randomness: a master seed fanned out into independent
//! streams.
//!
//! Every consumer (a node's mobility trace, the MAC backoff of node 17, the
//! traffic generator…) asks the [`RngFactory`] for a stream keyed by a
//! domain string and an index.  Streams are stable: adding a new consumer
//! or reordering draws in one stream never changes the values another
//! stream produces — the property that makes A/B protocol comparisons fair
//! (same seed ⇒ same mobility and same traffic for every protocol).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 — tiny, high-quality 64-bit mixer used both as a standalone
/// PRNG (for tests and jitter) and as the seed-derivation hash.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // take the top 53 bits for a uniformly-spaced mantissa
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a byte string — stable across platforms and releases, used
/// to hash domain names into the seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Derive a child seed from `(master, domain, index)`.
pub fn derive_seed(master: u64, domain: &str, index: u64) -> u64 {
    let mut mix = SplitMix64::new(
        master ^ fnv1a(domain.as_bytes()).rotate_left(17) ^ index.wrapping_mul(0x9E3779B97F4A7C15),
    );
    // a couple of rounds decorrelates adjacent indices thoroughly
    mix.next_u64();
    mix.next_u64()
}

/// Factory handing out independent RNG streams from one master seed.
#[derive(Clone, Copy, Debug)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    pub fn master(&self) -> u64 {
        self.master
    }

    /// A full-strength `StdRng` stream for `(domain, index)`.
    pub fn stream(&self, domain: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(derive_seed(self.master, domain, index))
    }

    /// A lightweight SplitMix stream (for jitter and tests).
    pub fn splitmix(&self, domain: &str, index: u64) -> SplitMix64 {
        SplitMix64::new(derive_seed(self.master, domain, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn derive_seed_separates_domains_and_indices() {
        let s = 123;
        assert_ne!(derive_seed(s, "mobility", 0), derive_seed(s, "traffic", 0));
        assert_ne!(derive_seed(s, "mobility", 0), derive_seed(s, "mobility", 1));
        assert_eq!(derive_seed(s, "mobility", 5), derive_seed(s, "mobility", 5));
        assert_ne!(derive_seed(1, "mobility", 0), derive_seed(2, "mobility", 0));
    }

    #[test]
    fn streams_are_reproducible_and_independent() {
        let f = RngFactory::new(99);
        let a: Vec<u32> = f
            .stream("mac", 3)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        let b: Vec<u32> = f
            .stream("mac", 3)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_eq!(a, b);
        let c: Vec<u32> = f
            .stream("mac", 4)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn adjacent_indices_are_decorrelated() {
        // crude but effective: bitwise difference between adjacent streams'
        // first outputs should be substantial on average
        let f = RngFactory::new(1);
        let mut total = 0u32;
        for i in 0..64 {
            let a = derive_seed(f.master(), "x", i);
            let b = derive_seed(f.master(), "x", i + 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "avg flipped bits {avg}");
    }

    #[test]
    fn splitmix_passes_rough_uniformity() {
        let mut r = SplitMix64::new(2024);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(r.next_u64() >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} too skewed");
        }
    }
}
