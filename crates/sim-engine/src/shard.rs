//! Sharded conservative-synchronization scheduler.
//!
//! [`ShardedScheduler`] partitions the pending-event set into K per-shard
//! queues (each with its own [`EventPool`] slab) while preserving the
//! single-queue dispatch order *bit for bit*.  The trick is a single
//! global insertion counter: every `schedule_*` call — whatever shard it
//! lands on — draws the next sequence number from one monotone counter,
//! and each shard queue orders its entries by `(time, global_seq)`.  The
//! merge pop takes the minimum head across shards under the total order
//! `(time, global_seq, shard_id)`.
//!
//! **Why this equals single-queue order.**  A serial [`Scheduler`]
//! dispatches pending events in lexicographic `(time, insertion_seq)`
//! order (FIFO among equal timestamps).  Here the shards partition the
//! pending set, each shard head is its own `(time, seq)` minimum, so the
//! minimum over heads is the global `(time, seq)` minimum — the exact
//! event the serial scheduler would pop.  Global sequence numbers are
//! unique, so the `shard_id` tie-break never actually engages; it is kept
//! in the comparator to make the merge order a *total* order by
//! construction rather than by side argument.  Induction over pops gives
//! identical dispatch sequences, independent of how events are assigned
//! to shards (`tests/sharded_merge.rs` checks this against the serial
//! scheduler on randomized workloads).
//!
//! Lazy cancellation is shared: cancelled global seqs are skipped at pop
//! on whichever shard they live in, exactly like the serial scheduler.
//!
//! [`Scheduler`]: crate::sched::Scheduler

use crate::budget::{BudgetExceeded, RunBudget, WALL_CHECK_STRIDE};
use crate::pool::{EventPool, PoolStats};
use crate::sched::EventHandle;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Queue entry: absolute time, globally-unique insertion seq, pool slot.
/// Ordered min-first by `(at, seq)` via `Reverse` in the heap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

struct Shard<E> {
    queue: BinaryHeap<Reverse<Entry>>,
    pool: EventPool<E>,
}

/// K per-shard event queues merged into one deterministic dispatch
/// stream.  Mirrors the [`Scheduler`](crate::sched::Scheduler) API with
/// one addition: `schedule_*` takes the target shard index.
pub struct ShardedScheduler<E> {
    shards: Vec<Shard<E>>,
    cancelled: HashSet<u64>,
    /// Global insertion counter — the queue_seq of the merge key.
    next_seq: u64,
    now: SimTime,
    processed: u64,
    max_pending: usize,
    /// Live events across all shard pools, tracked here so the aggregated
    /// high-water mark matches what a single pool would have recorded.
    live: usize,
    high_water: usize,
    budget: RunBudget,
    /// Anchor of the wall-clock budget axis (spans the scheduler's
    /// lifetime, like `processed`).
    wall_start: std::time::Instant,
}

impl<E> ShardedScheduler<E> {
    /// Build a scheduler with `k` shards (`k >= 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "a sharded scheduler needs at least one shard");
        ShardedScheduler {
            shards: (0..k)
                .map(|_| Shard {
                    queue: BinaryHeap::new(),
                    pool: EventPool::new(),
                })
                .collect(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            max_pending: 0,
            live: 0,
            high_water: 0,
            budget: RunBudget::UNLIMITED,
            wall_start: std::time::Instant::now(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Install a run budget; enforced by the driving loop via
    /// [`ShardedScheduler::check_budget`], never by the scheduler itself.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// The installed run budget.
    pub fn budget(&self) -> RunBudget {
        self.budget
    }

    /// Check the dispatched-event count and clock against the budget.
    /// The wall axis is sampled every [`WALL_CHECK_STRIDE`] dispatches.
    #[inline]
    pub fn check_budget(&self) -> Result<(), BudgetExceeded> {
        self.budget.check(self.processed, self.now)?;
        if self.budget.max_wall_ms.is_some() && self.processed.is_multiple_of(WALL_CHECK_STRIDE) {
            let elapsed_ms = self.wall_start.elapsed().as_millis() as u64;
            self.budget.check_wall(elapsed_ms, self.processed, self.now)?;
        }
        Ok(())
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// High-water mark of the merged pending-event set (cancelled entries
    /// included, like the serial scheduler's).
    #[inline]
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Pending (possibly cancelled) events across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Aggregated slab counters.  `allocated`/`freed`/`live`/`capacity`
    /// sum over the shard pools; `high_water` is the *global* live peak
    /// (tracked at every alloc), so it equals what one merged pool would
    /// report — per-shard peaks do not generally sum to the global peak.
    pub fn pool_stats(&self) -> PoolStats {
        let mut agg = PoolStats::default();
        for s in &self.shards {
            let st = s.pool.stats();
            agg.allocated += st.allocated;
            agg.freed += st.freed;
            agg.live += st.live;
            agg.capacity += st.capacity;
        }
        agg.high_water = self.high_water;
        agg
    }

    /// Pre-grow every shard slab by `additional` slots.  Any single shard
    /// can in principle hold the whole pending set (migration skew), so
    /// each gets the full reservation; memory cost is K × slab.
    pub fn reserve_events(&mut self, additional: usize) {
        for s in &mut self.shards {
            s.pool.reserve(additional);
        }
    }

    #[inline]
    fn note_depth(&mut self) {
        let d = self.pending();
        if d > self.max_pending {
            self.max_pending = d;
        }
    }

    #[inline]
    fn push(&mut self, shard: usize, at: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let sh = &mut self.shards[shard];
        let slot = sh.pool.alloc(event);
        sh.queue.push(Reverse(Entry { at, seq, slot }));
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        self.note_depth();
        EventHandle(seq)
    }

    /// Schedule `event` on `shard` at absolute time `at`.  Panics if `at`
    /// is in the past — causality violations are always simulator bugs.
    pub fn schedule_at(&mut self, shard: usize, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        self.push(shard, at, event)
    }

    /// Schedule `event` on `shard` after a relative delay.
    pub fn schedule_in(&mut self, shard: usize, delay: SimDuration, event: E) -> EventHandle {
        let at = self.now.checked_add(delay).expect("virtual time overflow");
        self.push(shard, at, event)
    }

    /// Revoke a pending event.  Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, h: EventHandle) {
        self.cancelled.insert(h.0);
    }

    /// Pop the next live event in merged `(time, queue_seq, shard_id)`
    /// order, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        loop {
            let mut best: Option<(Entry, usize)> = None;
            for (si, sh) in self.shards.iter().enumerate() {
                if let Some(&Reverse(head)) = sh.queue.peek() {
                    // shard order makes (at, seq, si) strictly increasing,
                    // so `<` on (at, seq) alone picks the total-order min
                    match best {
                        Some((b, _)) if (head.at, head.seq) >= (b.at, b.seq) => {}
                        _ => best = Some((head, si)),
                    }
                }
            }
            let (entry, si) = best?;
            let sh = &mut self.shards[si];
            sh.queue.pop();
            let ev = sh.pool.free(entry.slot);
            self.live -= 1;
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.processed += 1;
            return Some((entry.at, ev));
        }
    }

    /// Timestamp of the earliest queued entry across shards, cancelled or
    /// not.  A cancelled head can make this earlier than the next *live*
    /// event — callers use it only as a conservative epoch bound, where
    /// "too early" is safe and "too late" would not be.
    pub fn next_time_hint(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|s| s.queue.peek().map(|&Reverse(e)| e.at))
            .min()
    }

    /// True when no events remain queued (cancelled tails count as gone
    /// only after they are popped, so this is conservative).
    pub fn is_drained(&self) -> bool {
        self.pending() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Scheduler;

    /// Deterministic shard assignment for tests: spread by a multiplier.
    fn shard_of(i: u64, k: usize) -> usize {
        ((i.wrapping_mul(2654435761)) % k as u64) as usize
    }

    #[test]
    fn merged_order_matches_serial_for_every_shard_count() {
        let serial: Vec<(SimTime, u64)> = {
            let mut s = Scheduler::new();
            for i in 0..500u64 {
                s.schedule_at(SimTime::from_millis((i * 7919) % 100), i);
            }
            std::iter::from_fn(|| s.next()).collect()
        };
        for k in [1, 2, 4, 7] {
            let mut s = ShardedScheduler::new(k);
            for i in 0..500u64 {
                s.schedule_at(shard_of(i, k), SimTime::from_millis((i * 7919) % 100), i);
            }
            let got: Vec<(SimTime, u64)> = std::iter::from_fn(|| s.next()).collect();
            assert_eq!(got, serial, "k={k}: merged order diverged");
        }
    }

    #[test]
    fn cancellation_skips_on_every_shard() {
        let mut s = ShardedScheduler::new(3);
        let h = s.schedule_at(2, SimTime::from_secs(1), "dead");
        s.schedule_at(0, SimTime::from_secs(2), "alive");
        s.cancel(h);
        assert_eq!(s.next().unwrap().1, "alive");
        assert!(s.next().is_none());
        let st = s.pool_stats();
        assert_eq!(st.allocated, st.freed, "cancelled slot must recycle");
    }

    #[test]
    fn fifo_among_equal_timestamps_across_shards() {
        let mut s = ShardedScheduler::new(4);
        let t = SimTime::from_secs(1);
        for i in 0..20u64 {
            s.schedule_at(shard_of(i, 4), t, i);
        }
        for i in 0..20 {
            assert_eq!(s.next().unwrap().1, i, "insertion order broken at tie");
        }
    }

    #[test]
    fn aggregated_books_balance_and_high_water_is_global() {
        let mut s = ShardedScheduler::new(4);
        // interleave: fill to 30 live, drain 10, fill 5 more — the global
        // peak (30) is what pool_stats must report even though no single
        // shard ever held 30
        for i in 0..30u64 {
            s.schedule_at(shard_of(i, 4), SimTime::from_millis(i), i);
        }
        for _ in 0..10 {
            s.next();
        }
        for i in 30..35u64 {
            s.schedule_at(shard_of(i, 4), SimTime::from_millis(i), i);
        }
        let st = s.pool_stats();
        assert_eq!(st.high_water, 30);
        assert_eq!(st.live, 25);
        assert_eq!(st.live, s.pending());
        assert_eq!(st.allocated, 35);
        assert_eq!(st.freed, 10);
        while s.next().is_some() {}
        let st = s.pool_stats();
        assert_eq!(st.allocated, st.freed);
        assert_eq!(st.live, 0);
        assert_eq!(st.high_water, 30);
        assert_eq!(s.max_pending(), 30);
    }

    #[test]
    fn reserved_slabs_never_grow() {
        let mut s = ShardedScheduler::new(3);
        s.reserve_events(16);
        assert_eq!(s.pool_stats().capacity, 48);
        for i in 0..16u64 {
            s.schedule_at(shard_of(i, 3), SimTime::from_millis(i), ());
        }
        while s.next().is_some() {}
        assert_eq!(s.pool_stats().capacity, 48, "pre-sized slabs must not grow");
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut s = ShardedScheduler::new(2);
        s.schedule_at(0, SimTime::from_secs(10), ());
        s.next();
        s.schedule_at(1, SimTime::from_secs(5), ());
    }

    #[test]
    fn next_time_hint_sees_the_earliest_shard() {
        let mut s = ShardedScheduler::new(3);
        assert_eq!(s.next_time_hint(), None);
        s.schedule_at(2, SimTime::from_secs(5), ());
        s.schedule_at(1, SimTime::from_secs(3), ());
        assert_eq!(s.next_time_hint(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn budget_trips_after_excess_dispatches() {
        let mut s = ShardedScheduler::new(2);
        s.set_budget(RunBudget::default().with_max_events(3));
        for i in 0..10u64 {
            s.schedule_at(shard_of(i, 2), SimTime::from_secs(i), ());
        }
        let mut dispatched = 0;
        while s.next().is_some() {
            dispatched += 1;
            if s.check_budget().is_err() {
                break;
            }
        }
        assert_eq!(dispatched, 4);
        assert!(matches!(
            s.check_budget(),
            Err(BudgetExceeded::Events { limit: 3, .. })
        ));
    }
}
