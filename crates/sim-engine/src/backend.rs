//! Runtime-selectable pending-event-set backend.
//!
//! The heap and the calendar queue implement the same [`PendingEvents`]
//! contract — including strict FIFO tie-breaking among equal timestamps —
//! so a run must behave identically on either.  [`AnyQueue`] lets the
//! scheduler switch between them at construction time without making every
//! consumer generic, and the golden-trace tests hold both to the same
//! digest.

use crate::calendar::CalendarQueue;
use crate::queue::{EventQueue, PendingEvents};
use crate::time::SimTime;

/// Which pending-event set a [`Scheduler`](crate::Scheduler) uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Binary heap: O(log n), the robust default.
    #[default]
    Heap,
    /// Brown calendar queue: O(1) amortized hold under stationary event
    /// populations.
    Calendar,
}

impl Backend {
    pub fn name(self) -> &'static str {
        match self {
            Backend::Heap => "heap",
            Backend::Calendar => "calendar",
        }
    }

    /// Parse a CLI-style name ("heap" / "calendar").
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "heap" => Some(Backend::Heap),
            "calendar" => Some(Backend::Calendar),
            _ => None,
        }
    }
}

/// Enum dispatch over the two backends.
pub enum AnyQueue<E> {
    Heap(EventQueue<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> AnyQueue<E> {
    pub fn new(backend: Backend) -> Self {
        match backend {
            Backend::Heap => AnyQueue::Heap(EventQueue::new()),
            Backend::Calendar => AnyQueue::Calendar(CalendarQueue::new()),
        }
    }

    pub fn backend(&self) -> Backend {
        match self {
            AnyQueue::Heap(_) => Backend::Heap,
            AnyQueue::Calendar(_) => Backend::Calendar,
        }
    }
}

impl<E> PendingEvents<E> for AnyQueue<E> {
    #[inline]
    fn insert(&mut self, at: SimTime, event: E) -> u64 {
        match self {
            AnyQueue::Heap(q) => q.insert(at, event),
            AnyQueue::Calendar(q) => q.insert(at, event),
        }
    }

    #[inline]
    fn pop_next(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            AnyQueue::Heap(q) => q.pop_next(),
            AnyQueue::Calendar(q) => q.pop_next(),
        }
    }

    #[inline]
    fn next_time(&self) -> Option<SimTime> {
        match self {
            AnyQueue::Heap(q) => q.next_time(),
            AnyQueue::Calendar(q) => q.next_time(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            AnyQueue::Heap(q) => q.len(),
            AnyQueue::Calendar(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_honor_fifo_order() {
        for backend in [Backend::Heap, Backend::Calendar] {
            let mut q = AnyQueue::new(backend);
            let t = SimTime::from_secs(1);
            for i in 0..50 {
                q.insert(t, i);
            }
            q.insert(SimTime::from_millis(1), 999);
            assert_eq!(q.pop_next().unwrap().2, 999, "{backend:?}");
            for i in 0..50 {
                assert_eq!(q.pop_next().unwrap().2, i, "{backend:?}");
            }
            assert!(q.pop_next().is_none());
        }
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Heap, Backend::Calendar] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("HEAP"), Some(Backend::Heap));
        assert_eq!(Backend::parse("fibonacci"), None);
        assert_eq!(Backend::default(), Backend::Heap);
    }

    #[test]
    fn any_queue_reports_its_backend() {
        assert_eq!(AnyQueue::<()>::new(Backend::Heap).backend(), Backend::Heap);
        assert_eq!(
            AnyQueue::<()>::new(Backend::Calendar).backend(),
            Backend::Calendar
        );
    }
}
