//! The scheduler: virtual clock + pending events + lazy cancellation.

use crate::backend::{AnyQueue, Backend};
use crate::budget::{BudgetExceeded, RunBudget, WALL_CHECK_STRIDE};
use crate::pool::{EventPool, PoolStats};
use crate::queue::PendingEvents;
use crate::time::{SimDuration, SimTime};
use std::collections::HashSet;

/// Handle returned by [`Scheduler::schedule_at`]; pass it to
/// [`Scheduler::cancel`] to revoke the event before it fires.  The sharded
/// scheduler (`crate::shard`) issues the same handle type, so an event loop
/// can hold handles without caring which engine produced them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventHandle(pub(crate) u64);

/// A virtual clock driving a pending-event set, with O(1) lazy
/// cancellation: cancelled sequence numbers are skipped at pop time.
///
/// Events are stored in an [`EventPool`] slab and the queue orders bare
/// slot indices, so steady-state scheduling never touches the allocator:
/// the slab plateaus at the run's pending-event high-water mark and slots
/// recycle through a free list.  Ordering is untouched — FIFO tie-breaks
/// come from the queue's own sequence numbers, never from slot numbers.
///
/// ```
/// use sim_engine::{Scheduler, SimDuration, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_at(SimTime::from_secs(2), "beacon");
/// let doomed = sched.schedule_in(SimDuration::from_secs(1), "cancelled");
/// sched.cancel(doomed);
///
/// let (t, ev) = sched.next().unwrap();
/// assert_eq!((t, ev), (SimTime::from_secs(2), "beacon"));
/// assert!(sched.next().is_none());
/// ```
pub struct Scheduler<E> {
    queue: AnyQueue<u32>,
    pool: EventPool<E>,
    cancelled: HashSet<u64>,
    now: SimTime,
    processed: u64,
    max_pending: usize,
    budget: RunBudget,
    /// Anchor of the wall-clock budget axis.  Like `processed`, it spans
    /// the scheduler's lifetime, so multiple run calls share one wall
    /// allowance.
    wall_start: std::time::Instant,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Self::with_backend(Backend::Heap)
    }

    /// Build a scheduler on an explicit pending-event-set backend.  Both
    /// backends implement the same FIFO tie-break contract, so a run is
    /// bit-identical on either (enforced by the golden-trace tests).
    pub fn with_backend(backend: Backend) -> Self {
        Scheduler {
            queue: AnyQueue::new(backend),
            pool: EventPool::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            processed: 0,
            max_pending: 0,
            budget: RunBudget::UNLIMITED,
            wall_start: std::time::Instant::now(),
        }
    }

    /// Install a run budget (ceilings on dispatched events and virtual
    /// time).  The scheduler never enforces it on its own — the event loop
    /// driving it calls [`Scheduler::check_budget`] after each dispatch, so
    /// the loop decides how to wind down.  The budget spans the scheduler's
    /// lifetime: `processed` accumulates across multiple run calls.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// The installed run budget.
    pub fn budget(&self) -> RunBudget {
        self.budget
    }

    /// Check the dispatched-event count and clock against the budget.
    /// The wall axis is sampled every [`WALL_CHECK_STRIDE`] dispatches.
    #[inline]
    pub fn check_budget(&self) -> Result<(), BudgetExceeded> {
        self.budget.check(self.processed, self.now)?;
        if self.budget.max_wall_ms.is_some() && self.processed.is_multiple_of(WALL_CHECK_STRIDE) {
            let elapsed_ms = self.wall_start.elapsed().as_millis() as u64;
            self.budget.check_wall(elapsed_ms, self.processed, self.now)?;
        }
        Ok(())
    }

    /// Which backend this scheduler runs on.
    pub fn backend(&self) -> Backend {
        self.queue.backend()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// High-water mark of the pending-event set (includes events awaiting
    /// lazy cancellation, like `pending`).
    #[inline]
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Lifetime counters of the event slab.  `stats().live` always equals
    /// [`Scheduler::pending`] — every queued slot index owns exactly one
    /// pooled event, cancelled or not.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Pre-grow the event slab so a run with a known pending-event
    /// high-water mark (e.g. from a prior `SchedProfile`) never grows it
    /// mid-run.
    pub fn reserve_events(&mut self, additional: usize) {
        self.pool.reserve(additional);
    }

    #[inline]
    fn note_depth(&mut self) {
        let d = self.queue.len();
        if d > self.max_pending {
            self.max_pending = d;
        }
    }

    /// Schedule `event` at absolute time `at`.  Panics if `at` is in the
    /// past — causality violations are always simulator bugs.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        let slot = self.pool.alloc(event);
        let h = EventHandle(self.queue.insert(at, slot));
        self.note_depth();
        h
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        let at = self.now.checked_add(delay).expect("virtual time overflow");
        let slot = self.pool.alloc(event);
        let h = EventHandle(self.queue.insert(at, slot));
        self.note_depth();
        h
    }

    /// Revoke a pending event.  Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, h: EventHandle) {
        self.cancelled.insert(h.0);
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    /// Deliberately named like `Iterator::next` — the scheduler is the
    /// event loop's source of truth, but it is not an `Iterator` (each call
    /// mutates the clock).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        while let Some((at, seq, slot)) = self.queue.pop_next() {
            // free the slot either way — cancelled events recycle here
            let ev = self.pool.free(slot);
            if self.cancelled.remove(&seq) {
                continue;
            }
            debug_assert!(at >= self.now);
            self.now = at;
            self.processed += 1;
            return Some((at, ev));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // drop leading cancelled events so the peek is accurate
        while let Some(t) = self.queue.next_time() {
            let (at, seq, slot) = self.queue.pop_next().unwrap();
            if self.cancelled.remove(&seq) {
                self.pool.free(slot);
                continue;
            }
            // push back the live event; seq changes but ordering among
            // equal timestamps is preserved because it is re-inserted
            // before anything else at the same time can be inserted ahead.
            // To keep strict FIFO semantics we avoid this path in the hot
            // loop and only use peek for idle/termination checks.
            let _ = t;
            self.requeue_front(at, seq, slot);
            return Some(at);
        }
        None
    }

    // Reinsert an entry preserving its original sequence number ordering.
    // The event itself never leaves the pool — only its slot index cycles
    // through the queue.
    fn requeue_front(&mut self, at: SimTime, _orig_seq: u64, slot: u32) {
        // EventQueue has no keyed reinsert; emulate by inserting and
        // recording nothing: all entries at `at` inserted *after* this call
        // get larger seqs, so FIFO order relative to them is preserved.
        // Order relative to other entries already queued at the same
        // timestamp could in principle change, which is why `next()` never
        // uses this path.
        self.queue.insert(at, slot);
    }

    /// Number of pending (possibly cancelled) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no live events remain.
    pub fn is_idle(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), "five");
        s.schedule_at(SimTime::from_secs(2), "two");
        assert_eq!(s.now(), SimTime::ZERO);
        let (t, e) = s.next().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(2), "two"));
        assert_eq!(s.now(), SimTime::from_secs(2));
        let (t, e) = s.next().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(5), "five"));
        assert!(s.next().is_none());
        assert_eq!(s.processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(10), "a");
        s.next().unwrap();
        s.schedule_in(SimDuration::from_secs(5), "b");
        let (t, _) = s.next().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut s = Scheduler::new();
        let h = s.schedule_at(SimTime::from_secs(1), "dead");
        s.schedule_at(SimTime::from_secs(2), "alive");
        s.cancel(h);
        let (_, e) = s.next().unwrap();
        assert_eq!(e, "alive");
        assert!(s.next().is_none());
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut s = Scheduler::new();
        let h = s.schedule_at(SimTime::from_secs(1), ());
        s.cancel(h);
        s.cancel(h);
        assert!(s.next().is_none());
        assert!(s.is_idle());
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(10), ());
        s.next();
        s.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            s.schedule_at(t, i);
        }
        for i in 0..10 {
            assert_eq!(s.next().unwrap().1, i);
        }
    }

    #[test]
    fn backends_dispatch_identically() {
        let run = |backend: Backend| -> Vec<(SimTime, u32)> {
            let mut s = Scheduler::with_backend(backend);
            assert_eq!(s.backend(), backend);
            for i in 0..200u32 {
                s.schedule_at(SimTime::from_millis((i as u64 * 7919) % 100), i);
            }
            let doomed = s.schedule_at(SimTime::from_millis(50), 999);
            s.cancel(doomed);
            std::iter::from_fn(|| s.next()).collect()
        };
        assert_eq!(run(Backend::Heap), run(Backend::Calendar));
    }

    #[test]
    fn max_pending_tracks_high_water() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::from_secs(i), ());
        }
        while s.next().is_some() {}
        assert_eq!(s.max_pending(), 10);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn budget_trips_after_excess_dispatches() {
        let mut s = Scheduler::new();
        s.set_budget(RunBudget::default().with_max_events(3));
        for i in 0..10 {
            s.schedule_at(SimTime::from_secs(i), ());
        }
        let mut dispatched = 0;
        while s.next().is_some() {
            dispatched += 1;
            if s.check_budget().is_err() {
                break;
            }
        }
        // the loop dispatches limit + 1 events before the check trips
        assert_eq!(dispatched, 4);
        assert!(matches!(
            s.check_budget(),
            Err(BudgetExceeded::Events { limit: 3, .. })
        ));
    }

    #[test]
    fn pool_drains_with_no_leak() {
        // Every allocation is eventually freed — including cancelled
        // events (recycled at pop) and peeked events (requeued in place).
        for backend in [Backend::Heap, Backend::Calendar] {
            let mut s = Scheduler::with_backend(backend);
            for i in 0..50u64 {
                let h = s.schedule_at(SimTime::from_millis(i % 7), i);
                if i % 3 == 0 {
                    s.cancel(h);
                }
            }
            s.peek_time();
            while s.next().is_some() {}
            let st = s.pool_stats();
            assert_eq!(st.allocated, st.freed, "{backend:?}: leaked events");
            assert_eq!(st.live, 0);
            assert_eq!(s.pending(), 0);
        }
    }

    #[test]
    fn pool_live_tracks_pending_and_high_water_tracks_max_pending() {
        let mut s = Scheduler::new();
        for i in 0..20 {
            s.schedule_at(SimTime::from_secs(i), i);
            assert_eq!(s.pool_stats().live, s.pending());
        }
        for _ in 0..5 {
            s.next();
            assert_eq!(s.pool_stats().live, s.pending());
        }
        assert_eq!(s.pool_stats().high_water, s.max_pending());
        assert_eq!(s.pool_stats().high_water, 20);
    }

    #[test]
    fn pooling_preserves_fifo_across_backends_with_cancels() {
        // Slot indices get recycled aggressively (LIFO free list), so a
        // mixed schedule/cancel/dispatch workload exercises slot reuse at
        // shared timestamps; order must still be pure (time, seq).
        let run = |backend: Backend| -> Vec<(SimTime, u32)> {
            let mut s = Scheduler::with_backend(backend);
            let mut out = Vec::new();
            for round in 0..10u64 {
                let base = round * 100;
                let mut handles = Vec::new();
                for i in 0..30u32 {
                    let at = SimTime::from_millis(base + (i as u64 * 37) % 50);
                    handles.push(s.schedule_at(at, round as u32 * 100 + i));
                }
                for (i, h) in handles.iter().enumerate() {
                    if i % 5 == 4 {
                        s.cancel(*h);
                    }
                }
                while let Some(x) = s.next() {
                    out.push(x);
                }
            }
            assert_eq!(s.pool_stats().live, 0);
            let st = s.pool_stats();
            assert!(
                st.capacity < st.allocated as usize,
                "{backend:?}: draining between rounds must recycle slots"
            );
            out
        };
        assert_eq!(run(Backend::Heap), run(Backend::Calendar));
    }

    #[test]
    fn reserved_slab_capacity_is_stable() {
        let mut s = Scheduler::new();
        s.reserve_events(16);
        for i in 0..16 {
            s.schedule_at(SimTime::from_secs(i), ());
        }
        while s.next().is_some() {}
        assert_eq!(s.pool_stats().capacity, 16, "pre-sized slab must not grow");
    }

    #[test]
    fn is_idle_ignores_cancelled_tail() {
        let mut s = Scheduler::new();
        let h1 = s.schedule_at(SimTime::from_secs(1), ());
        let h2 = s.schedule_at(SimTime::from_secs(2), ());
        s.cancel(h1);
        s.cancel(h2);
        assert!(s.is_idle());
        assert_eq!(s.pending(), 0);
    }
}
