//! A Brown calendar queue — the classic O(1)-amortized pending-event set
//! used by high-performance discrete-event simulators (including ns-2).
//!
//! Events are hashed into `nbuckets` day-buckets by timestamp; a "year" is
//! `nbuckets * bucket_width`.  Dequeue scans forward from the current day
//! and only considers events belonging to the current year, so under a
//! stationary event population each operation touches O(1) buckets.  The
//! queue resizes (doubling/halving buckets, re-estimating bucket width from
//! observed event spacing) when the population crosses thresholds.
//!
//! Equal-timestamp events dequeue in insertion order, exactly like
//! [`EventQueue`](crate::EventQueue), so the two backends are
//! interchangeable without affecting simulation results.

use crate::queue::PendingEvents;
use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

/// Brown calendar queue.  See module docs.
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one day-bucket in nanoseconds (always >= 1).
    width: u64,
    /// Index of the bucket the dequeue cursor is standing on.
    cur_bucket: usize,
    /// Start time of the current year+day window for the cursor.
    cur_top: u64,
    /// Earliest possible pending timestamp (cursor position in time).
    cur_time: u64,
    len: usize,
    next_seq: u64,
}

const INITIAL_BUCKETS: usize = 16;
const INITIAL_WIDTH_NS: u64 = 1_000_000; // 1 ms; re-estimated on first resize

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            width: INITIAL_WIDTH_NS,
            cur_bucket: 0,
            cur_top: INITIAL_WIDTH_NS,
            cur_time: 0,
            len: 0,
            next_seq: 0,
        }
    }

    #[inline]
    fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_for(&self, t: u64) -> usize {
        ((t / self.width) % self.nbuckets() as u64) as usize
    }

    fn insert_entry(&mut self, e: Entry<E>) {
        let b = self.bucket_for(e.at.0);
        let bucket = &mut self.buckets[b];
        // keep each bucket sorted by (time, seq); events of one day-bucket
        // are few, so linear/binary insertion is cheap
        let pos = bucket.partition_point(|x| (x.at, x.seq) <= (e.at, e.seq));
        bucket.insert(pos, e);
    }

    /// Rebuild with a new bucket count, re-estimating the bucket width from
    /// the spacing of events near the head (Brown's heuristic).
    fn resize(&mut self, new_nbuckets: usize) {
        let mut all: Vec<Entry<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        all.sort_by_key(|e| (e.at, e.seq));

        // estimate width = average gap over up to the first 25 events,
        // scaled by 3 (Brown's recommendation keeps ~75% of a day's events
        // in their own bucket)
        let sample: Vec<u64> = all.iter().take(25).map(|e| e.at.0).collect();
        let width = if sample.len() >= 2 {
            let span = sample[sample.len() - 1] - sample[0];
            let avg_gap = span / (sample.len() as u64 - 1);
            (avg_gap.max(1)).saturating_mul(3).max(1)
        } else {
            self.width
        };

        self.buckets = (0..new_nbuckets).map(|_| Vec::new()).collect();
        self.width = width;
        let head_time = all.first().map(|e| e.at.0).unwrap_or(self.cur_time);
        self.cur_time = head_time;
        self.cur_bucket = self.bucket_for(head_time);
        self.cur_top = (head_time / self.width + 1) * self.width;
        for e in all {
            self.insert_entry(e);
        }
    }

    /// Earliest entry across all buckets (used on year-wrap fallback).
    fn global_min_pos(&self) -> Option<(usize, SimTime, u64)> {
        let mut best: Option<(usize, SimTime, u64)> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(head) = b.first() {
                let cand = (i, head.at, head.seq);
                best = match best {
                    None => Some(cand),
                    Some(cur) if (cand.1, cand.2) < (cur.1, cur.2) => Some(cand),
                    other => other,
                };
            }
        }
        best
    }
}

impl<E> PendingEvents<E> for CalendarQueue<E> {
    fn insert(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        // An event earlier than the dequeue cursor would be skipped by the
        // forward day-scan (a later-bucket event of the same year would
        // pop first): pull the cursor back to it.
        if at.0 < self.cur_time {
            self.cur_time = at.0;
            self.cur_bucket = self.bucket_for(at.0);
            self.cur_top = (at.0 / self.width + 1) * self.width;
        }
        self.insert_entry(Entry { at, seq, event });
        self.len += 1;
        if self.len > 2 * self.nbuckets() {
            let n = self.nbuckets() * 2;
            self.resize(n);
        }
        seq
    }

    fn pop_next(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        // scan at most one full year of buckets from the cursor
        let n = self.nbuckets();
        for _ in 0..n {
            let b = self.cur_bucket;
            let head_in_year = self.buckets[b]
                .first()
                .map(|e| e.at.0 < self.cur_top)
                .unwrap_or(false);
            if head_in_year {
                let e = self.buckets[b].remove(0);
                self.len -= 1;
                self.cur_time = e.at.0;
                if self.len < self.nbuckets() / 2 && self.nbuckets() > INITIAL_BUCKETS {
                    let nb = self.nbuckets() / 2;
                    self.resize(nb);
                }
                return Some((e.at, e.seq, e.event));
            }
            // advance to next day
            self.cur_bucket = (self.cur_bucket + 1) % n;
            self.cur_top += self.width;
        }
        // a whole year was empty: jump the cursor to the global minimum
        let (b, at, _) = self.global_min_pos().expect("len>0 but no entries");
        self.cur_bucket = b;
        self.cur_time = at.0;
        self.cur_top = (at.0 / self.width + 1) * self.width;
        let e = self.buckets[b].remove(0);
        self.len -= 1;
        Some((e.at, e.seq, e.event))
    }

    fn next_time(&self) -> Option<SimTime> {
        // exact but O(buckets); used rarely (idle checks), not in the hot loop
        self.global_min_pos().map(|(_, at, _)| at)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for &s in &[5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            q.insert(SimTime::from_secs(s), s);
        }
        let out: Vec<_> = std::iter::from_fn(|| q.pop_next()).map(|(_, _, e)| e).collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_millis(42);
        for i in 0..50 {
            q.insert(t, i);
        }
        let out: Vec<_> = std::iter::from_fn(|| q.pop_next()).map(|(_, _, e)| e).collect();
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn survives_resize_cycles() {
        let mut q = CalendarQueue::new();
        // push enough to force several doublings, then drain to force halving
        for i in 0..2000u64 {
            q.insert(SimTime(i * 13 % 9973), i);
        }
        assert_eq!(q.len(), 2000);
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _, _)) = q.pop_next() {
            assert!(t >= last, "out of order after resize");
            last = t;
            count += 1;
        }
        assert_eq!(count, 2000);
    }

    #[test]
    fn sparse_times_use_year_wrap_fallback() {
        let mut q = CalendarQueue::new();
        // timestamps far beyond one calendar year apart
        q.insert(SimTime::from_secs(1_000_000), 3);
        q.insert(SimTime::from_secs(10), 1);
        q.insert(SimTime::from_secs(500_000), 2);
        let out: Vec<_> = std::iter::from_fn(|| q.pop_next()).map(|(_, _, e)| e).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn agrees_with_binary_heap_on_random_workload() {
        // deterministic pseudo-random workload (LCG), hold-model style
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut now = 0u64;
        let step = |x: &mut u64| {
            *x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *x >> 33
        };
        for i in 0..500u64 {
            let t = SimTime(now + step(&mut x) % 1_000_000);
            cal.insert(t, i);
            heap.insert(t, i);
        }
        for _ in 0..5000 {
            let a = cal.pop_next();
            let b = heap.pop_next();
            match (a, b) {
                (Some((ta, _, ea)), Some((tb, _, eb))) => {
                    assert_eq!((ta, ea), (tb, eb));
                    now = ta.0;
                    // hold model: reinsert at a later time
                    let t = SimTime(now + 1 + step(&mut x) % 500_000);
                    cal.insert(t, ea);
                    heap.insert(t, eb);
                }
                (None, None) => break,
                _ => panic!("queues disagree on emptiness"),
            }
        }
    }

    #[test]
    fn next_time_matches_pop() {
        let mut q = CalendarQueue::new();
        q.insert(SimTime::from_secs(7), ());
        q.insert(SimTime::from_secs(3), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(3)));
        let (t, _, _) = q.pop_next().unwrap();
        assert_eq!(t, SimTime::from_secs(3));
        assert_eq!(q.next_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    fn empty_behaviour() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(q.pop_next().is_none());
        assert_eq!(q.next_time(), None);
        assert!(q.is_empty());
    }
}
