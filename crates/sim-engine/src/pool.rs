//! Slab allocator for in-flight scheduler events.
//!
//! The pending-event set used to own its events by value, so every
//! schedule/dispatch pair was a heap allocation and a free for any event
//! type with a payload.  [`EventPool`] breaks that churn: events live in a
//! slab of reusable slots and the queue orders bare `u32` slot indices.
//! Freed slots go on a free list (LIFO, so the hottest slot is reused
//! first while its cache lines are still warm) and the slab only grows
//! when the live population exceeds everything seen before — which, per
//! `SchedProfile`, plateaus at the run's queue high-water mark.
//!
//! Slot numbers carry **no ordering information**; FIFO tie-breaking
//! remains entirely the queue's sequence numbers, so pooling is invisible
//! to dispatch order (property-tested in `sched.rs` and the manet suite).

/// Counters describing a pool's lifetime behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total slot allocations over the pool's lifetime.
    pub allocated: u64,
    /// Total slots returned.  `allocated == freed` once the queue drains.
    pub freed: u64,
    /// Currently live (allocated and not yet freed) slots.
    pub live: usize,
    /// High-water mark of simultaneously live slots.
    pub high_water: usize,
    /// Slab capacity (live + free-listed slots).
    pub capacity: usize,
}

/// Free-list slab of event slots.  See the module docs.
pub struct EventPool<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    allocated: u64,
    freed: u64,
    high_water: usize,
}

impl<E> Default for EventPool<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventPool<E> {
    pub fn new() -> Self {
        EventPool {
            slots: Vec::new(),
            free: Vec::new(),
            allocated: 0,
            freed: 0,
            high_water: 0,
        }
    }

    /// Grow the slab by `additional` free slots up front, so a run whose
    /// high-water mark is known (e.g. from a previous `SchedProfile`)
    /// never grows the slab mid-run.
    pub fn reserve(&mut self, additional: usize) {
        let start = self.slots.len();
        let end = start
            .checked_add(additional)
            .filter(|&e| e <= u32::MAX as usize)
            .expect("event pool exceeds u32 slot space");
        self.slots.resize_with(end, || None);
        // Push in reverse so the lowest new slot is handed out first.
        self.free.extend((start as u32..end as u32).rev());
    }

    /// Store `event`, returning its slot index.
    #[inline]
    pub fn alloc(&mut self, event: E) -> u32 {
        self.allocated += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(event);
                s
            }
            None => {
                let s = self.slots.len();
                assert!(s <= u32::MAX as usize, "event pool exceeds u32 slot space");
                self.slots.push(Some(event));
                s as u32
            }
        };
        let live = (self.allocated - self.freed) as usize;
        if live > self.high_water {
            self.high_water = live;
        }
        slot
    }

    /// Take the event out of `slot` and return the slot to the free list.
    /// Panics on a double free — that is always a scheduler bug.
    #[inline]
    pub fn free(&mut self, slot: u32) -> E {
        let ev = self.slots[slot as usize].take().expect("event pool double free");
        self.freed += 1;
        self.free.push(slot);
        ev
    }

    /// Read an event in place without freeing its slot.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<&E> {
        self.slots.get(slot as usize).and_then(|s| s.as_ref())
    }

    /// Currently live slots.
    #[inline]
    pub fn live(&self) -> usize {
        (self.allocated - self.freed) as usize
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            allocated: self.allocated,
            freed: self.freed,
            live: self.live(),
            high_water: self.high_water,
            capacity: self.slots.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrips_events() {
        let mut p = EventPool::new();
        let a = p.alloc("a");
        let b = p.alloc("b");
        assert_ne!(a, b);
        assert_eq!(p.free(a), "a");
        assert_eq!(p.free(b), "b");
        let s = p.stats();
        assert_eq!(s.allocated, 2);
        assert_eq!(s.freed, 2);
        assert_eq!(s.live, 0);
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut p = EventPool::new();
        let a = p.alloc(1);
        let b = p.alloc(2);
        p.free(a);
        p.free(b);
        // b was freed last, so it comes back first
        assert_eq!(p.alloc(3), b);
        assert_eq!(p.alloc(4), a);
        assert_eq!(p.stats().capacity, 2);
    }

    #[test]
    fn high_water_tracks_peak_live() {
        let mut p = EventPool::new();
        let mut slots = Vec::new();
        for i in 0..5 {
            slots.push(p.alloc(i));
        }
        for s in slots.drain(..) {
            p.free(s);
        }
        for i in 0..3 {
            slots.push(p.alloc(i));
        }
        let s = p.stats();
        assert_eq!(s.high_water, 5);
        assert_eq!(s.live, 3);
        assert_eq!(s.capacity, 5, "slab never grows past the high water");
    }

    #[test]
    fn reserve_pre_grows_without_allocating() {
        let mut p: EventPool<u64> = EventPool::new();
        p.reserve(8);
        assert_eq!(p.stats().capacity, 8);
        assert_eq!(p.stats().live, 0);
        // lowest slots are handed out first for locality
        assert_eq!(p.alloc(0), 0);
        assert_eq!(p.alloc(1), 1);
        assert_eq!(p.stats().capacity, 8);
    }

    #[test]
    fn get_reads_in_place() {
        let mut p = EventPool::new();
        let s = p.alloc(42);
        assert_eq!(p.get(s), Some(&42));
        p.free(s);
        assert_eq!(p.get(s), None);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = EventPool::new();
        let s = p.alloc(());
        p.free(s);
        p.free(s);
    }
}
