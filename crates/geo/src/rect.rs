//! Rectangles of grid coordinates — the RREQ *search area*.
//!
//! The paper confines route discovery to "the smallest rectangle that can
//! cover the grids of source S and destination D" (§3.3, Fig. 2); gateways
//! outside the rectangle ignore the RREQ.  An optional margin widens the
//! rectangle for retries, and [`GridRect::everywhere`] models the global
//! re-search that runs when the confined search fails.

use crate::grid::GridCoord;

/// An inclusive axis-aligned rectangle of grid coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridRect {
    pub min_x: i32,
    pub min_y: i32,
    pub max_x: i32,
    pub max_y: i32,
}

impl GridRect {
    /// Rectangle covering exactly the two given cells (the paper's default
    /// search area for a route request).
    pub fn covering(a: GridCoord, b: GridCoord) -> Self {
        GridRect {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// A single-cell rectangle.
    pub fn cell(c: GridCoord) -> Self {
        GridRect::covering(c, c)
    }

    /// The unbounded search area used when a confined search failed or when
    /// the source has no location information for the destination.
    pub fn everywhere() -> Self {
        GridRect {
            min_x: i32::MIN,
            min_y: i32::MIN,
            max_x: i32::MAX,
            max_y: i32::MAX,
        }
    }

    /// True if this is the global search area.
    pub fn is_everywhere(&self) -> bool {
        *self == Self::everywhere()
    }

    /// Widen the rectangle by `m` cells on every side (saturating).
    pub fn expanded(self, m: i32) -> Self {
        GridRect {
            min_x: self.min_x.saturating_sub(m),
            min_y: self.min_y.saturating_sub(m),
            max_x: self.max_x.saturating_add(m),
            max_y: self.max_y.saturating_add(m),
        }
    }

    /// Membership test used by every gateway that receives an RREQ.
    #[inline]
    pub fn contains(&self, c: GridCoord) -> bool {
        c.x >= self.min_x && c.x <= self.max_x && c.y >= self.min_y && c.y <= self.max_y
    }

    /// Number of cells inside the rectangle (saturating at `u64::MAX` for
    /// the global area).
    pub fn cell_count(&self) -> u64 {
        let w = (self.max_x as i64 - self.min_x as i64 + 1).max(0) as u64;
        let h = (self.max_y as i64 - self.min_y as i64 + 1).max(0) as u64;
        w.saturating_mul(h)
    }

    /// Iterate all cells in the rectangle in row-major order.  Panics if the
    /// rectangle is the global area (iterating it makes no sense).
    pub fn cells(&self) -> impl Iterator<Item = GridCoord> + '_ {
        assert!(!self.is_everywhere(), "cannot enumerate the global search area");
        let r = *self;
        (r.min_y..=r.max_y).flat_map(move |y| (r.min_x..=r.max_x).map(move |x| GridCoord::new(x, y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_matches_paper_example() {
        // Fig. 2: S in (1,1), D in (5,3) — search area bounded by grids
        // (1,1), (1,3), (5,1) and (5,3).
        let r = GridRect::covering(GridCoord::new(1, 1), GridCoord::new(5, 3));
        assert!(r.contains(GridCoord::new(1, 1)));
        assert!(r.contains(GridCoord::new(5, 3)));
        assert!(r.contains(GridCoord::new(3, 2)));
        assert!(!r.contains(GridCoord::new(0, 2)));
        assert!(!r.contains(GridCoord::new(2, 0)));
        assert_eq!(r.cell_count(), 15);
    }

    #[test]
    fn covering_is_order_independent() {
        let a = GridCoord::new(5, 1);
        let b = GridCoord::new(1, 3);
        assert_eq!(GridRect::covering(a, b), GridRect::covering(b, a));
    }

    #[test]
    fn single_cell_rect() {
        let r = GridRect::cell(GridCoord::new(2, 2));
        assert_eq!(r.cell_count(), 1);
        assert!(r.contains(GridCoord::new(2, 2)));
        assert!(!r.contains(GridCoord::new(2, 3)));
    }

    #[test]
    fn everywhere_contains_anything() {
        let r = GridRect::everywhere();
        assert!(r.is_everywhere());
        assert!(r.contains(GridCoord::new(i32::MIN, i32::MAX)));
        assert!(r.contains(GridCoord::new(0, 0)));
    }

    #[test]
    fn expanded_grows_every_side() {
        let r = GridRect::covering(GridCoord::new(2, 2), GridCoord::new(3, 3)).expanded(1);
        assert!(r.contains(GridCoord::new(1, 1)));
        assert!(r.contains(GridCoord::new(4, 4)));
        assert!(!r.contains(GridCoord::new(0, 2)));
        assert_eq!(r.cell_count(), 16);
    }

    #[test]
    fn expanded_everywhere_stays_everywhere() {
        assert!(GridRect::everywhere().expanded(3).is_everywhere());
    }

    #[test]
    fn cells_enumerates_row_major() {
        let r = GridRect::covering(GridCoord::new(0, 0), GridCoord::new(1, 1));
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(
            cells,
            vec![
                GridCoord::new(0, 0),
                GridCoord::new(1, 0),
                GridCoord::new(0, 1),
                GridCoord::new(1, 1),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "global")]
    fn enumerating_everywhere_panics() {
        let _ = GridRect::everywhere().cells().count();
    }
}
