//! Closed-form grid-boundary crossing times for linear motion.
//!
//! ECGRID sleepers set their wake-up timer to the *dwell duration* — the
//! time they expect to remain in the current grid, computed from GPS
//! position and velocity (§3.2).  Because mobility traces are piecewise
//! linear, the crossing time can be solved exactly instead of sampled.

use crate::grid::{GridCoord, GridMap};
use crate::point::{Point2, Vec2};

/// The result of a crossing computation: when and into which cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellCrossing {
    /// Seconds from the query instant until the position first leaves the
    /// current cell (strictly positive).
    pub dt: f64,
    /// The position at the crossing instant (nudged just inside the new
    /// cell).
    pub exit_point: Point2,
    /// The cell being entered.
    pub next_cell: GridCoord,
}

/// Tiny nudge (in seconds) applied past the boundary so the exit point maps
/// into the *new* cell despite floating-point edges.
const EPS_T: f64 = 1e-9;

/// Compute when a point at `p` moving with constant velocity `v` leaves the
/// cell currently containing it.
///
/// Returns `None` when the point never leaves: zero velocity, or the motion
/// would exit the whole field (mobility clamps trajectories inside the
/// field, so crossings outside are treated as "stays until segment end").
pub fn crossing_out_of_cell(map: &GridMap, p: Point2, v: Vec2) -> Option<CellCrossing> {
    if v.x == 0.0 && v.y == 0.0 {
        return None;
    }
    let cell = map.cell_of(p);
    let origin = map.cell_origin(cell);
    let side = map.cell_side();

    // time to hit each axis boundary of the current cell
    let tx = axis_exit_time(p.x, v.x, origin.x, origin.x + side);
    let ty = axis_exit_time(p.y, v.y, origin.y, origin.y + side);

    let dt = match (tx, ty) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => return None,
    };

    let t_exit = dt + EPS_T * (1.0 + dt); // relative nudge keeps it robust for large t
    let exit_point = p + v * t_exit;
    // If the nudged exit point leaves the field, the trajectory is about to
    // be clamped/turned by the mobility model; report no crossing.
    if exit_point.x < 0.0 || exit_point.y < 0.0 || exit_point.x > map.width() || exit_point.y > map.height() {
        return None;
    }
    let next_cell = map.cell_of(exit_point);
    if next_cell == cell {
        // Nudge was swallowed by float rounding (extremely slow motion);
        // treat as no crossing rather than looping forever.
        return None;
    }
    Some(CellCrossing {
        dt,
        exit_point,
        next_cell,
    })
}

/// Time until coordinate `x` moving at rate `vx` exits the open interval
/// `(lo, hi)`; `None` if it never does on this axis.
fn axis_exit_time(x: f64, vx: f64, lo: f64, hi: f64) -> Option<f64> {
    if vx > 0.0 {
        Some(((hi - x) / vx).max(0.0))
    } else if vx < 0.0 {
        Some(((lo - x) / vx).max(0.0))
    } else {
        None
    }
}

/// Dwell duration: seconds the point remains in its current cell, capped at
/// `horizon`.  This is exactly the sleep-timer value an ECGRID host sets.
pub fn dwell_duration(map: &GridMap, p: Point2, v: Vec2, horizon: f64) -> f64 {
    match crossing_out_of_cell(map, p, v) {
        Some(c) => c.dt.min(horizon),
        None => horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> GridMap {
        GridMap::paper_default()
    }

    #[test]
    fn eastward_motion_crosses_right_boundary() {
        let m = map();
        let c = crossing_out_of_cell(&m, Point2::new(50.0, 50.0), Vec2::new(10.0, 0.0)).unwrap();
        assert!((c.dt - 5.0).abs() < 1e-6);
        assert_eq!(c.next_cell, GridCoord::new(1, 0));
    }

    #[test]
    fn diagonal_motion_picks_earlier_axis() {
        let m = map();
        // from (90, 50): x-boundary at 100 in 1 s, y-boundary at 100 in 5 s
        let c = crossing_out_of_cell(&m, Point2::new(90.0, 50.0), Vec2::new(10.0, 10.0)).unwrap();
        assert!((c.dt - 1.0).abs() < 1e-6);
        assert_eq!(c.next_cell, GridCoord::new(1, 0));
    }

    #[test]
    fn westward_motion_crosses_left_boundary() {
        let m = map();
        let c = crossing_out_of_cell(&m, Point2::new(150.0, 50.0), Vec2::new(-25.0, 0.0)).unwrap();
        assert!((c.dt - 2.0).abs() < 1e-6);
        assert_eq!(c.next_cell, GridCoord::new(0, 0));
    }

    #[test]
    fn zero_velocity_never_crosses() {
        let m = map();
        assert!(crossing_out_of_cell(&m, Point2::new(50.0, 50.0), Vec2::ZERO).is_none());
    }

    #[test]
    fn motion_out_of_field_reports_none() {
        let m = map();
        // heading straight out the left edge of the field
        assert!(crossing_out_of_cell(&m, Point2::new(50.0, 50.0), Vec2::new(-10.0, 0.0)).is_none());
    }

    #[test]
    fn starting_on_boundary_moves_cleanly() {
        let m = map();
        // exactly on x=100 boundary (maps to cell (1,0)), moving east
        let c = crossing_out_of_cell(&m, Point2::new(100.0, 50.0), Vec2::new(10.0, 0.0)).unwrap();
        assert!((c.dt - 10.0).abs() < 1e-6);
        assert_eq!(c.next_cell, GridCoord::new(2, 0));
    }

    #[test]
    fn dwell_duration_caps_at_horizon() {
        let m = map();
        let d = dwell_duration(&m, Point2::new(50.0, 50.0), Vec2::new(0.001, 0.0), 30.0);
        assert_eq!(d, 30.0);
        let d = dwell_duration(&m, Point2::new(50.0, 50.0), Vec2::new(10.0, 0.0), 30.0);
        assert!((d - 5.0).abs() < 1e-6);
        let d = dwell_duration(&m, Point2::new(50.0, 50.0), Vec2::ZERO, 30.0);
        assert_eq!(d, 30.0);
    }

    #[test]
    fn chained_crossings_walk_across_field() {
        // follow a fast diagonal trajectory and check each crossing enters a
        // neighbouring cell
        let m = map();
        let v = Vec2::new(17.0, 9.0);
        let mut p = Point2::new(5.0, 5.0);
        let mut cell = m.cell_of(p);
        let mut hops = 0;
        while let Some(c) = crossing_out_of_cell(&m, p, v) {
            assert!(cell.is_neighbor(c.next_cell), "{cell:?} -> {:?}", c.next_cell);
            p = c.exit_point;
            cell = c.next_cell;
            hops += 1;
            assert!(hops < 64, "runaway crossing chain");
        }
        assert!(hops >= 9, "expected to traverse many cells, got {hops}");
    }
}
