//! Geometric primitives and the logical grid partition used by the whole
//! GRID protocol family.
//!
//! The paper partitions the simulation field into square logical grids of
//! side `d`.  With a radio range `r`, choosing `d = sqrt(2) * r / 3`
//! guarantees that a gateway standing at the *center* of a grid can reach a
//! gateway standing *anywhere* inside any of its eight neighbouring grids
//! (the worst case is the far corner of a diagonal neighbour, at distance
//! `1.5 * sqrt(2) * d = r`).  The evaluation uses `r = 250 m` and rounds the
//! cell side down to `d = 100 m`.
//!
//! This crate is dependency-free and fully deterministic; everything else in
//! the workspace builds on it.

pub mod crossing;
pub mod grid;
pub mod point;
pub mod rect;

pub use crossing::{crossing_out_of_cell, CellCrossing};
pub use grid::{GridCoord, GridMap};
pub use point::{Point2, Vec2};
pub use rect::GridRect;

/// The paper's cell-side rule: the largest `d` such that a gateway at a grid
/// center reaches any host in all eight neighbouring grids.
///
/// `d = sqrt(2) * r / 3` (≈ 117.85 m for r = 250 m; the paper rounds to 100).
#[inline]
pub fn max_cell_side_for_range(range_m: f64) -> f64 {
    std::f64::consts::SQRT_2 * range_m / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_side_rule_matches_paper_constants() {
        let d = max_cell_side_for_range(250.0);
        assert!((d - 117.851).abs() < 1e-2);
        // the paper rounds down to 100 m, which satisfies the bound
        assert!(100.0 <= d);
    }

    #[test]
    fn cell_side_rule_worst_case_is_exactly_range() {
        // Gateway at center of cell (0,0); farthest point of the diagonal
        // neighbour (1,1) is its far corner.
        let r = 250.0_f64;
        let d = max_cell_side_for_range(r);
        let center = Point2::new(d / 2.0, d / 2.0);
        let far_corner = Point2::new(2.0 * d, 2.0 * d);
        assert!((center.distance(far_corner) - r).abs() < 1e-9);
    }
}
