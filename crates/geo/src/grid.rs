//! The logical grid partition: mapping positions to grid coordinates,
//! grid centers, and neighbourhoods.

use crate::point::Point2;
use std::fmt;

/// A logical grid coordinate `(x, y)` in the paper's convention: grid
/// `(0, 0)` is the bottom-left cell, x grows rightwards, y grows upwards.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridCoord {
    pub x: i32,
    pub y: i32,
}

impl GridCoord {
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        GridCoord { x, y }
    }

    /// Chebyshev distance — 1 for each of the 8 surrounding grids.
    #[inline]
    pub fn chebyshev(self, other: GridCoord) -> i32 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Manhattan distance between grid coordinates.
    #[inline]
    pub fn manhattan(self, other: GridCoord) -> i32 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// True if `other` is one of the 8 neighbouring grids (not self).
    #[inline]
    pub fn is_neighbor(self, other: GridCoord) -> bool {
        self != other && self.chebyshev(other) <= 1
    }

    /// The 8 surrounding grid coordinates (may fall outside the field; the
    /// caller filters with [`GridMap::contains_cell`]).
    pub fn neighbors8(self) -> [GridCoord; 8] {
        let GridCoord { x, y } = self;
        [
            GridCoord::new(x - 1, y - 1),
            GridCoord::new(x, y - 1),
            GridCoord::new(x + 1, y - 1),
            GridCoord::new(x - 1, y),
            GridCoord::new(x + 1, y),
            GridCoord::new(x - 1, y + 1),
            GridCoord::new(x, y + 1),
            GridCoord::new(x + 1, y + 1),
        ]
    }
}

impl fmt::Debug for GridCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g({},{})", self.x, self.y)
    }
}

impl fmt::Display for GridCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The grid partition of a rectangular field.
///
/// The field spans `[0, width] x [0, height]` meters and is divided into
/// square cells of side `cell_side`.  Positions exactly on the far edge of
/// the field are mapped into the last cell so that a host parked on the
/// boundary still belongs to some grid.
///
/// ```
/// use geo::{GridMap, GridCoord, Point2};
///
/// let map = GridMap::paper_default(); // 1000 x 1000 m, 100 m cells
/// let host = Point2::new(250.0, 150.0);
/// let cell = map.cell_of(host);
/// assert_eq!(cell, GridCoord::new(2, 1));
/// assert_eq!(map.cell_center(cell), Point2::new(250.0, 150.0));
/// assert_eq!(map.neighbors_in_field(cell).count(), 8);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GridMap {
    width: f64,
    height: f64,
    cell_side: f64,
    cells_x: i32,
    cells_y: i32,
}

impl GridMap {
    /// Build a grid map.  Panics on non-positive dimensions.
    pub fn new(width: f64, height: f64, cell_side: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "field must have positive area");
        assert!(cell_side > 0.0, "cell side must be positive");
        let cells_x = (width / cell_side).ceil() as i32;
        let cells_y = (height / cell_side).ceil() as i32;
        GridMap {
            width,
            height,
            cell_side,
            cells_x,
            cells_y,
        }
    }

    /// The paper's evaluation field: 1000 x 1000 m, 100 m cells.
    pub fn paper_default() -> Self {
        GridMap::new(1000.0, 1000.0, 100.0)
    }

    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    #[inline]
    pub fn height(&self) -> f64 {
        self.height
    }

    #[inline]
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    #[inline]
    pub fn cells_x(&self) -> i32 {
        self.cells_x
    }

    #[inline]
    pub fn cells_y(&self) -> i32 {
        self.cells_y
    }

    /// Total number of cells in the partition.
    #[inline]
    pub fn cell_count(&self) -> usize {
        (self.cells_x as usize) * (self.cells_y as usize)
    }

    /// Map a position to its grid coordinate.  Positions outside the field
    /// are clamped into it first (mobility keeps hosts inside, but float
    /// round-off at the boundary must not produce an out-of-field cell).
    #[inline]
    pub fn cell_of(&self, p: Point2) -> GridCoord {
        let cx = ((p.x / self.cell_side) as i32).clamp(0, self.cells_x - 1);
        let cy = ((p.y / self.cell_side) as i32).clamp(0, self.cells_y - 1);
        GridCoord::new(cx, cy)
    }

    /// True if the coordinate denotes a cell inside the field.
    #[inline]
    pub fn contains_cell(&self, c: GridCoord) -> bool {
        c.x >= 0 && c.y >= 0 && c.x < self.cells_x && c.y < self.cells_y
    }

    /// The geographic center of a cell, in meters.  For edge cells that are
    /// cut off by the field boundary this is still the center of the full
    /// `d x d` square, matching the paper (hosts compare distance to it).
    #[inline]
    pub fn cell_center(&self, c: GridCoord) -> Point2 {
        Point2::new(
            (c.x as f64 + 0.5) * self.cell_side,
            (c.y as f64 + 0.5) * self.cell_side,
        )
    }

    /// Lower-left corner of a cell.
    #[inline]
    pub fn cell_origin(&self, c: GridCoord) -> Point2 {
        Point2::new(c.x as f64 * self.cell_side, c.y as f64 * self.cell_side)
    }

    /// Distance from a position to the center of the cell containing it.
    #[inline]
    pub fn dist_to_own_center(&self, p: Point2) -> f64 {
        p.distance(self.cell_center(self.cell_of(p)))
    }

    /// In-field neighbours of a cell (up to 8).
    pub fn neighbors_in_field(&self, c: GridCoord) -> impl Iterator<Item = GridCoord> + '_ {
        c.neighbors8().into_iter().filter(|n| self.contains_cell(*n))
    }

    /// A dense index for a cell, usable for `Vec`-backed per-cell state.
    #[inline]
    pub fn cell_index(&self, c: GridCoord) -> usize {
        debug_assert!(self.contains_cell(c));
        (c.y as usize) * (self.cells_x as usize) + (c.x as usize)
    }

    /// Inverse of [`cell_index`](Self::cell_index).
    #[inline]
    pub fn cell_from_index(&self, i: usize) -> GridCoord {
        GridCoord::new(
            (i % self.cells_x as usize) as i32,
            (i / self.cells_x as usize) as i32,
        )
    }

    /// All cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = GridCoord> + '_ {
        (0..self.cell_count()).map(|i| self.cell_from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> GridMap {
        GridMap::paper_default()
    }

    #[test]
    fn paper_default_has_100_cells() {
        assert_eq!(map().cell_count(), 100);
        assert_eq!(map().cells_x(), 10);
        assert_eq!(map().cells_y(), 10);
    }

    #[test]
    fn cell_of_maps_interior_points() {
        let m = map();
        assert_eq!(m.cell_of(Point2::new(0.0, 0.0)), GridCoord::new(0, 0));
        assert_eq!(m.cell_of(Point2::new(99.999, 99.999)), GridCoord::new(0, 0));
        assert_eq!(m.cell_of(Point2::new(100.0, 100.0)), GridCoord::new(1, 1));
        assert_eq!(m.cell_of(Point2::new(550.0, 120.0)), GridCoord::new(5, 1));
    }

    #[test]
    fn far_edge_maps_into_last_cell() {
        let m = map();
        assert_eq!(m.cell_of(Point2::new(1000.0, 1000.0)), GridCoord::new(9, 9));
        // even slightly-outside positions clamp in
        assert_eq!(m.cell_of(Point2::new(1000.0001, -0.0001)), GridCoord::new(9, 0));
    }

    #[test]
    fn cell_center_is_geometric_center() {
        let m = map();
        assert_eq!(m.cell_center(GridCoord::new(0, 0)), Point2::new(50.0, 50.0));
        assert_eq!(m.cell_center(GridCoord::new(9, 9)), Point2::new(950.0, 950.0));
    }

    #[test]
    fn neighbors8_excludes_self_and_has_eight() {
        let c = GridCoord::new(5, 5);
        let n = c.neighbors8();
        assert_eq!(n.len(), 8);
        assert!(!n.contains(&c));
        for x in n {
            assert!(c.is_neighbor(x));
        }
    }

    #[test]
    fn corner_cell_has_three_in_field_neighbors() {
        let m = map();
        let n: Vec<_> = m.neighbors_in_field(GridCoord::new(0, 0)).collect();
        assert_eq!(n.len(), 3);
        let n: Vec<_> = m.neighbors_in_field(GridCoord::new(9, 9)).collect();
        assert_eq!(n.len(), 3);
        let n: Vec<_> = m.neighbors_in_field(GridCoord::new(0, 5)).collect();
        assert_eq!(n.len(), 5);
        let n: Vec<_> = m.neighbors_in_field(GridCoord::new(4, 4)).collect();
        assert_eq!(n.len(), 8);
    }

    #[test]
    fn cell_index_roundtrip() {
        let m = map();
        for c in m.cells() {
            assert_eq!(m.cell_from_index(m.cell_index(c)), c);
        }
        assert_eq!(m.cells().count(), 100);
    }

    #[test]
    fn chebyshev_and_manhattan() {
        let a = GridCoord::new(1, 1);
        let b = GridCoord::new(4, 3);
        assert_eq!(a.chebyshev(b), 3);
        assert_eq!(a.manhattan(b), 5);
        assert!(!a.is_neighbor(b));
        assert!(!a.is_neighbor(a));
    }

    #[test]
    fn non_square_field() {
        let m = GridMap::new(500.0, 300.0, 100.0);
        assert_eq!(m.cells_x(), 5);
        assert_eq!(m.cells_y(), 3);
        assert_eq!(m.cell_count(), 15);
        assert!(m.contains_cell(GridCoord::new(4, 2)));
        assert!(!m.contains_cell(GridCoord::new(5, 0)));
        assert!(!m.contains_cell(GridCoord::new(0, 3)));
        assert!(!m.contains_cell(GridCoord::new(-1, 0)));
    }

    #[test]
    fn ragged_field_rounds_cell_count_up() {
        let m = GridMap::new(250.0, 250.0, 100.0);
        assert_eq!(m.cells_x(), 3);
        assert_eq!(m.cell_of(Point2::new(249.0, 249.0)), GridCoord::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_side_panics() {
        GridMap::new(100.0, 100.0, 0.0);
    }
}
