//! Planar points and vectors (meters, meters/second).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the plane, in meters.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

/// A displacement or velocity in the plane (meters or meters/second).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Point2 {
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — prefer this in hot loops (range tests)
    /// to avoid the sqrt.
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// True if `other` lies within `range` meters (inclusive).
    #[inline]
    pub fn within_range(self, other: Point2, range: f64) -> bool {
        self.distance_sq(other) <= range * range
    }

    /// Linear interpolation: `self` at t=0, `other` at t=1.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Component-wise clamp into the rectangle `[0, w] x [0, h]`.
    #[inline]
    pub fn clamp_to(self, w: f64, h: f64) -> Point2 {
        Point2::new(self.x.clamp(0.0, w), self.y.clamp(0.0, h))
    }

    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm (speed, for a velocity vector).
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Unit vector in the same direction; `Vec2::ZERO` if the norm is zero.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / n, self.y / n)
        }
    }

    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, v: Vec2) -> Point2 {
        Point2::new(self.x - v.x, self.y - v.y)
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Point2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, other: Vec2) {
        self.x -= other.x;
        self.y -= other.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, k: f64) -> Vec2 {
        Vec2::new(self.x / k, self.y / k)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Debug for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Debug for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point2::new(3.0, 4.0);
        let b = Point2::new(0.0, 0.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn within_range_is_inclusive() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(250.0, 0.0);
        assert!(a.within_range(b, 250.0));
        assert!(!a.within_range(b, 249.999));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, -20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(5.0, -10.0));
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.normalized().norm(), 1.0);
        assert_eq!((v * 2.0).norm(), 10.0);
        assert_eq!((v / 2.0), Vec2::new(1.5, 2.0));
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
    }

    #[test]
    fn point_vector_motion() {
        let p = Point2::new(1.0, 1.0);
        let v = Vec2::new(2.0, -1.0);
        assert_eq!(p + v, Point2::new(3.0, 0.0));
        assert_eq!(p - v, Point2::new(-1.0, 2.0));
        assert_eq!((p + v) - p, v);
    }

    #[test]
    fn clamp_to_field() {
        let p = Point2::new(-5.0, 1200.0);
        assert_eq!(p.clamp_to(1000.0, 1000.0), Point2::new(0.0, 1000.0));
    }
}
