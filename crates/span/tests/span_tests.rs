//! End-to-end tests for the Span baseline.

use manet::{FlowSet, HostSetup, NodeId, Point2, PowerProfile, SimDuration, SimTime, World, WorldConfig};
use mobility::MobilityTrace;
use span::{SpanConfig, SpanProto, SpanState};
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(3_000_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    // Span is not location-aware: hosts carry no GPS
    HostSetup {
        profile: PowerProfile::paper_no_gps(),
        ..HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
    }
}

fn span_world(hosts: Vec<HostSetup>, flows: FlowSet, seed: u64) -> World<SpanProto> {
    World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        SpanProto::new(SpanConfig::default(), id)
    })
}

/// A chain where middle nodes are necessary bridges: 0-1-2-3-4 at 240 m
/// spacing (only adjacent nodes hear each other).
fn chain() -> Vec<HostSetup> {
    (0..5).map(|i| still(20.0 + i as f64 * 240.0, 500.0)).collect()
}

#[test]
fn bridge_nodes_become_coordinators() {
    let mut w = span_world(chain(), FlowSet::default(), 1);
    w.run_until(SimTime::from_secs(15));
    // the middle nodes each see two neighbours that cannot hear each
    // other: the eligibility rule forces them up
    for i in [1u32, 2, 3] {
        assert!(
            w.protocol(NodeId(i)).is_coordinator(),
            "node {i} must coordinate, state {:?}",
            w.protocol(NodeId(i)).state()
        );
    }
    // the chain ends bridge nothing and should duty-cycle
    for i in [0u32, 4] {
        assert!(
            !w.protocol(NodeId(i)).is_coordinator(),
            "end node {i} needs no duty, state {:?}",
            w.protocol(NodeId(i)).state()
        );
    }
}

#[test]
fn span_delivers_over_the_backbone() {
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(4),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(35),
        burst: None,
    }]);
    let mut w = span_world(chain(), flows, 2);
    w.run_until(SimTime::from_secs(40));
    let pdr = w.ledger().delivery_rate().unwrap();
    assert!(pdr >= 0.9, "pdr {pdr}");
}

#[test]
fn psm_nodes_duty_cycle_and_save_energy() {
    // a dense clique: one/two coordinators suffice, the rest PSM-cycle
    let hosts: Vec<HostSetup> = (0..6)
        .map(|i| still(480.0 + (i % 3) as f64 * 20.0, 480.0 + (i / 3) as f64 * 20.0))
        .collect();
    let mut w = span_world(hosts, FlowSet::default(), 3);
    w.run_until(SimTime::from_secs(120));
    let coordinators = (0..6u32)
        .filter(|i| w.protocol(NodeId(*i)).is_coordinator())
        .count();
    assert!(
        coordinators <= 2,
        "a clique needs almost no backbone, got {coordinators}"
    );
    // PSM sleepers burn far less than idle, but far more than a pure
    // sleeper (the periodic wake tax — the paper's §1 critique)
    let psm: Vec<u32> = (0..6u32)
        .filter(|i| !w.protocol(NodeId(*i)).is_coordinator())
        .collect();
    assert!(!psm.is_empty());
    for i in &psm {
        let j = w.node_consumed_j(NodeId(*i));
        let idle_only = 120.0 * 0.83;
        let sleep_only = 120.0 * 0.13;
        assert!(j < 0.75 * idle_only, "PSM node {i} must save energy: {j} J");
        assert!(j > sleep_only, "PSM node {i} cannot beat pure sleep: {j} J");
        let audit = w.node_energy_audit(NodeId(*i));
        assert!(
            audit.sleep_secs > 60.0,
            "node {i} must spend most time asleep: {audit:?}"
        );
    }
    // and they really cycled
    let cycles: u64 = psm.iter().map(|i| w.protocol(NodeId(*i)).stats.psm_cycles).sum();
    assert!(cycles > 100, "PSM wakeups expected, got {cycles}");
}

#[test]
fn coordinator_withdraws_when_redundant() {
    // two candidate bridges side by side: after min_tenure one of them
    // should stand down (the other covers all pairs)
    let hosts = vec![
        still(20.0, 500.0),
        still(250.0, 490.0), // bridge A
        still(250.0, 510.0), // bridge B
        still(480.0, 500.0),
    ];
    let mut w = span_world(hosts, FlowSet::default(), 4);
    w.run_until(SimTime::from_secs(120));
    let bridges: Vec<bool> = [1u32, 2]
        .iter()
        .map(|i| w.protocol(NodeId(*i)).is_coordinator())
        .collect();
    let withdrawals: u64 = [1u32, 2]
        .iter()
        .map(|i| w.protocol(NodeId(*i)).stats.withdrawals)
        .sum();
    // exactly one bridge remains (or both never rose because contention
    // resolved early); never both forever
    assert!(
        !(bridges[0] && bridges[1]) || withdrawals > 0,
        "redundant coordinators must thin out: {bridges:?}, withdrawals {withdrawals}"
    );
    // connectivity preserved: at least one bridge is up
    assert!(
        bridges[0] || bridges[1],
        "the cut vertex pair must keep one coordinator"
    );
}

#[test]
fn span_is_deterministic() {
    let run = || {
        let mut w = span_world(chain(), FlowSet::default(), 9);
        w.run_until(SimTime::from_secs(30));
        (
            *w.stats(),
            (0..5).map(|i| w.node_consumed_j(NodeId(i))).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn endpoints_stay_up_and_never_coordinate() {
    let mut hosts = chain();
    hosts[0] = HostSetup {
        profile: PowerProfile::paper_no_gps(),
        ..HostSetup::infinite(MobilityTrace::stationary(Point2::new(20.0, 500.0), HORIZON))
    };
    let mut w = World::new(WorldConfig::paper_default(5), hosts, FlowSet::default(), |id| {
        if id == NodeId(0) {
            SpanProto::endpoint(SpanConfig::default(), id)
        } else {
            SpanProto::new(SpanConfig::default(), id)
        }
    });
    w.run_until(SimTime::from_secs(60));
    assert_eq!(w.protocol(NodeId(0)).state(), SpanState::Endpoint);
    assert_eq!(w.node_mode(NodeId(0)), manet::RadioMode::Idle);
}
