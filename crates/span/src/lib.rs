//! # Span — coordinator-based topology maintenance (extension baseline)
//!
//! The third protocol the paper discusses (§1): Chen, Jamieson,
//! Balakrishnan & Morris, MobiCom'01.  Span is **not location-aware** —
//! no grids, no GPS.  Instead:
//!
//! * each node learns its neighbourhood (and its neighbours'
//!   neighbourhoods) from periodic HELLOs;
//! * a node elects itself **coordinator** under the *coordinator
//!   eligibility rule*: two of its neighbours cannot reach each other
//!   directly or through existing coordinators; announcement contention is
//!   delayed so that nodes with more remaining energy and more utility
//!   announce first;
//! * coordinators stay awake continuously and form the routing backbone;
//! * non-coordinators run an 802.11 PSM-style duty cycle: they sleep but
//!   **wake at every beacon window** to exchange announcements and pick up
//!   pending traffic — exactly the periodic-wakeup cost the paper holds
//!   against Span ("sleeping hosts need not wake up periodically" is
//!   ECGRID's advantage);
//! * routing is AODV over the awake backbone (as in the Span paper).
//!
//! The paper's qualitative claim — "Span (not location-aware) does not
//! benefit from increasing host density" — falls out of the model: every
//! non-coordinator pays the fixed PSM wake tax regardless of how many
//! neighbours could share the duty, while ECGRID sleepers pay only the
//! 130 mW sleep floor.  The `ext_span_density` binary in `runner`
//! measures exactly this.

pub mod proto;

pub use proto::{SpanConfig, SpanProto, SpanState, SpanStats};
