//! The Span state machine: neighbourhood discovery, coordinator
//! eligibility/withdrawal, PSM duty cycling, AODV over the backbone.

use aodv::{Action, AodvConfig, AodvCore, AodvMsg, AodvStats, AodvTimer};
use manet::{AppPacket, Ctx, FrameKind, NodeId, Protocol, SimTime, WireSize};
use rand::Rng;
use std::collections::HashMap;

/// Span parameters (times in seconds).
#[derive(Clone, Copy, Debug)]
pub struct SpanConfig {
    /// HELLO beacon period for awake nodes.
    pub hello_interval: f64,
    /// Neighbour-table entry lifetime.
    pub neighbor_ttl: f64,
    /// PSM beacon period: every non-coordinator wakes at
    /// `t ≡ 0 (mod psm_period)` (synchronized, as under 802.11 TSF).
    pub psm_period: f64,
    /// Length of the awake window at each beacon.
    pub psm_window: f64,
    /// Maximum coordinator-announcement contention delay.
    pub contend_max: f64,
    /// Minimum coordinator tenure before a withdrawal check may succeed.
    pub min_tenure: f64,
    /// Period of the coordinator's withdrawal self-check.
    pub withdraw_check: f64,
    /// Embedded AODV settings.
    pub aodv: AodvConfig,
}

impl Default for SpanConfig {
    fn default() -> Self {
        SpanConfig {
            hello_interval: 1.0,
            neighbor_ttl: 3.5,
            psm_period: 0.3,
            psm_window: 0.03,
            contend_max: 0.3,
            min_tenure: 20.0,
            withdraw_check: 5.0,
            aodv: AodvConfig::default(),
        }
    }
}

/// Node duty state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanState {
    /// Awake backbone member.
    Coordinator,
    /// PSM duty cycle, currently inside the awake window.
    PsmAwake,
    /// PSM duty cycle, radio off until the next beacon.
    PsmSleeping,
    /// Infinite-energy endpoint (always on, never a coordinator, does not
    /// forward) — mirrors the GAF Model-1 endpoints for fair comparisons.
    Endpoint,
}

/// What one HELLO advertises.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanHello {
    pub id: NodeId,
    pub coordinator: bool,
    /// Remaining energy (joules, saturated) — contention input.
    pub energy_j: f64,
    /// The sender's current neighbour ids.
    pub neighbors: Vec<NodeId>,
}

/// Span wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanMsg {
    Hello(SpanHello),
    Aodv(AodvMsg),
}

impl WireSize for SpanMsg {
    fn wire_bytes(&self) -> u32 {
        match self {
            // id 4 + flags 1 + energy 4 + count 1 + 4/neighbor + header 2
            SpanMsg::Hello(h) => 12 + 4 * h.neighbors.len() as u32,
            SpanMsg::Aodv(m) => m.wire_bytes(),
        }
    }
}

/// Span timers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpanTimer {
    /// Endpoint-only periodic HELLO (duty-cycled nodes beacon on window
    /// ticks instead).
    Hello,
    /// Contention backoff before announcing coordinatorship.
    Announce {
        epoch: u32,
    },
    /// Periodic withdrawal self-check while coordinator.
    Withdraw {
        epoch: u32,
    },
    /// The synchronized beacon-window tick every non-endpoint node rides:
    /// sleepers wake, everyone flushes traffic held for sleepers, beacons
    /// go out where they can be heard.
    WindowTick,
    /// End of the PSM awake window (sleep if nothing pending).
    PsmDoze {
        epoch: u32,
    },
    Aodv(AodvTimer),
}

/// Per-host counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    pub coordinator_terms: u64,
    pub withdrawals: u64,
    pub psm_cycles: u64,
    pub hellos: u64,
}

#[derive(Clone, Debug)]
struct NeighborInfo {
    coordinator: bool,
    neighbors: Vec<NodeId>,
    last_heard: SimTime,
}

/// One Span instance.
pub struct SpanProto {
    cfg: SpanConfig,
    me: NodeId,
    state: SpanState,
    neighbors: HashMap<NodeId, NeighborInfo>,
    /// Independent epoch counters so one timer chain cannot invalidate
    /// another (the window tick runs every 300 ms).
    duty_epoch: u32,
    announce_epoch: u32,
    withdraw_epoch: u32,
    contending: bool,
    coordinator_since: f64,
    core: AodvCore,
    /// Frames held for sleeping PSM neighbours until the next window.
    psm_backlog: Vec<(NodeId, AodvMsg)>,
    pub stats: SpanStats,
}

impl SpanProto {
    pub fn new(cfg: SpanConfig, me: NodeId) -> Self {
        SpanProto {
            cfg,
            me,
            state: SpanState::PsmAwake,
            neighbors: HashMap::new(),
            duty_epoch: 0,
            announce_epoch: 0,
            withdraw_epoch: 0,
            contending: false,
            coordinator_since: 0.0,
            core: AodvCore::new(cfg.aodv, me),
            psm_backlog: Vec::new(),
            stats: SpanStats::default(),
        }
    }

    /// A Model-1 style endpoint: always on, no duty cycle, no forwarding.
    pub fn endpoint(cfg: SpanConfig, me: NodeId) -> Self {
        let mut p = Self::new(cfg, me);
        p.state = SpanState::Endpoint;
        p.core.forwards = false;
        p
    }

    pub fn state(&self) -> SpanState {
        self.state
    }

    pub fn is_coordinator(&self) -> bool {
        self.state == SpanState::Coordinator
    }

    pub fn aodv_stats(&self) -> &AodvStats {
        &self.core.stats
    }

    pub fn neighbor_count(&self) -> usize {
        self.neighbors.len()
    }

    fn send_hello(&mut self, ctx: &mut Ctx<'_, Self>) {
        let now = ctx.now();
        let ttl = self.cfg.neighbor_ttl;
        let mut ids: Vec<NodeId> = self
            .neighbors
            .iter()
            .filter(|(_, n)| now.since(n.last_heard).as_secs_f64() < ttl)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        self.stats.hellos += 1;
        ctx.broadcast(SpanMsg::Hello(SpanHello {
            id: self.me,
            coordinator: self.state == SpanState::Coordinator,
            energy_j: ctx.remaining_j().min(1e12),
            neighbors: ids,
        }));
    }

    /// The coordinator eligibility rule over the 2-hop view: some pair of
    /// my live neighbours can reach each other neither directly nor via a
    /// single coordinator.  `exclude_self` runs the check as if I were not
    /// a coordinator (the withdrawal test).
    fn eligibility_gap(&self, now: SimTime, exclude_self: bool) -> bool {
        let ttl = self.cfg.neighbor_ttl;
        let live: Vec<(&NodeId, &NeighborInfo)> = self
            .neighbors
            .iter()
            .filter(|(_, n)| now.since(n.last_heard).as_secs_f64() < ttl)
            .collect();
        // advertised neighbour lists are sorted (see send_hello), so
        // membership is a binary search — the rule is O(deg² · log deg +
        // deg² · coordinators), which matters at high density
        let coords: Vec<&NodeId> = live
            .iter()
            .filter(|(uc, nc)| nc.coordinator && (!exclude_self || **uc != self.me))
            .map(|(uc, _)| *uc)
            .collect();
        for (i, (ua, na)) in live.iter().enumerate() {
            for (ub, nb) in live.iter().skip(i + 1) {
                // directly connected?
                if na.neighbors.binary_search(ub).is_ok() || nb.neighbors.binary_search(ua).is_ok() {
                    continue;
                }
                // via one coordinator c (≠ me if excluded)?
                let covered = coords.iter().any(|uc| {
                    *uc != *ua
                        && *uc != *ub
                        && na.neighbors.binary_search(uc).is_ok()
                        && nb.neighbors.binary_search(uc).is_ok()
                });
                if !covered {
                    return true; // an uncovered pair exists
                }
            }
        }
        false
    }

    fn maybe_contend(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.state == SpanState::Coordinator || self.state == SpanState::Endpoint || self.contending {
            return;
        }
        if !self.eligibility_gap(ctx.now(), false) {
            return;
        }
        // announcement contention: richer nodes back off less (Span's
        // utility-weighted delay, simplified to the energy term)
        self.contending = true;
        self.announce_epoch += 1;
        let frac = (ctx.rbrc()).clamp(0.0, 1.0);
        let delay = self.cfg.contend_max * (1.0 - frac * 0.8) * ctx.rng().gen_range(0.2..1.0);
        ctx.set_timer_secs(
            delay.max(0.005),
            SpanTimer::Announce {
                epoch: self.announce_epoch,
            },
        );
    }

    fn become_coordinator(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.state = SpanState::Coordinator;
        self.stats.coordinator_terms += 1;
        self.coordinator_since = ctx.now().as_secs_f64();
        self.duty_epoch += 1; // cancels any pending doze
        self.withdraw_epoch += 1;
        ctx.wake();
        self.send_hello(ctx);
        ctx.set_timer_secs(
            self.cfg.withdraw_check,
            SpanTimer::Withdraw {
                epoch: self.withdraw_epoch,
            },
        );
        // flush anything held for the PSM schedule — we are always on now
        let backlog = std::mem::take(&mut self.psm_backlog);
        for (to, m) in backlog {
            ctx.unicast(to, SpanMsg::Aodv(m));
        }
    }

    /// Seconds until the next synchronized PSM beacon.
    fn until_next_window(&self, now: SimTime) -> f64 {
        let t = now.as_secs_f64();
        let p = self.cfg.psm_period;
        let next = (t / p).floor() * p + p;
        (next - t).max(0.001)
    }

    fn in_window(&self, now: SimTime) -> bool {
        let t = now.as_secs_f64();
        let p = self.cfg.psm_period;
        t - (t / p).floor() * p < self.cfg.psm_window
    }

    fn psm_doze(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.state = SpanState::PsmSleeping;
        self.duty_epoch += 1;
        ctx.sleep();
        // the standing WindowTick chain wakes us at the next beacon
    }

    /// The synchronized window tick, every `psm_period`, for every
    /// non-endpoint node regardless of state.
    fn window_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        // keep the chain alive first
        let next = self.until_next_window(ctx.now());
        ctx.set_timer_secs(next, SpanTimer::WindowTick);

        match self.state {
            SpanState::Coordinator => {
                // flush traffic held for sleepers (they are awake now) and
                // beacon inside the window so they hear the backbone
                let backlog = std::mem::take(&mut self.psm_backlog);
                for (to, m) in backlog {
                    ctx.unicast(to, SpanMsg::Aodv(m));
                }
                self.send_hello(ctx);
            }
            SpanState::PsmSleeping | SpanState::PsmAwake => {
                self.state = SpanState::PsmAwake;
                self.stats.psm_cycles += 1;
                self.duty_epoch += 1;
                ctx.wake();
                let backlog = std::mem::take(&mut self.psm_backlog);
                for (to, m) in backlog {
                    ctx.unicast(to, SpanMsg::Aodv(m));
                }
                // beacon roughly once a second so neighbour tables stay
                // fresh without paying a full hello every 300 ms window
                if self.stats.psm_cycles.is_multiple_of(3) {
                    self.send_hello(ctx);
                    self.maybe_contend(ctx);
                }
                ctx.set_timer_secs(
                    self.cfg.psm_window,
                    SpanTimer::PsmDoze {
                        epoch: self.duty_epoch,
                    },
                );
            }
            SpanState::Endpoint => {}
        }
    }

    /// Queue or send an AODV unicast respecting the target's PSM schedule.
    fn unicast_aware(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, m: AodvMsg) {
        let asleep_target =
            self.neighbors.get(&to).map(|n| !n.coordinator).unwrap_or(false) && !self.in_window(ctx.now());
        if asleep_target {
            self.psm_backlog.push((to, m));
        } else {
            ctx.unicast(to, SpanMsg::Aodv(m));
        }
    }

    fn run_aware(&mut self, ctx: &mut Ctx<'_, Self>, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Broadcast(m) => ctx.broadcast(SpanMsg::Aodv(m)),
                Action::Unicast(to, m) => self.unicast_aware(ctx, to, m),
                Action::Deliver(p) => ctx.deliver_app(p),
                Action::Timer(secs, t) => {
                    ctx.set_timer_secs(secs, SpanTimer::Aodv(t));
                }
            }
        }
    }
}

impl Protocol for SpanProto {
    type Msg = SpanMsg;
    type Timer = SpanTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.state == SpanState::Endpoint {
            let stagger = ctx.rng().gen_range(0.0..0.5);
            ctx.set_timer_secs(stagger, SpanTimer::Hello);
            return;
        }
        // everyone starts awake, learns the neighbourhood (two hellos),
        // then the window-tick cycle takes over
        self.state = SpanState::PsmAwake;
        let stagger = ctx.rng().gen_range(0.0..0.5);
        self.send_hello(ctx);
        ctx.set_timer_secs(0.8 + stagger, SpanTimer::Hello); // one settling re-beacon
                                                             // stay continuously awake for a settling period to learn the
                                                             // neighbourhood, then join the synchronized window cycle
        let settle = 2.0 + ctx.rng().gen_range(0.0..0.2);
        ctx.set_timer_secs(settle, SpanTimer::WindowTick);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, _kind: FrameKind, msg: &SpanMsg) {
        match msg {
            SpanMsg::Hello(h) => {
                self.neighbors.insert(
                    src,
                    NeighborInfo {
                        coordinator: h.coordinator,
                        neighbors: h.neighbors.clone(),
                        last_heard: ctx.now(),
                    },
                );
                // eligibility is evaluated on window ticks (rate-limited:
                // the rule is quadratic in degree and hellos arrive from
                // every neighbour every cycle)
            }
            SpanMsg::Aodv(m) => {
                // only the backbone relays route requests (plus the
                // destination itself) — Span routes over coordinators
                if let AodvMsg::Rreq { dst, .. } = m {
                    let backbone = matches!(self.state, SpanState::Coordinator | SpanState::Endpoint);
                    if !backbone && *dst != self.me {
                        return;
                    }
                }
                let acts = self.core.on_msg(ctx.now(), src, m);
                self.run_aware(ctx, acts);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: SpanTimer) {
        match timer {
            SpanTimer::Hello => {
                if ctx.mode() != manet::RadioMode::Sleep {
                    self.send_hello(ctx);
                }
                // only endpoints keep the plain hello chain going; duty
                // cycled nodes beacon from their window ticks
                if self.state == SpanState::Endpoint {
                    let jitter = 1.0 + 0.1 * (ctx.rng().gen::<f64>() * 2.0 - 1.0);
                    ctx.set_timer_secs(self.cfg.hello_interval * jitter, SpanTimer::Hello);
                }
            }
            SpanTimer::Announce { epoch } => {
                if epoch != self.announce_epoch {
                    return;
                }
                self.contending = false;
                // re-check: someone else may have announced during backoff
                if self.state != SpanState::Coordinator && self.eligibility_gap(ctx.now(), false) {
                    self.become_coordinator(ctx);
                }
            }
            SpanTimer::Withdraw { epoch } => {
                if epoch != self.withdraw_epoch || self.state != SpanState::Coordinator {
                    return;
                }
                let tenure = ctx.now().as_secs_f64() - self.coordinator_since;
                if tenure >= self.cfg.min_tenure && !self.eligibility_gap(ctx.now(), true) {
                    // the rest of the backbone covers my pairs: withdraw
                    self.stats.withdrawals += 1;
                    self.state = SpanState::PsmAwake;
                    self.send_hello(ctx); // announce with the flag cleared
                    self.duty_epoch += 1;
                    ctx.set_timer_secs(
                        self.cfg.psm_window,
                        SpanTimer::PsmDoze {
                            epoch: self.duty_epoch,
                        },
                    );
                } else {
                    ctx.set_timer_secs(self.cfg.withdraw_check, SpanTimer::Withdraw { epoch });
                }
            }
            SpanTimer::WindowTick => {
                self.window_tick(ctx);
            }
            SpanTimer::PsmDoze { epoch } => {
                if epoch == self.duty_epoch && self.state == SpanState::PsmAwake {
                    self.psm_doze(ctx);
                }
            }
            SpanTimer::Aodv(t) => {
                let acts = self.core.on_timer(ctx.now(), t);
                self.run_aware(ctx, acts);
            }
        }
    }

    fn on_app_send(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, packet: AppPacket) {
        if self.state == SpanState::PsmSleeping {
            // wake out-of-schedule to send own traffic (PSM allows this)
            self.state = SpanState::PsmAwake;
            self.duty_epoch += 1;
            ctx.wake();
            ctx.set_timer_secs(
                self.cfg.psm_window,
                SpanTimer::PsmDoze {
                    epoch: self.duty_epoch,
                },
            );
        }
        let acts = self.core.send_data(ctx.now(), dst, packet);
        self.run_aware(ctx, acts);
    }

    fn on_unicast_failed(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, msg: &SpanMsg) {
        if let SpanMsg::Aodv(m) = msg {
            // a PSM neighbour we thought awake was not: hold for its window
            if let Some(n) = self.neighbors.get(&dst) {
                if !n.coordinator {
                    if let AodvMsg::Data { .. } = m {
                        self.psm_backlog.push((dst, *m));
                        return;
                    }
                }
            }
            let acts = self.core.on_link_failure(ctx.now(), dst, m);
            self.run_aware(ctx, acts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet::GridCoord;

    fn info(coordinator: bool, neighbors: &[u32]) -> NeighborInfo {
        NeighborInfo {
            coordinator,
            neighbors: neighbors.iter().map(|i| NodeId(*i)).collect(),
            last_heard: SimTime::from_secs(100),
        }
    }

    fn proto_with(neigh: Vec<(u32, NeighborInfo)>) -> SpanProto {
        let mut p = SpanProto::new(SpanConfig::default(), NodeId(0));
        for (id, n) in neigh {
            p.neighbors.insert(NodeId(id), n);
        }
        p
    }

    #[test]
    fn eligibility_fires_on_disconnected_neighbors() {
        // neighbours 1 and 2 cannot hear each other and no coordinator
        // joins them: node 0 must be eligible
        let p = proto_with(vec![(1, info(false, &[0])), (2, info(false, &[0]))]);
        assert!(p.eligibility_gap(SimTime::from_secs(100), false));
    }

    #[test]
    fn no_gap_when_neighbors_hear_each_other() {
        let p = proto_with(vec![(1, info(false, &[0, 2])), (2, info(false, &[0, 1]))]);
        assert!(!p.eligibility_gap(SimTime::from_secs(100), false));
    }

    #[test]
    fn no_gap_when_a_coordinator_bridges() {
        // 1 and 2 don't hear each other but both hear coordinator 3
        let p = proto_with(vec![
            (1, info(false, &[0, 3])),
            (2, info(false, &[0, 3])),
            (3, info(true, &[0, 1, 2])),
        ]);
        assert!(!p.eligibility_gap(SimTime::from_secs(100), false));
    }

    #[test]
    fn withdrawal_check_excludes_self() {
        // I (node 0) am the only bridge between 1 and 2 — with exclude_self
        // the pair is uncovered, so I must NOT withdraw
        let mut p = proto_with(vec![(1, info(false, &[0])), (2, info(false, &[0]))]);
        p.state = SpanState::Coordinator;
        assert!(
            p.eligibility_gap(SimTime::from_secs(100), true),
            "withdrawing would break 1-2"
        );
        // an independent coordinator 3 appears bridging them: now safe
        p.neighbors.insert(NodeId(3), info(true, &[0, 1, 2]));
        p.neighbors.insert(NodeId(1), info(false, &[0, 3]));
        p.neighbors.insert(NodeId(2), info(false, &[0, 3]));
        assert!(!p.eligibility_gap(SimTime::from_secs(100), true));
    }

    #[test]
    fn stale_neighbors_are_ignored() {
        let mut p = proto_with(vec![(1, info(false, &[0])), (2, info(false, &[0]))]);
        // both entries heard at t=100; at t=200 they are stale
        assert!(p.eligibility_gap(SimTime::from_secs(101), false));
        assert!(!p.eligibility_gap(SimTime::from_secs(200), false));
        let _ = GridCoord::new(0, 0);
        p.neighbors.clear();
        assert!(!p.eligibility_gap(SimTime::from_secs(100), false));
    }

    #[test]
    fn psm_window_arithmetic() {
        let p = SpanProto::new(SpanConfig::default(), NodeId(0));
        // period 0.3, window 0.03
        assert!(p.in_window(SimTime::from_millis(0)));
        assert!(p.in_window(SimTime::from_millis(29)));
        assert!(!p.in_window(SimTime::from_millis(31)));
        assert!(p.in_window(SimTime::from_millis(300)));
        let until = p.until_next_window(SimTime::from_millis(250));
        assert!((until - 0.05).abs() < 1e-9, "{until}");
    }

    #[test]
    fn hello_wire_size_scales_with_neighbors() {
        let h = SpanMsg::Hello(SpanHello {
            id: NodeId(0),
            coordinator: false,
            energy_j: 500.0,
            neighbors: vec![NodeId(1), NodeId(2), NodeId(3)],
        });
        assert_eq!(h.wire_bytes(), 12 + 12);
    }
}
