//! Declarative scenario files: heterogeneous node groups over a shared
//! field, each with its own battery, radio, GPS quality, mobility model,
//! and traffic role.
//!
//! The format is a hand-rolled TOML-like dialect (DESIGN.md §15) so it
//! parses offline with zero dependencies and reports errors with exact
//! line/column spans:
//!
//! ```text
//! [scenario]
//! name = "dense-square"
//! duration_s = 40
//! seed = 11
//!
//! [[group]]
//! name = "sensors"
//! count = 30
//! role = "peer"
//! mobility = "waypoint"
//! max_speed = 1.0
//!
//! [traffic]
//! pattern = "cbr"
//! flows = 3
//! rate_pps = 1.0
//! ```
//!
//! `parse` validates as it finalizes each table, so malformed input,
//! unknown keys, and out-of-bounds values all carry the offending line
//! and column.  [`ScenarioSpec::to_text`] emits a canonical form that
//! reparses to an equal spec (`parse(spec.to_text()) == spec`), which is
//! the identity the parser property tests hold on to.

mod parse;

pub use parse::{parse, ParseError};

use std::fmt;

/// Hard ceilings the parser enforces (see `GroupSpec::count` and the
/// aggregate host total).  Generous enough for every stress regime in
/// PAPERS.md, tight enough to reject a typo'd `count = 4e9` up front.
pub const MAX_GROUP_COUNT: usize = 100_000;
pub const MAX_TOTAL_HOSTS: usize = 200_000;

/// A parsed, validated scenario file.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Human label; also the per-run metric prefix.
    pub name: String,
    /// Field dimensions in meters.
    pub field_w: f64,
    pub field_h: f64,
    /// Grid cell side in meters (the paper's d).
    pub cell_side: f64,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Master seed; every protocol run on this spec sees identical
    /// mobility and traffic.
    pub seed: u64,
    /// Node groups in file order; group indices are stable and label the
    /// per-group metrics.
    pub groups: Vec<GroupSpec>,
    pub traffic: TrafficSpec,
}

/// One homogeneous population of hosts.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSpec {
    pub name: String,
    pub count: usize,
    /// Initial battery in joules; `None` is the `inf` literal (the host
    /// is excluded from alive/aen metrics, like Model-1 endpoints).
    pub battery_j: Option<f64>,
    /// Per-host capacity variance in [0, 1]: host capacities are scaled
    /// by a deterministic draw in `[1 - var, 1 + var]`.
    pub battery_var: f64,
    /// Radio range in meters.
    pub range_m: f64,
    /// GPS error sigma in meters (0 = perfect positioning).
    pub gps_sigma_m: f64,
    pub role: Role,
    pub mobility: MobilitySpec,
}

/// How a group participates in traffic and the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Runs the protocol and forwards, never terminates flows.
    Relay,
    /// Eligible as a flow source (and forwards).
    Source,
    /// Eligible as a flow destination (and forwards).
    Sink,
    /// Both source- and sink-eligible (the default).
    Peer,
    /// Model-1 endpoint: sources and sinks flows but does not duty-cycle
    /// or forward (GAF/Span); forced to infinite battery.
    Endpoint,
}

impl Role {
    pub fn name(self) -> &'static str {
        match self {
            Role::Relay => "relay",
            Role::Source => "source",
            Role::Sink => "sink",
            Role::Peer => "peer",
            Role::Endpoint => "endpoint",
        }
    }

    pub fn is_source(self) -> bool {
        matches!(self, Role::Source | Role::Peer | Role::Endpoint)
    }

    pub fn is_sink(self) -> bool {
        matches!(self, Role::Sink | Role::Peer | Role::Endpoint)
    }
}

/// Which trajectory generator a group uses, with its parameters.  Plain
/// data — the runner maps it onto `mobility::MobilityModel` impls.
#[derive(Clone, Debug, PartialEq)]
pub enum MobilitySpec {
    /// Uniform random placement, no motion.
    Stationary,
    /// Random waypoint (the paper's §4 model).
    Waypoint { max_speed: f64, pause_s: f64 },
    /// Epoch-based random walk with edge reflection.
    Walk { max_speed: f64, epoch_s: f64 },
    /// Gauss–Markov AR(1) speed/heading.
    GaussMarkov {
        mean_speed: f64,
        alpha: f64,
        epoch_s: f64,
    },
    /// Manhattan-grid street mobility: motion constrained to a street
    /// lattice with `block_m` spacing.
    Manhattan {
        max_speed: f64,
        pause_s: f64,
        block_m: f64,
    },
    /// Reference-point group (convoy) mobility: the group follows one
    /// waypoint trajectory, members jitter within `group_radius_m`.
    Convoy {
        max_speed: f64,
        pause_s: f64,
        group_radius_m: f64,
    },
    /// Disaster-relief hotspot convergence: travel to one of `hotspots`
    /// attraction points, dwell `dwell_s`, repeat.
    Hotspot {
        max_speed: f64,
        hotspots: u32,
        dwell_s: f64,
    },
}

impl MobilitySpec {
    pub fn model_name(&self) -> &'static str {
        match self {
            MobilitySpec::Stationary => "stationary",
            MobilitySpec::Waypoint { .. } => "waypoint",
            MobilitySpec::Walk { .. } => "walk",
            MobilitySpec::GaussMarkov { .. } => "gauss_markov",
            MobilitySpec::Manhattan { .. } => "manhattan",
            MobilitySpec::Convoy { .. } => "convoy",
            MobilitySpec::Hotspot { .. } => "hotspot",
        }
    }
}

/// The scenario's offered load.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficSpec {
    pub pattern: TrafficPattern,
    pub flows: usize,
    pub rate_pps: f64,
    pub packet_bytes: u32,
    /// Flow start time, seconds into the run.
    pub start_s: f64,
}

#[derive(Clone, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Constant bit rate between random (source, sink) pairs.
    Cbr,
    /// On/off bursts: `on_s` seconds of CBR at `rate_pps`, then `off_s`
    /// seconds of silence, repeating.
    Bursty { on_s: f64, off_s: f64 },
    /// Every flow converges on a single sink host (chosen among the
    /// sink-eligible pool), the classic data-collection pattern.
    ManyToOne,
}

impl TrafficPattern {
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::Cbr => "cbr",
            TrafficPattern::Bursty { .. } => "bursty",
            TrafficPattern::ManyToOne => "many_to_one",
        }
    }
}

impl ScenarioSpec {
    /// Total hosts across all groups.
    pub fn total_hosts(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Hosts in groups whose role can source flows.
    pub fn source_hosts(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.role.is_source())
            .map(|g| g.count)
            .sum()
    }

    /// Hosts in groups whose role can sink flows.
    pub fn sink_hosts(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.role.is_sink())
            .map(|g| g.count)
            .sum()
    }

    /// Whether any group is a Model-1 endpoint population.
    pub fn has_endpoints(&self) -> bool {
        self.groups.iter().any(|g| g.role == Role::Endpoint)
    }

    /// Canonical text form.  `parse(spec.to_text())` returns an equal
    /// spec — the roundtrip identity the property tests verify.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("[scenario]\n");
        s.push_str(&format!("name = \"{}\"\n", self.name));
        s.push_str(&format!("field_w = {}\n", self.field_w));
        s.push_str(&format!("field_h = {}\n", self.field_h));
        s.push_str(&format!("cell_side = {}\n", self.cell_side));
        s.push_str(&format!("duration_s = {}\n", self.duration_s));
        s.push_str(&format!("seed = {}\n", self.seed));
        for g in &self.groups {
            s.push_str("\n[[group]]\n");
            s.push_str(&format!("name = \"{}\"\n", g.name));
            s.push_str(&format!("count = {}\n", g.count));
            match g.battery_j {
                Some(j) => s.push_str(&format!("battery_j = {j}\n")),
                None => s.push_str("battery_j = inf\n"),
            }
            s.push_str(&format!("battery_var = {}\n", g.battery_var));
            s.push_str(&format!("range_m = {}\n", g.range_m));
            s.push_str(&format!("gps_sigma_m = {}\n", g.gps_sigma_m));
            s.push_str(&format!("role = \"{}\"\n", g.role.name()));
            s.push_str(&format!("mobility = \"{}\"\n", g.mobility.model_name()));
            match &g.mobility {
                MobilitySpec::Stationary => {}
                MobilitySpec::Waypoint { max_speed, pause_s } => {
                    s.push_str(&format!("max_speed = {max_speed}\n"));
                    s.push_str(&format!("pause_s = {pause_s}\n"));
                }
                MobilitySpec::Walk { max_speed, epoch_s } => {
                    s.push_str(&format!("max_speed = {max_speed}\n"));
                    s.push_str(&format!("epoch_s = {epoch_s}\n"));
                }
                MobilitySpec::GaussMarkov {
                    mean_speed,
                    alpha,
                    epoch_s,
                } => {
                    s.push_str(&format!("mean_speed = {mean_speed}\n"));
                    s.push_str(&format!("alpha = {alpha}\n"));
                    s.push_str(&format!("epoch_s = {epoch_s}\n"));
                }
                MobilitySpec::Manhattan {
                    max_speed,
                    pause_s,
                    block_m,
                } => {
                    s.push_str(&format!("max_speed = {max_speed}\n"));
                    s.push_str(&format!("pause_s = {pause_s}\n"));
                    s.push_str(&format!("block_m = {block_m}\n"));
                }
                MobilitySpec::Convoy {
                    max_speed,
                    pause_s,
                    group_radius_m,
                } => {
                    s.push_str(&format!("max_speed = {max_speed}\n"));
                    s.push_str(&format!("pause_s = {pause_s}\n"));
                    s.push_str(&format!("group_radius_m = {group_radius_m}\n"));
                }
                MobilitySpec::Hotspot {
                    max_speed,
                    hotspots,
                    dwell_s,
                } => {
                    s.push_str(&format!("max_speed = {max_speed}\n"));
                    s.push_str(&format!("hotspots = {hotspots}\n"));
                    s.push_str(&format!("dwell_s = {dwell_s}\n"));
                }
            }
        }
        s.push_str("\n[traffic]\n");
        s.push_str(&format!("pattern = \"{}\"\n", self.traffic.pattern.name()));
        s.push_str(&format!("flows = {}\n", self.traffic.flows));
        s.push_str(&format!("rate_pps = {}\n", self.traffic.rate_pps));
        s.push_str(&format!("packet_bytes = {}\n", self.traffic.packet_bytes));
        s.push_str(&format!("start_s = {}\n", self.traffic.start_s));
        if let TrafficPattern::Bursty { on_s, off_s } = self.traffic.pattern {
            s.push_str(&format!("on_s = {on_s}\n"));
            s.push_str(&format!("off_s = {off_s}\n"));
        }
        s
    }

    /// The group index owning host `i` under contiguous group-order
    /// numbering (group 0's hosts first, then group 1's, ...), or `None`
    /// past the end.
    pub fn group_of_host(&self, i: usize) -> Option<usize> {
        let mut base = 0;
        for (gi, g) in self.groups.iter().enumerate() {
            if i < base + g.count {
                return Some(gi);
            }
            base += g.count;
        }
        None
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} hosts in {} groups, {} {} flows, {} s, seed {})",
            self.name,
            self.total_hosts(),
            self.groups.len(),
            self.traffic.flows,
            self.traffic.pattern.name(),
            self.duration_s,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# a comment
[scenario]
name = "two-pop"            # trailing comment
field_w = 1000
field_h = 800.0
cell_side = 100
duration_s = 40
seed = 11

[[group]]
name = "walkers"
count = 20
battery_j = 500
battery_var = 0.2
range_m = 250
gps_sigma_m = 5.0
role = "peer"
mobility = "waypoint"
max_speed = 1.5
pause_s = 10

[[group]]
name = "base"
count = 2
battery_j = inf
role = "sink"
mobility = "stationary"

[traffic]
pattern = "many_to_one"
flows = 4
rate_pps = 1.0
packet_bytes = 256
start_s = 5
"#;

    #[test]
    fn parses_the_example() {
        let spec = parse(EXAMPLE).unwrap();
        assert_eq!(spec.name, "two-pop");
        assert_eq!(spec.field_h, 800.0);
        assert_eq!(spec.groups.len(), 2);
        assert_eq!(spec.total_hosts(), 22);
        assert_eq!(spec.groups[0].role, Role::Peer);
        assert_eq!(
            spec.groups[0].mobility,
            MobilitySpec::Waypoint {
                max_speed: 1.5,
                pause_s: 10.0
            }
        );
        assert_eq!(spec.groups[1].battery_j, None);
        assert_eq!(spec.groups[1].mobility, MobilitySpec::Stationary);
        assert_eq!(spec.traffic.pattern, TrafficPattern::ManyToOne);
        assert_eq!(spec.traffic.packet_bytes, 256);
    }

    #[test]
    fn roundtrips_through_canonical_text() {
        let spec = parse(EXAMPLE).unwrap();
        let again = parse(&spec.to_text()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn group_of_host_follows_file_order() {
        let spec = parse(EXAMPLE).unwrap();
        assert_eq!(spec.group_of_host(0), Some(0));
        assert_eq!(spec.group_of_host(19), Some(0));
        assert_eq!(spec.group_of_host(20), Some(1));
        assert_eq!(spec.group_of_host(21), Some(1));
        assert_eq!(spec.group_of_host(22), None);
    }

    #[test]
    fn source_and_sink_pools_respect_roles() {
        let spec = parse(EXAMPLE).unwrap();
        assert_eq!(spec.source_hosts(), 20); // peers only
        assert_eq!(spec.sink_hosts(), 22); // peers + the sink group
    }
}
