//! The hand-rolled TOML-like parser (grammar in DESIGN.md §15).
//!
//! Dialect: `[section]` headers (`scenario`, `traffic`), repeated
//! `[[group]]` tables, and `key = value` pairs where a value is a
//! number, a `"quoted string"`, `true`/`false`, or the bare literal
//! `inf`.  `#` starts a comment (outside strings).  Every diagnostic —
//! syntax, unknown key, out-of-bounds value — carries the 1-based line
//! and column it points at.

use crate::{
    GroupSpec, MobilitySpec, Role, ScenarioSpec, TrafficPattern, TrafficSpec, MAX_GROUP_COUNT,
    MAX_TOTAL_HOSTS,
};
use std::fmt;

/// A parse or validation failure, located in the source text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column (in characters) of the offending token.
    pub col: u32,
    pub msg: String,
}

impl ParseError {
    fn new(line: u32, col: u32, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Int(i128),
    Num(f64),
    Str(String),
    Bool(bool),
    Inf,
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) | Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Inf => "inf",
        }
    }
}

/// One `key = value` occurrence with its spans.
#[derive(Clone, Debug)]
struct Entry {
    value: Value,
    line: u32,
    /// Column of the key (unknown-key diagnostics point here).
    key_col: u32,
    /// Column of the value (bounds diagnostics point here).
    val_col: u32,
}

/// An in-order key/entry table for one section.
#[derive(Debug, Default)]
struct Table {
    entries: Vec<(String, Entry)>,
    /// Line of the section header, for aggregate diagnostics.
    header_line: u32,
}

impl Table {
    fn insert(&mut self, key: String, entry: Entry) -> Result<(), ParseError> {
        if self.entries.iter().any(|(k, _)| *k == key) {
            return Err(ParseError::new(
                entry.line,
                entry.key_col,
                format!("duplicate key `{key}`"),
            ));
        }
        self.entries.push((key, entry));
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<Entry> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Error on the first leftover key (in file order).
    fn reject_leftovers(&self, section: &str) -> Result<(), ParseError> {
        if let Some((k, e)) = self.entries.first() {
            return Err(ParseError::new(
                e.line,
                e.key_col,
                format!("unknown key `{k}` in {section}"),
            ));
        }
        Ok(())
    }
}

// ---- typed accessors -------------------------------------------------

fn want_str(e: &Entry) -> Result<String, ParseError> {
    match &e.value {
        Value::Str(s) => Ok(s.clone()),
        other => Err(ParseError::new(
            e.line,
            e.val_col,
            format!("expected a string, found {}", other.type_name()),
        )),
    }
}

fn want_f64(e: &Entry) -> Result<f64, ParseError> {
    match e.value {
        Value::Int(i) => Ok(i as f64),
        Value::Num(x) => Ok(x),
        ref other => Err(ParseError::new(
            e.line,
            e.val_col,
            format!("expected a number, found {}", other.type_name()),
        )),
    }
}

fn want_int(e: &Entry) -> Result<i128, ParseError> {
    match e.value {
        Value::Int(i) => Ok(i),
        ref other => Err(ParseError::new(
            e.line,
            e.val_col,
            format!("expected an integer, found {}", other.type_name()),
        )),
    }
}

/// A finite number bounded to `[lo, hi]` (use `lo > -inf` exclusivity via
/// `lo_excl`).
fn bounded_f64(e: &Entry, key: &str, lo: f64, hi: f64, lo_excl: bool) -> Result<f64, ParseError> {
    let x = want_f64(e)?;
    let below = if lo_excl { x <= lo } else { x < lo };
    if !x.is_finite() || below || x > hi {
        let op = if lo_excl { "(" } else { "[" };
        return Err(ParseError::new(
            e.line,
            e.val_col,
            format!("{key} must be in {op}{lo}, {hi}], got {x}"),
        ));
    }
    Ok(x)
}

fn bounded_usize(e: &Entry, key: &str, lo: usize, hi: usize) -> Result<usize, ParseError> {
    let i = want_int(e)?;
    if i < lo as i128 || i > hi as i128 {
        return Err(ParseError::new(
            e.line,
            e.val_col,
            format!("{key} must be in [{lo}, {hi}], got {i}"),
        ));
    }
    Ok(i as usize)
}

// ---- line-level scanning ---------------------------------------------

/// Strip a `#` comment (quote-aware) and return the effective line.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// 1-based column (in characters) of byte offset `byte` within `line`.
fn col_at(line: &str, byte: usize) -> u32 {
    line[..byte].chars().count() as u32 + 1
}

fn valid_key(k: &str) -> bool {
    !k.is_empty()
        && k.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(raw: &str, lineno: u32, col: u32) -> Result<Value, ParseError> {
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(ParseError::new(lineno, col, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(ParseError::new(lineno, col, "stray quote inside string"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "inf" => return Ok(Value::Inf),
        _ => {}
    }
    let looks_int = {
        let digits = raw.strip_prefix('-').unwrap_or(raw);
        !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit())
    };
    if looks_int {
        if let Ok(i) = raw.parse::<i128>() {
            return Ok(Value::Int(i));
        }
    }
    if let Ok(x) = raw.parse::<f64>() {
        if x.is_finite() {
            return Ok(Value::Num(x));
        }
    }
    Err(ParseError::new(
        lineno,
        col,
        format!("invalid value {raw:?} (expected a number, \"string\", true/false, or inf)"),
    ))
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    None,
    Scenario,
    Group,
    Traffic,
}

/// Parse and validate a scenario file.
pub fn parse(text: &str) -> Result<ScenarioSpec, ParseError> {
    let mut scenario_tbl: Option<Table> = None;
    let mut traffic_tbl: Option<Table> = None;
    let mut group_tbls: Vec<Table> = Vec::new();
    let mut section = Section::None;

    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let line = strip_comment(raw_line);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let start_byte = line.len() - line.trim_start().len();
        let start_col = col_at(line, start_byte);

        if let Some(rest) = trimmed.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(ParseError::new(lineno, start_col, "expected `[[group]]`"));
            };
            if name.trim() != "group" {
                return Err(ParseError::new(
                    lineno,
                    start_col + 2,
                    format!("unknown array section `[[{}]]` (expected [[group]])", name.trim()),
                ));
            }
            group_tbls.push(Table {
                header_line: lineno,
                ..Table::default()
            });
            section = Section::Group;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ParseError::new(lineno, start_col, "unclosed section header"));
            };
            let name = name.trim();
            let slot = match name {
                "scenario" => {
                    section = Section::Scenario;
                    &mut scenario_tbl
                }
                "traffic" => {
                    section = Section::Traffic;
                    &mut traffic_tbl
                }
                other => {
                    return Err(ParseError::new(
                        lineno,
                        start_col + 1,
                        format!("unknown section `[{other}]` (expected [scenario], [[group]], or [traffic])"),
                    ));
                }
            };
            if slot.is_some() {
                return Err(ParseError::new(
                    lineno,
                    start_col,
                    format!("duplicate section `[{name}]`"),
                ));
            }
            *slot = Some(Table {
                header_line: lineno,
                ..Table::default()
            });
            continue;
        }

        // key = value
        let Some(eq_byte) = line.find('=') else {
            return Err(ParseError::new(
                lineno,
                start_col,
                "expected `key = value` or a section header",
            ));
        };
        let key = line[..eq_byte].trim();
        if !valid_key(key) {
            return Err(ParseError::new(lineno, start_col, format!("invalid key {key:?}")));
        }
        let val_raw = line[eq_byte + 1..].trim();
        let val_byte = eq_byte + 1 + (line[eq_byte + 1..].len() - line[eq_byte + 1..].trim_start().len());
        let val_col = col_at(line, val_byte);
        if val_raw.is_empty() {
            return Err(ParseError::new(
                lineno,
                val_col,
                format!("key `{key}` has no value"),
            ));
        }
        let value = parse_value(val_raw, lineno, val_col)?;
        let entry = Entry {
            value,
            line: lineno,
            key_col: start_col,
            val_col,
        };
        let tbl = match section {
            Section::None => {
                return Err(ParseError::new(
                    lineno,
                    start_col,
                    format!("key `{key}` appears before any section header"),
                ));
            }
            Section::Scenario => scenario_tbl.as_mut().unwrap(),
            Section::Traffic => traffic_tbl.as_mut().unwrap(),
            Section::Group => group_tbls.last_mut().unwrap(),
        };
        tbl.insert(key.to_string(), entry)?;
    }

    // ---- finalize [scenario] ----
    let Some(mut sc) = scenario_tbl else {
        return Err(ParseError::new(1, 1, "missing [scenario] section"));
    };
    let name = match sc.take("name") {
        Some(e) => want_str(&e)?,
        None => "unnamed".to_string(),
    };
    let field_w = match sc.take("field_w") {
        Some(e) => bounded_f64(&e, "field_w", 0.0, 100_000.0, true)?,
        None => 1000.0,
    };
    let field_h = match sc.take("field_h") {
        Some(e) => bounded_f64(&e, "field_h", 0.0, 100_000.0, true)?,
        None => 1000.0,
    };
    let cell_side = match sc.take("cell_side") {
        Some(e) => bounded_f64(&e, "cell_side", 0.0, 10_000.0, true)?,
        None => 100.0,
    };
    let duration_s = match sc.take("duration_s") {
        Some(e) => bounded_f64(&e, "duration_s", 0.0, 10_000_000.0, true)?,
        None => {
            return Err(ParseError::new(
                sc.header_line,
                1,
                "[scenario] is missing required key `duration_s`",
            ));
        }
    };
    let seed = match sc.take("seed") {
        Some(e) => {
            let i = want_int(&e)?;
            if !(0..=u64::MAX as i128).contains(&i) {
                return Err(ParseError::new(
                    e.line,
                    e.val_col,
                    format!("seed must be a u64, got {i}"),
                ));
            }
            i as u64
        }
        None => {
            return Err(ParseError::new(
                sc.header_line,
                1,
                "[scenario] is missing required key `seed`",
            ));
        }
    };
    sc.reject_leftovers("[scenario]")?;

    // ---- finalize [[group]] tables ----
    if group_tbls.is_empty() {
        return Err(ParseError::new(
            sc.header_line,
            1,
            "scenario has no [[group]] sections",
        ));
    }
    let mut groups = Vec::with_capacity(group_tbls.len());
    for mut g in group_tbls {
        groups.push(finalize_group(&mut g, field_w.min(field_h))?);
    }
    let total: usize = groups.iter().map(|g: &GroupSpec| g.count).sum();
    if total > MAX_TOTAL_HOSTS {
        return Err(ParseError::new(
            1,
            1,
            format!("total host count {total} exceeds the {MAX_TOTAL_HOSTS} ceiling"),
        ));
    }

    // ---- finalize [traffic] ----
    let traffic = match traffic_tbl {
        Some(mut t) => finalize_traffic(&mut t, duration_s)?,
        None => TrafficSpec {
            pattern: TrafficPattern::Cbr,
            flows: 0,
            rate_pps: 1.0,
            packet_bytes: 512,
            start_s: 5.0,
        },
    };

    let spec = ScenarioSpec {
        name,
        field_w,
        field_h,
        cell_side,
        duration_s,
        seed,
        groups,
        traffic,
    };

    // aggregate traffic-vs-roles checks
    if spec.traffic.flows > 0 {
        let eligible: usize = spec
            .groups
            .iter()
            .filter(|g| g.role.is_source() || g.role.is_sink())
            .map(|g| g.count)
            .sum();
        if spec.source_hosts() == 0 || spec.sink_hosts() == 0 || eligible < 2 {
            return Err(ParseError::new(
                1,
                1,
                "traffic declares flows but the groups offer no (source, sink) pair \
                 (need a source-eligible and a distinct sink-eligible host)",
            ));
        }
    }
    Ok(spec)
}

/// All keys that parameterize some mobility model, with the models each
/// applies to — used for the "does not apply" diagnostic.
const MOBILITY_PARAMS: &[(&str, &[&str])] = &[
    (
        "max_speed",
        &["waypoint", "walk", "manhattan", "convoy", "hotspot"],
    ),
    ("pause_s", &["waypoint", "manhattan", "convoy"]),
    ("epoch_s", &["walk", "gauss_markov"]),
    ("mean_speed", &["gauss_markov"]),
    ("alpha", &["gauss_markov"]),
    ("block_m", &["manhattan"]),
    ("group_radius_m", &["convoy"]),
    ("hotspots", &["hotspot"]),
    ("dwell_s", &["hotspot"]),
];

fn finalize_group(g: &mut Table, field_min: f64) -> Result<GroupSpec, ParseError> {
    let name = match g.take("name") {
        Some(e) => want_str(&e)?,
        None => {
            return Err(ParseError::new(
                g.header_line,
                1,
                "[[group]] is missing required key `name`",
            ));
        }
    };
    let count = match g.take("count") {
        Some(e) => bounded_usize(&e, "count", 1, MAX_GROUP_COUNT)?,
        None => {
            return Err(ParseError::new(
                g.header_line,
                1,
                format!("[[group]] \"{name}\" is missing required key `count`"),
            ));
        }
    };
    let role = match g.take("role") {
        Some(e) => {
            let s = want_str(&e)?;
            match s.as_str() {
                "relay" => Role::Relay,
                "source" => Role::Source,
                "sink" => Role::Sink,
                "peer" => Role::Peer,
                "endpoint" => Role::Endpoint,
                other => {
                    return Err(ParseError::new(
                        e.line,
                        e.val_col,
                        format!("unknown role {other:?} (expected relay|source|sink|peer|endpoint)"),
                    ));
                }
            }
        }
        None => Role::Peer,
    };
    let battery_j = match g.take("battery_j") {
        Some(e) => match e.value {
            Value::Inf => None,
            _ => {
                let j = bounded_f64(&e, "battery_j", 0.0, 1e12, true)?;
                if role == Role::Endpoint {
                    return Err(ParseError::new(
                        e.line,
                        e.val_col,
                        "role \"endpoint\" requires battery_j = inf (Model-1 endpoints are unmetered)",
                    ));
                }
                Some(j)
            }
        },
        None if role == Role::Endpoint => None,
        None => Some(500.0),
    };
    let battery_var = match g.take("battery_var") {
        Some(e) => bounded_f64(&e, "battery_var", 0.0, 1.0, false)?,
        None => 0.0,
    };
    let range_m = match g.take("range_m") {
        Some(e) => bounded_f64(&e, "range_m", 0.0, 10_000.0, true)?,
        None => 250.0,
    };
    let gps_sigma_m = match g.take("gps_sigma_m") {
        Some(e) => bounded_f64(&e, "gps_sigma_m", 0.0, 1000.0, false)?,
        None => 0.0,
    };

    let model = match g.take("mobility") {
        Some(e) => {
            let s = want_str(&e)?;
            match s.as_str() {
                "stationary" | "waypoint" | "walk" | "gauss_markov" | "manhattan" | "convoy" | "hotspot" => s,
                other => {
                    return Err(ParseError::new(
                        e.line,
                        e.val_col,
                        format!(
                            "unknown mobility model {other:?} (expected stationary|waypoint|walk|\
                             gauss_markov|manhattan|convoy|hotspot)"
                        ),
                    ));
                }
            }
        }
        None => "waypoint".to_string(),
    };

    // reject params that belong to a *different* model before pulling the
    // relevant ones, so the diagnostic names the mismatch precisely
    for (key, applies) in MOBILITY_PARAMS {
        if applies.contains(&model.as_str()) {
            continue;
        }
        if let Some((_, e)) = g.entries.iter().find(|(k, _)| k == key) {
            return Err(ParseError::new(
                e.line,
                e.key_col,
                format!("key `{key}` does not apply to mobility = {model:?}"),
            ));
        }
    }

    // pulled ahead of the closure below so it doesn't contend for `g`
    let hotspots = match g.take("hotspots") {
        Some(e) => bounded_usize(&e, "hotspots", 1, 64)? as u32,
        None => 3,
    };
    let mut f64_param = |key: &str, default: f64, lo: f64, hi: f64, lo_excl: bool| match g.take(key) {
        Some(e) => bounded_f64(&e, key, lo, hi, lo_excl),
        None => Ok(default),
    };
    let mobility = match model.as_str() {
        "stationary" => MobilitySpec::Stationary,
        "waypoint" => MobilitySpec::Waypoint {
            max_speed: f64_param("max_speed", 1.0, 0.0, 1000.0, true)?,
            pause_s: f64_param("pause_s", 0.0, 0.0, 1e6, false)?,
        },
        "walk" => MobilitySpec::Walk {
            max_speed: f64_param("max_speed", 1.0, 0.0, 1000.0, true)?,
            epoch_s: f64_param("epoch_s", 10.0, 0.0, 1e6, true)?,
        },
        "gauss_markov" => MobilitySpec::GaussMarkov {
            mean_speed: f64_param("mean_speed", 1.0, 0.0, 1000.0, true)?,
            alpha: f64_param("alpha", 0.85, 0.0, 1.0, false)?,
            epoch_s: f64_param("epoch_s", 5.0, 0.0, 1e6, true)?,
        },
        "manhattan" => MobilitySpec::Manhattan {
            max_speed: f64_param("max_speed", 1.0, 0.0, 1000.0, true)?,
            pause_s: f64_param("pause_s", 0.0, 0.0, 1e6, false)?,
            block_m: f64_param("block_m", 100.0, 0.0, field_min.max(1.0), true)?,
        },
        "convoy" => MobilitySpec::Convoy {
            max_speed: f64_param("max_speed", 1.0, 0.0, 1000.0, true)?,
            pause_s: f64_param("pause_s", 0.0, 0.0, 1e6, false)?,
            group_radius_m: f64_param("group_radius_m", 50.0, 0.0, 10_000.0, true)?,
        },
        "hotspot" => MobilitySpec::Hotspot {
            max_speed: f64_param("max_speed", 1.0, 0.0, 1000.0, true)?,
            hotspots,
            dwell_s: f64_param("dwell_s", 60.0, 0.0, 1e6, true)?,
        },
        _ => unreachable!(),
    };

    g.reject_leftovers("[[group]]")?;
    Ok(GroupSpec {
        name,
        count,
        battery_j,
        battery_var,
        range_m,
        gps_sigma_m,
        role,
        mobility,
    })
}

fn finalize_traffic(t: &mut Table, duration_s: f64) -> Result<TrafficSpec, ParseError> {
    let pattern_name = match t.take("pattern") {
        Some(e) => {
            let s = want_str(&e)?;
            match s.as_str() {
                "cbr" | "bursty" | "many_to_one" => s,
                other => {
                    return Err(ParseError::new(
                        e.line,
                        e.val_col,
                        format!("unknown traffic pattern {other:?} (expected cbr|bursty|many_to_one)"),
                    ));
                }
            }
        }
        None => "cbr".to_string(),
    };
    let flows = match t.take("flows") {
        Some(e) => bounded_usize(&e, "flows", 0, 100_000)?,
        None => 0,
    };
    let rate_pps = match t.take("rate_pps") {
        Some(e) => bounded_f64(&e, "rate_pps", 0.0, 1e6, true)?,
        None => 1.0,
    };
    let packet_bytes = match t.take("packet_bytes") {
        Some(e) => bounded_usize(&e, "packet_bytes", 1, 65_536)? as u32,
        None => 512,
    };
    let start_s = match t.take("start_s") {
        Some(e) => bounded_f64(&e, "start_s", 0.0, duration_s.max(1.0), false)?,
        None => 5.0f64.min(duration_s),
    };
    let pattern = match pattern_name.as_str() {
        "cbr" => TrafficPattern::Cbr,
        "many_to_one" => TrafficPattern::ManyToOne,
        "bursty" => TrafficPattern::Bursty {
            on_s: match t.take("on_s") {
                Some(e) => bounded_f64(&e, "on_s", 0.0, 1e6, true)?,
                None => 4.0,
            },
            off_s: match t.take("off_s") {
                Some(e) => bounded_f64(&e, "off_s", 0.0, 1e6, false)?,
                None => 6.0,
            },
        },
        _ => unreachable!(),
    };
    if !matches!(pattern, TrafficPattern::Bursty { .. }) {
        for key in ["on_s", "off_s"] {
            if let Some((_, e)) = t.entries.iter().find(|(k, _)| k == key) {
                return Err(ParseError::new(
                    e.line,
                    e.key_col,
                    format!("key `{key}` only applies to pattern = \"bursty\""),
                ));
            }
        }
    }
    t.reject_leftovers("[traffic]")?;
    Ok(TrafficSpec {
        pattern,
        flows,
        rate_pps,
        packet_bytes,
        start_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!("[scenario]\nduration_s = 10\nseed = 1\n\n[[group]]\nname = \"g\"\ncount = 2\n{extra}")
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let spec = parse(&minimal("")).unwrap();
        assert_eq!(spec.name, "unnamed");
        assert_eq!(spec.field_w, 1000.0);
        assert_eq!(spec.cell_side, 100.0);
        assert_eq!(spec.groups[0].battery_j, Some(500.0));
        assert_eq!(spec.groups[0].range_m, 250.0);
        assert_eq!(spec.groups[0].role, Role::Peer);
        assert_eq!(spec.traffic.flows, 0);
    }

    #[test]
    fn unknown_key_reports_its_line_and_col() {
        let text =
            "[scenario]\nduration_s = 10\nseed = 1\n  bogus = 3\n\n[[group]]\nname = \"g\"\ncount = 2\n";
        let err = parse(text).unwrap_err();
        assert_eq!((err.line, err.col), (4, 3), "{err}");
        assert!(err.msg.contains("unknown key `bogus`"), "{err}");
    }

    #[test]
    fn unknown_section_reports_position() {
        let err = parse("[scenaro]\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 2), "{err}");
        assert!(err.msg.contains("unknown section"), "{err}");
    }

    #[test]
    fn missing_equals_is_a_syntax_error() {
        let err = parse("[scenario]\nduration_s 10\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("key = value"), "{err}");
    }

    #[test]
    fn count_bounds_are_enforced_at_the_value() {
        let text = "[scenario]\nduration_s = 10\nseed = 1\n[[group]]\nname = \"g\"\ncount = 0\n";
        let err = parse(text).unwrap_err();
        assert_eq!((err.line, err.col), (6, 9), "{err}");
        assert!(err.msg.contains("count must be in"), "{err}");
    }

    #[test]
    fn battery_capacity_bounds() {
        let err = parse(&minimal("battery_j = -5\n")).unwrap_err();
        assert!(err.msg.contains("battery_j"), "{err}");
        assert!(parse(&minimal("battery_j = inf\n")).unwrap().groups[0]
            .battery_j
            .is_none());
    }

    #[test]
    fn endpoint_role_forces_infinite_battery() {
        let err = parse(&minimal("role = \"endpoint\"\nbattery_j = 500\n")).unwrap_err();
        assert!(err.msg.contains("endpoint"), "{err}");
        let ok = parse(&minimal("role = \"endpoint\"\n")).unwrap();
        assert_eq!(ok.groups[0].battery_j, None);
    }

    #[test]
    fn mobility_param_for_wrong_model_is_rejected() {
        let err = parse(&minimal("mobility = \"waypoint\"\nblock_m = 80\n")).unwrap_err();
        assert!(err.msg.contains("does not apply"), "{err}");
        assert_eq!(err.line, 9, "{err}");
    }

    #[test]
    fn burst_keys_require_bursty_pattern() {
        let text = minimal("\n[traffic]\npattern = \"cbr\"\nflows = 1\non_s = 2\n");
        let err = parse(&text).unwrap_err();
        assert!(err.msg.contains("bursty"), "{err}");
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse(&minimal("count = 3\n")).unwrap_err();
        assert!(err.msg.contains("duplicate key `count`"), "{err}");
    }

    #[test]
    fn flows_require_an_eligible_pair() {
        let text = "[scenario]\nduration_s = 10\nseed = 1\n[[group]]\nname = \"r\"\ncount = 5\nrole = \"relay\"\n\n[traffic]\nflows = 2\n";
        let err = parse(text).unwrap_err();
        assert!(err.msg.contains("no (source, sink) pair"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# top\n[scenario] # side\nduration_s = 10\n\nseed = 1 # tail\n[[group]]\nname = \"g # not a comment\"\ncount = 1\n";
        let spec = parse(text).unwrap();
        assert_eq!(spec.groups[0].name, "g # not a comment");
    }

    #[test]
    fn total_host_ceiling_is_enforced() {
        let mut text = String::from("[scenario]\nduration_s = 10\nseed = 1\n");
        for i in 0..3 {
            text.push_str(&format!("[[group]]\nname = \"g{i}\"\ncount = 100000\n"));
        }
        let err = parse(&text).unwrap_err();
        assert!(err.msg.contains("ceiling"), "{err}");
    }
}
