//! AODV under link dynamics: local repair, route freshness, and loop
//! freedom observed end-to-end on the simulator.

use aodv::{Aodv, AodvConfig};
use manet::{FlowSet, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig};
use mobility::{MobilityTrace, Segment};
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(2_000_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

#[test]
fn broken_relay_is_repaired_through_an_alternate() {
    // two parallel relays between src and dst; kill the one the route
    // uses and verify traffic continues through the other
    let hosts = vec![
        still(20.0, 500.0),  // 0: src
        still(250.0, 480.0), // 1: relay A
        still(250.0, 520.0), // 2: relay B
        still(480.0, 500.0), // 3: dst
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(3),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(2),
        stop: SimTime::from_secs(60),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(11), hosts, flows, |id| {
        Aodv::new(AodvConfig::default(), id)
    });
    w.run_until(SimTime::from_secs(20));
    let early = w.ledger().delivery_rate().unwrap();
    assert!(early > 0.9, "pre-failure pdr {early}");
    // kill whichever relay currently carries the route
    let via = w
        .protocol(NodeId(0))
        .core
        .next_hop(NodeId(3), w.now())
        .expect("route must exist");
    assert!(
        via == NodeId(1) || via == NodeId(2),
        "route through a relay, got {via}"
    );
    w.kill_node(via);
    w.run_until(SimTime::from_secs(60));
    let pdr = w.ledger().delivery_rate().unwrap();
    assert!(
        pdr > 0.85,
        "post-failure pdr {pdr} (repair through the sibling relay)"
    );
    // the surviving relay carries the route now
    let other = if via == NodeId(1) { NodeId(2) } else { NodeId(1) };
    assert_eq!(
        w.protocol(NodeId(0)).core.next_hop(NodeId(3), w.now()),
        Some(other)
    );
}

#[test]
fn mobile_relay_breaks_and_heals_routes() {
    // the only relay wanders out of range and back; the flow must stall
    // while it is away and resume when it returns
    let away = Segment::rest(SimTime::ZERO, SimTime::from_secs(25), Point2::new(250.0, 500.0));
    let leave = Segment::travel(away.end, away.from, Point2::new(250.0, 950.0), 15.0); // gone by ~t=55
    let back = Segment::travel(
        leave.end,
        Point2::new(250.0, 950.0),
        Point2::new(250.0, 500.0),
        15.0,
    );
    let stay = Segment::rest(back.end, HORIZON, back.end_position());
    let hosts = vec![
        still(20.0, 500.0),
        HostSetup::paper(MobilityTrace::new(vec![away, leave, back, stay])),
        still(480.0, 500.0),
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(2),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(2),
        stop: SimTime::from_secs(150),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(13), hosts, flows, |id| {
        Aodv::new(AodvConfig::default(), id)
    });
    w.run_until(SimTime::from_secs(150));
    let ledger = w.ledger();
    // delivered during the two connected phases, lost during the gap
    let rate = ledger.delivery_rate().unwrap();
    assert!(
        (0.4..0.95).contains(&rate),
        "expected a partial outage, pdr {rate}"
    );
    assert!(
        ledger.delivered_count() > 60,
        "both connected phases must deliver"
    );
}

#[test]
fn ttl_prevents_infinite_forwarding_loops() {
    // even with aggressively short route ttls forcing constant rediscovery
    // there must be no unbounded forwarding (every Data carries a TTL)
    let cfg = AodvConfig {
        route_ttl: 2.0,
        ..AodvConfig::default()
    };
    let hosts = vec![still(20.0, 500.0), still(250.0, 500.0), still(480.0, 500.0)];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(2),
        packet_bytes: 512,
        interval: SimDuration::from_millis(500),
        start: SimTime::from_secs(1),
        stop: SimTime::from_secs(60),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(17), hosts, flows, move |id| {
        Aodv::new(cfg, id)
    });
    w.run_until(SimTime::from_secs(70));
    let forwarded: u64 = (0..3).map(|i| w.protocol(NodeId(i)).stats().data_forwarded).sum();
    let sent = w.ledger().sent_count();
    // a healthy 2-hop path forwards each packet at most twice; allow for
    // rediscovery retries but rule out loop amplification
    assert!(
        forwarded < sent * 4,
        "forwarded {forwarded} for {sent} packets — loop?"
    );
    assert!(w.ledger().delivery_rate().unwrap() > 0.9);
}
