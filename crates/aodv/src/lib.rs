//! # AODV — Ad hoc On-demand Distance Vector routing
//!
//! The host-by-host routing substrate of this workspace.  It matters to
//! the reproduction twice over:
//!
//! * GRID "is modified from AODV" (§3.3) — this crate documents the
//!   lineage: compare its host-by-host RREQ flood with the grid-by-grid
//!   flood in `grid-common`;
//! * GAF, the paper's second baseline, is a *power-saving overlay* that
//!   needs an underlying ad hoc routing protocol; the GAF paper evaluated
//!   over AODV, so `gaf` embeds [`AodvCore`].
//!
//! The implementation follows the AODV internet draft in its essentials:
//! sequence-numbered routes, broadcast-id duplicate suppression, reverse
//! path setup on RREQ, unicast RREP along the reverse path, RERR on
//! forwarding failure, and on-demand buffering.  Hello beacons are
//! replaced by link-layer failure feedback (`on_unicast_failed`), which
//! our MAC provides — the common choice in ns-2 studies of the era.
//!
//! [`AodvCore`] is a pure state machine emitting [`Action`]s, so it can be
//! driven either directly by the [`Aodv`] protocol adapter or embedded
//! inside another protocol (GAF).

pub mod core;
pub mod proto;

pub use crate::core::{Action, AodvConfig, AodvCore, AodvMsg, AodvStats, AodvTimer};
pub use crate::proto::Aodv;
