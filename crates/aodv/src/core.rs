//! The AODV state machine as a pure core emitting actions.

use manet::{AppPacket, NodeId, SimDuration, SimTime, WireSize};
use std::collections::{HashMap, HashSet, VecDeque};

const DATA_TTL: u8 = 32;

/// AODV parameters.
#[derive(Clone, Copy, Debug)]
pub struct AodvConfig {
    /// Route lifetime (seconds).
    pub route_ttl: f64,
    /// Per-attempt discovery timeout (seconds).
    pub discovery_timeout: f64,
    /// Discovery attempts before pending packets are dropped.
    pub max_discovery_attempts: u32,
    /// Max packets buffered per destination awaiting a route.
    pub buffer_cap: usize,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            route_ttl: 60.0,
            discovery_timeout: 0.25,
            max_discovery_attempts: 4,
            buffer_cap: 64,
        }
    }
}

/// AODV wire messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AodvMsg {
    Rreq {
        src: NodeId,
        s_seq: u32,
        bcast_id: u32,
        dst: NodeId,
        d_seq: u32,
        hops: u8,
    },
    Rrep {
        src: NodeId,
        dst: NodeId,
        d_seq: u32,
        hops: u8,
    },
    Rerr {
        dst: NodeId,
        d_seq: u32,
    },
    Data {
        packet: AppPacket,
        src: NodeId,
        dst: NodeId,
        ttl: u8,
    },
}

impl WireSize for AodvMsg {
    fn wire_bytes(&self) -> u32 {
        match self {
            AodvMsg::Rreq { .. } => 24,
            AodvMsg::Rrep { .. } => 20,
            AodvMsg::Rerr { .. } => 12,
            AodvMsg::Data { packet, .. } => packet.bytes + 21,
        }
    }
}

/// AODV timers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AodvTimer {
    DiscoveryTimeout { dst: NodeId, attempt: u32 },
}

/// What the core wants its host environment to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    Broadcast(AodvMsg),
    Unicast(NodeId, AodvMsg),
    Deliver(AppPacket),
    Timer(f64, AodvTimer),
}

/// Per-core counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AodvStats {
    pub rreqs_sent: u64,
    pub rreqs_forwarded: u64,
    pub rreps_sent: u64,
    pub data_forwarded: u64,
    pub data_delivered: u64,
    pub data_dropped: u64,
    pub rerrs_sent: u64,
}

#[derive(Clone, Copy, Debug)]
struct HostRoute {
    next_hop: NodeId,
    seq: u32,
    hops: u8,
    expires: SimTime,
}

/// The AODV state machine for one host.
pub struct AodvCore {
    me: NodeId,
    cfg: AodvConfig,
    /// Whether this host relays foreign traffic (Model-1 endpoints do not).
    pub forwards: bool,
    routes: HashMap<NodeId, HostRoute>,
    seen: HashSet<(NodeId, u32)>,
    seen_order: VecDeque<(NodeId, u32)>,
    my_seq: u32,
    bcast_id: u32,
    pending: HashMap<NodeId, VecDeque<(AppPacket, NodeId)>>,
    discovering: HashMap<NodeId, u32>,
    pub stats: AodvStats,
}

impl AodvCore {
    pub fn new(cfg: AodvConfig, me: NodeId) -> Self {
        AodvCore {
            me,
            cfg,
            forwards: true,
            routes: HashMap::new(),
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            my_seq: 0,
            bcast_id: 0,
            pending: HashMap::new(),
            discovering: HashMap::new(),
            stats: AodvStats::default(),
        }
    }

    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    pub fn has_route(&self, dst: NodeId, now: SimTime) -> bool {
        self.routes.get(&dst).map(|r| r.expires > now).unwrap_or(false)
    }

    pub fn next_hop(&self, dst: NodeId, now: SimTime) -> Option<NodeId> {
        self.routes
            .get(&dst)
            .filter(|r| r.expires > now)
            .map(|r| r.next_hop)
    }

    fn ttl_from(&self, now: SimTime) -> SimTime {
        now + SimDuration::from_secs_f64(self.cfg.route_ttl)
    }

    fn mark_seen(&mut self, src: NodeId, id: u32) -> bool {
        if !self.seen.insert((src, id)) {
            return false;
        }
        self.seen_order.push_back((src, id));
        if self.seen_order.len() > 4096 {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }

    /// Install/refresh a route if fresher or shorter-at-equal-freshness.
    fn upsert_route(&mut self, dst: NodeId, next_hop: NodeId, seq: u32, hops: u8, now: SimTime) {
        let cand = HostRoute {
            next_hop,
            seq,
            hops,
            expires: self.ttl_from(now),
        };
        match self.routes.get(&dst) {
            Some(old) if old.expires > now && (old.seq > seq || (old.seq == seq && old.hops < hops)) => {}
            _ => {
                self.routes.insert(dst, cand);
            }
        }
    }

    /// The application wants `packet` delivered to `dst`.
    pub fn send_data(&mut self, now: SimTime, dst: NodeId, packet: AppPacket) -> Vec<Action> {
        self.dispatch_data(
            now,
            AodvMsg::Data {
                packet,
                src: self.me,
                dst,
                ttl: DATA_TTL,
            },
        )
    }

    fn dispatch_data(&mut self, now: SimTime, msg: AodvMsg) -> Vec<Action> {
        let AodvMsg::Data {
            packet,
            src,
            dst,
            ttl,
        } = msg
        else {
            unreachable!()
        };
        let mut out = Vec::new();
        if dst == self.me {
            self.stats.data_delivered += 1;
            out.push(Action::Deliver(packet));
            return out;
        }
        if ttl == 0 {
            self.stats.data_dropped += 1;
            return out;
        }
        if let Some(r) = self.routes.get(&dst).filter(|r| r.expires > now) {
            self.stats.data_forwarded += 1;
            out.push(Action::Unicast(
                r.next_hop,
                AodvMsg::Data {
                    packet,
                    src,
                    dst,
                    ttl: ttl - 1,
                },
            ));
            return out;
        }
        // buffer + discover
        let q = self.pending.entry(dst).or_default();
        if q.len() >= self.cfg.buffer_cap {
            q.pop_front();
            self.stats.data_dropped += 1;
        }
        q.push_back((packet, src));
        out.extend(self.start_discovery(now, dst, 0));
        out
    }

    fn start_discovery(&mut self, now: SimTime, dst: NodeId, attempt: u32) -> Vec<Action> {
        if attempt == 0 && self.discovering.contains_key(&dst) {
            return Vec::new();
        }
        self.discovering.insert(dst, attempt);
        self.my_seq += 1;
        self.bcast_id += 1;
        self.mark_seen(self.me, self.bcast_id);
        let d_seq = self.routes.get(&dst).map(|r| r.seq).unwrap_or(0);
        self.stats.rreqs_sent += 1;
        let _ = now;
        vec![
            Action::Broadcast(AodvMsg::Rreq {
                src: self.me,
                s_seq: self.my_seq,
                bcast_id: self.bcast_id,
                dst,
                d_seq,
                hops: 0,
            }),
            Action::Timer(
                self.cfg.discovery_timeout,
                AodvTimer::DiscoveryTimeout { dst, attempt },
            ),
        ]
    }

    fn flush_pending(&mut self, now: SimTime, dst: NodeId) -> Vec<Action> {
        let Some(q) = self.pending.remove(&dst) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (packet, src) in q {
            out.extend(self.dispatch_data(
                now,
                AodvMsg::Data {
                    packet,
                    src,
                    dst,
                    ttl: DATA_TTL,
                },
            ));
        }
        out
    }

    /// Drop every buffered packet and abandon in-flight discoveries —
    /// called when the host powers its transceiver down (a sleeping node
    /// cannot deliver what it holds, and serving minute-old packets after
    /// waking would only distort latency).
    pub fn clear_pending(&mut self) -> u64 {
        let n: u64 = self.pending.values().map(|q| q.len() as u64).sum();
        self.pending.clear();
        self.discovering.clear();
        self.stats.data_dropped += n;
        n
    }

    /// A frame arrived from neighbour `from`.
    pub fn on_msg(&mut self, now: SimTime, from: NodeId, msg: &AodvMsg) -> Vec<Action> {
        match *msg {
            AodvMsg::Rreq {
                src,
                s_seq,
                bcast_id,
                dst,
                d_seq,
                hops,
            } => {
                if src == self.me || !self.mark_seen(src, bcast_id) {
                    return Vec::new();
                }
                // reverse route toward the source
                self.upsert_route(src, from, s_seq, hops + 1, now);
                if dst == self.me {
                    self.my_seq = self.my_seq.max(d_seq) + 1;
                    self.stats.rreps_sent += 1;
                    return vec![Action::Unicast(
                        from,
                        AodvMsg::Rrep {
                            src,
                            dst,
                            d_seq: self.my_seq,
                            hops: 0,
                        },
                    )];
                }
                // intermediate node with a fresh-enough route replies on the
                // destination's behalf (standard AODV) — but only if it is
                // willing to carry the resulting traffic (a non-forwarding
                // endpoint advertising a route would blackhole the flow)
                if self.forwards {
                    if let Some(r) = self
                        .routes
                        .get(&dst)
                        .filter(|r| r.expires > now && r.seq >= d_seq && r.seq > 0)
                    {
                        self.stats.rreps_sent += 1;
                        return vec![Action::Unicast(
                            from,
                            AodvMsg::Rrep {
                                src,
                                dst,
                                d_seq: r.seq,
                                hops: r.hops,
                            },
                        )];
                    }
                }
                if !self.forwards {
                    return Vec::new(); // Model-1 endpoints do not relay
                }
                self.stats.rreqs_forwarded += 1;
                vec![Action::Broadcast(AodvMsg::Rreq {
                    src,
                    s_seq,
                    bcast_id,
                    dst,
                    d_seq,
                    hops: hops.saturating_add(1),
                })]
            }
            AodvMsg::Rrep {
                src,
                dst,
                d_seq,
                hops,
            } => {
                // forward route toward the destination
                self.upsert_route(dst, from, d_seq, hops + 1, now);
                if src == self.me {
                    self.discovering.remove(&dst);
                    return self.flush_pending(now, dst);
                }
                // relay along the reverse path
                match self.routes.get(&src).filter(|r| r.expires > now) {
                    Some(r) => vec![Action::Unicast(
                        r.next_hop,
                        AodvMsg::Rrep {
                            src,
                            dst,
                            d_seq,
                            hops: hops.saturating_add(1),
                        },
                    )],
                    None => Vec::new(),
                }
            }
            AodvMsg::Rerr { dst, d_seq } => {
                // drop the broken route if not fresher than the error
                if let Some(r) = self.routes.get(&dst) {
                    if r.seq <= d_seq && r.next_hop == from {
                        self.routes.remove(&dst);
                    }
                }
                Vec::new()
            }
            AodvMsg::Data {
                packet,
                src,
                dst,
                ttl,
            } => {
                if dst == self.me {
                    self.stats.data_delivered += 1;
                    return vec![Action::Deliver(packet)];
                }
                if !self.forwards {
                    self.stats.data_dropped += 1;
                    return Vec::new();
                }
                self.dispatch_data(
                    now,
                    AodvMsg::Data {
                        packet,
                        src,
                        dst,
                        ttl,
                    },
                )
            }
        }
    }

    /// A protocol timer fired.
    pub fn on_timer(&mut self, now: SimTime, timer: AodvTimer) -> Vec<Action> {
        match timer {
            AodvTimer::DiscoveryTimeout { dst, attempt } => {
                if self.discovering.get(&dst) != Some(&attempt) {
                    return Vec::new();
                }
                if self.has_route(dst, now) {
                    self.discovering.remove(&dst);
                    return self.flush_pending(now, dst);
                }
                if attempt + 1 < self.cfg.max_discovery_attempts {
                    self.discovering.remove(&dst);
                    self.start_discovery(now, dst, attempt + 1)
                } else {
                    self.discovering.remove(&dst);
                    let pending = self.pending.remove(&dst).unwrap_or_default();
                    self.stats.data_dropped += pending.len() as u64;
                    // local repair failed: tell the sources whose packets we
                    // were holding so they stop using us and re-discover
                    let mut out = Vec::new();
                    for (_, src) in pending {
                        if src == self.me {
                            continue;
                        }
                        if let Some(r) = self.routes.get(&src).filter(|r| r.expires > now) {
                            self.stats.rerrs_sent += 1;
                            out.push(Action::Unicast(
                                r.next_hop,
                                AodvMsg::Rerr { dst, d_seq: u32::MAX },
                            ));
                        }
                    }
                    out
                }
            }
        }
    }

    /// The MAC gave up on a unicast to `neighbor` carrying `msg`.
    ///
    /// Data packets are *locally repaired* (AODV's local-repair option):
    /// the node buffers the packet and runs its own discovery for the
    /// destination rather than dropping traffic already in flight.  An
    /// RERR goes back to the source only if the repair fails (see
    /// [`on_timer`](Self::on_timer)).
    pub fn on_link_failure(&mut self, now: SimTime, neighbor: NodeId, msg: &AodvMsg) -> Vec<Action> {
        // every route through that neighbour is suspect
        let broken: Vec<NodeId> = self
            .routes
            .iter()
            .filter(|(_, r)| r.next_hop == neighbor)
            .map(|(d, _)| *d)
            .collect();
        for d in &broken {
            self.routes.remove(d);
        }
        let mut out = Vec::new();
        if let AodvMsg::Data {
            packet,
            src,
            dst,
            ttl,
        } = *msg
        {
            if ttl > 0 {
                // buffers + floods an RREQ since the route was just purged
                out.extend(self.dispatch_data(
                    now,
                    AodvMsg::Data {
                        packet,
                        src,
                        dst,
                        ttl: ttl - 1,
                    },
                ));
            } else {
                self.stats.data_dropped += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn pkt(seq: u64) -> AppPacket {
        AppPacket {
            flow: 0,
            seq,
            bytes: 512,
        }
    }

    #[test]
    fn send_without_route_floods_rreq_and_buffers() {
        let mut a = AodvCore::new(AodvConfig::default(), NodeId(0));
        let acts = a.send_data(t(0), NodeId(9), pkt(0));
        assert!(matches!(
            acts[0],
            Action::Broadcast(AodvMsg::Rreq { dst: NodeId(9), .. })
        ));
        assert!(matches!(
            acts[1],
            Action::Timer(_, AodvTimer::DiscoveryTimeout { .. })
        ));
        // second packet while discovering: buffered, no second flood
        let acts = a.send_data(t(0), NodeId(9), pkt(1));
        assert!(acts.is_empty());
    }

    #[test]
    fn rreq_reply_by_destination_and_reverse_route() {
        let mut d = AodvCore::new(AodvConfig::default(), NodeId(9));
        let rreq = AodvMsg::Rreq {
            src: NodeId(0),
            s_seq: 1,
            bcast_id: 1,
            dst: NodeId(9),
            d_seq: 0,
            hops: 2,
        };
        let acts = d.on_msg(t(1), NodeId(4), &rreq);
        assert_eq!(acts.len(), 1);
        assert!(matches!(
            acts[0],
            Action::Unicast(
                NodeId(4),
                AodvMsg::Rrep {
                    src: NodeId(0),
                    dst: NodeId(9),
                    ..
                }
            )
        ));
        // reverse route to 0 via 4 was installed
        assert_eq!(d.next_hop(NodeId(0), t(2)), Some(NodeId(4)));
    }

    #[test]
    fn duplicate_rreq_is_suppressed() {
        let mut n = AodvCore::new(AodvConfig::default(), NodeId(5));
        let rreq = AodvMsg::Rreq {
            src: NodeId(0),
            s_seq: 1,
            bcast_id: 7,
            dst: NodeId(9),
            d_seq: 0,
            hops: 0,
        };
        let first = n.on_msg(t(0), NodeId(1), &rreq);
        assert!(matches!(
            first[0],
            Action::Broadcast(AodvMsg::Rreq { hops: 1, .. })
        ));
        let second = n.on_msg(t(0), NodeId(2), &rreq);
        assert!(second.is_empty());
    }

    #[test]
    fn rrep_relays_along_reverse_path_and_flushes_at_source() {
        let mut s = AodvCore::new(AodvConfig::default(), NodeId(0));
        // source floods for 9
        s.send_data(t(0), NodeId(9), pkt(0));
        // reply comes back from neighbour 1
        let acts = s.on_msg(
            t(1),
            NodeId(1),
            &AodvMsg::Rrep {
                src: NodeId(0),
                dst: NodeId(9),
                d_seq: 3,
                hops: 2,
            },
        );
        // buffered data goes out via 1
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Unicast(NodeId(1), AodvMsg::Data { dst: NodeId(9), .. })
        )));
        assert_eq!(s.next_hop(NodeId(9), t(2)), Some(NodeId(1)));
    }

    #[test]
    fn intermediate_with_fresh_route_replies() {
        let mut m = AodvCore::new(AodvConfig::default(), NodeId(5));
        // m learned a route to 9 (seq 4) earlier
        m.on_msg(
            t(0),
            NodeId(6),
            &AodvMsg::Rrep {
                src: NodeId(5),
                dst: NodeId(9),
                d_seq: 4,
                hops: 1,
            },
        );
        let rreq = AodvMsg::Rreq {
            src: NodeId(0),
            s_seq: 1,
            bcast_id: 1,
            dst: NodeId(9),
            d_seq: 2,
            hops: 0,
        };
        let acts = m.on_msg(t(1), NodeId(1), &rreq);
        assert!(
            matches!(
                acts[0],
                Action::Unicast(
                    NodeId(1),
                    AodvMsg::Rrep {
                        dst: NodeId(9),
                        d_seq: 4,
                        ..
                    }
                )
            ),
            "{acts:?}"
        );
    }

    #[test]
    fn non_forwarding_endpoint_neither_relays_rreq_nor_data() {
        let mut e = AodvCore::new(AodvConfig::default(), NodeId(3));
        e.forwards = false;
        let rreq = AodvMsg::Rreq {
            src: NodeId(0),
            s_seq: 1,
            bcast_id: 1,
            dst: NodeId(9),
            d_seq: 0,
            hops: 0,
        };
        assert!(e.on_msg(t(0), NodeId(1), &rreq).is_empty());
        let data = AodvMsg::Data {
            packet: pkt(0),
            src: NodeId(0),
            dst: NodeId(9),
            ttl: 5,
        };
        assert!(e.on_msg(t(0), NodeId(1), &data).is_empty());
        assert_eq!(e.stats.data_dropped, 1);
        // ... but still replies when it *is* the destination
        let rreq_to_me = AodvMsg::Rreq {
            src: NodeId(0),
            s_seq: 1,
            bcast_id: 2,
            dst: NodeId(3),
            d_seq: 0,
            hops: 0,
        };
        let acts = e.on_msg(t(0), NodeId(1), &rreq_to_me);
        assert!(matches!(acts[0], Action::Unicast(_, AodvMsg::Rrep { .. })));
    }

    #[test]
    fn discovery_retries_then_drops() {
        let cfg = AodvConfig {
            max_discovery_attempts: 2,
            ..Default::default()
        };
        let mut a = AodvCore::new(cfg, NodeId(0));
        a.send_data(t(0), NodeId(9), pkt(0));
        // first timeout: retry
        let acts = a.on_timer(
            t(1),
            AodvTimer::DiscoveryTimeout {
                dst: NodeId(9),
                attempt: 0,
            },
        );
        assert!(matches!(acts[0], Action::Broadcast(AodvMsg::Rreq { .. })));
        // second timeout: give up, buffered packet dropped
        let acts = a.on_timer(
            t(2),
            AodvTimer::DiscoveryTimeout {
                dst: NodeId(9),
                attempt: 1,
            },
        );
        assert!(acts.is_empty());
        assert_eq!(a.stats.data_dropped, 1);
    }

    #[test]
    fn link_failure_purges_routes_and_rediscovers_own_traffic() {
        let mut s = AodvCore::new(AodvConfig::default(), NodeId(0));
        s.send_data(t(0), NodeId(9), pkt(0));
        s.on_msg(
            t(1),
            NodeId(1),
            &AodvMsg::Rrep {
                src: NodeId(0),
                dst: NodeId(9),
                d_seq: 3,
                hops: 2,
            },
        );
        assert!(s.has_route(NodeId(9), t(2)));
        let failed = AodvMsg::Data {
            packet: pkt(5),
            src: NodeId(0),
            dst: NodeId(9),
            ttl: 30,
        };
        let acts = s.on_link_failure(t(2), NodeId(1), &failed);
        assert!(!s.has_route(NodeId(9), t(2)));
        // own packet triggers a fresh discovery
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::Broadcast(AodvMsg::Rreq { dst: NodeId(9), .. }))));
    }

    #[test]
    fn rerr_removes_route_through_reporting_neighbor() {
        let mut n = AodvCore::new(AodvConfig::default(), NodeId(2));
        n.on_msg(
            t(0),
            NodeId(3),
            &AodvMsg::Rrep {
                src: NodeId(2),
                dst: NodeId(9),
                d_seq: 3,
                hops: 1,
            },
        );
        assert!(n.has_route(NodeId(9), t(1)));
        n.on_msg(
            t(1),
            NodeId(3),
            &AodvMsg::Rerr {
                dst: NodeId(9),
                d_seq: u32::MAX,
            },
        );
        assert!(!n.has_route(NodeId(9), t(1)));
    }

    #[test]
    fn stale_seq_does_not_downgrade_route() {
        let mut n = AodvCore::new(AodvConfig::default(), NodeId(2));
        n.upsert_route(NodeId(9), NodeId(3), 10, 2, t(0));
        n.upsert_route(NodeId(9), NodeId(4), 5, 1, t(1));
        assert_eq!(n.next_hop(NodeId(9), t(2)), Some(NodeId(3)));
        // equal seq, fewer hops wins
        n.upsert_route(NodeId(9), NodeId(5), 10, 1, t(1));
        assert_eq!(n.next_hop(NodeId(9), t(2)), Some(NodeId(5)));
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(
            AodvMsg::Rreq {
                src: NodeId(0),
                s_seq: 0,
                bcast_id: 0,
                dst: NodeId(1),
                d_seq: 0,
                hops: 0
            }
            .wire_bytes(),
            24
        );
        assert_eq!(
            AodvMsg::Data {
                packet: pkt(0),
                src: NodeId(0),
                dst: NodeId(1),
                ttl: 3
            }
            .wire_bytes(),
            533
        );
    }
}
