//! The `Protocol` adapter running a bare [`AodvCore`] on a host (every
//! host always on — AODV itself conserves nothing).

use crate::core::{Action, AodvConfig, AodvCore, AodvMsg, AodvStats, AodvTimer};
use manet::{AppPacket, Ctx, FrameKind, NodeId, Protocol};

/// Plain AODV host.
pub struct Aodv {
    pub core: AodvCore,
}

impl Aodv {
    pub fn new(cfg: AodvConfig, me: NodeId) -> Self {
        Aodv {
            core: AodvCore::new(cfg, me),
        }
    }

    /// A host that never relays foreign traffic (Model-1 endpoint).
    pub fn endpoint(cfg: AodvConfig, me: NodeId) -> Self {
        let mut core = AodvCore::new(cfg, me);
        core.forwards = false;
        Aodv { core }
    }

    pub fn stats(&self) -> &AodvStats {
        &self.core.stats
    }

    fn run(ctx: &mut Ctx<'_, Self>, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Broadcast(m) => ctx.broadcast(m),
                Action::Unicast(to, m) => ctx.unicast(to, m),
                Action::Deliver(p) => ctx.deliver_app(p),
                Action::Timer(secs, t) => {
                    ctx.set_timer_secs(secs, t);
                }
            }
        }
    }
}

impl Protocol for Aodv {
    type Msg = AodvMsg;
    type Timer = AodvTimer;

    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self>) {}

    fn on_frame(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, _kind: FrameKind, msg: &AodvMsg) {
        let acts = self.core.on_msg(ctx.now(), src, msg);
        Self::run(ctx, acts);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: AodvTimer) {
        let acts = self.core.on_timer(ctx.now(), timer);
        Self::run(ctx, acts);
    }

    fn on_app_send(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, packet: AppPacket) {
        let acts = self.core.send_data(ctx.now(), dst, packet);
        Self::run(ctx, acts);
    }

    fn on_unicast_failed(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, msg: &AodvMsg) {
        let acts = self.core.on_link_failure(ctx.now(), dst, msg);
        Self::run(ctx, acts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet::{FlowSet, HostSetup, Point2, SimDuration, SimTime, World, WorldConfig};
    use mobility::MobilityTrace;
    use traffic::{CbrFlow, FlowId};

    const HORIZON: SimTime = SimTime(2_000_000_000_000);

    fn chain_world(n: u32, spacing: f64) -> World<Aodv> {
        let hosts = (0..n)
            .map(|i| {
                HostSetup::paper(MobilityTrace::stationary(
                    Point2::new(20.0 + i as f64 * spacing, 500.0),
                    HORIZON,
                ))
            })
            .collect();
        let flows = FlowSet::new(vec![CbrFlow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(n - 1),
            packet_bytes: 512,
            interval: SimDuration::from_secs(1),
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(21),
            burst: None,
        }]);
        World::new(WorldConfig::paper_default(77), hosts, flows, |id| {
            Aodv::new(AodvConfig::default(), id)
        })
    }

    #[test]
    fn multi_hop_chain_delivery() {
        // 5 hosts, 240 m apart: strictly one hop at a time (4 hops)
        let mut w = chain_world(5, 240.0);
        w.run_until(SimTime::from_secs(30));
        let pdr = w.ledger().delivery_rate().unwrap();
        assert!(pdr >= 0.95, "pdr {pdr}");
        let lat = w.ledger().mean_latency_ms().unwrap();
        // 4 hops x ~2.4 ms plus the first-packet discovery
        assert!((8.0..40.0).contains(&lat), "latency {lat} ms");
        // the endpoints plus intermediates forwarded traffic
        assert!(w.protocol(NodeId(2)).stats().data_forwarded > 0);
    }

    #[test]
    fn partitioned_network_drops_packets() {
        // two hosts 600 m apart: no route can exist
        let hosts = vec![
            HostSetup::paper(MobilityTrace::stationary(Point2::new(100.0, 500.0), HORIZON)),
            HostSetup::paper(MobilityTrace::stationary(Point2::new(700.0, 500.0), HORIZON)),
        ];
        let flows = FlowSet::new(vec![CbrFlow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            packet_bytes: 512,
            interval: SimDuration::from_secs(1),
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(6),
            burst: None,
        }]);
        let mut w = World::new(WorldConfig::paper_default(3), hosts, flows, |id| {
            Aodv::new(AodvConfig::default(), id)
        });
        w.run_until(SimTime::from_secs(15));
        assert_eq!(w.ledger().delivered_count(), 0);
        assert!(
            w.protocol(NodeId(0)).stats().rreqs_sent >= 2,
            "must have retried discovery"
        );
    }
}
