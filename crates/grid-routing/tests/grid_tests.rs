//! End-to-end tests for the GRID baseline.

use grid_routing::{GridConfig, GridProto, GridRole};
use manet::{
    FlowSet, GridCoord, HostSetup, NodeId, Point2, RadioMode, SimDuration, SimTime, World, WorldConfig,
};
use mobility::MobilityTrace;
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(3_000_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

fn grid_world(hosts: Vec<HostSetup>, flows: FlowSet, seed: u64) -> World<GridProto> {
    World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        GridProto::new(GridConfig::default(), id)
    })
}

fn hosts_three_grids() -> Vec<HostSetup> {
    vec![
        still(50.0, 50.0),
        still(20.0, 30.0),
        still(250.0, 50.0),
        still(220.0, 20.0),
        still(450.0, 50.0),
        still(430.0, 20.0),
    ]
}

#[test]
fn grid_elects_center_closest_and_nobody_sleeps() {
    let mut w = grid_world(hosts_three_grids(), FlowSet::default(), 1);
    w.run_until(SimTime::from_secs(10));
    for gw in [0u32, 2, 4] {
        assert!(w.protocol(NodeId(gw)).is_gateway(), "node {gw}");
    }
    // GRID conserves nothing: every host stays idle-on
    for i in 0..6u32 {
        assert_eq!(w.node_mode(NodeId(i)), RadioMode::Idle, "node {i} must be active");
    }
}

#[test]
fn grid_delivers_multi_hop() {
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(1),
        dst: NodeId(5),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(35),
        burst: None,
    }]);
    let mut w = grid_world(hosts_three_grids(), flows, 2);
    w.run_until(SimTime::from_secs(40));
    assert_eq!(w.ledger().sent_count(), 30);
    assert!(
        w.ledger().delivery_rate().unwrap() >= 0.95,
        "pdr {:?}",
        w.ledger().delivery_rate()
    );
    let lat = w.ledger().mean_latency_ms().unwrap();
    assert!(lat < 40.0, "latency {lat} ms");
}

#[test]
fn grid_network_dies_at_idle_lifetime() {
    let mut w = grid_world(hosts_three_grids(), FlowSet::default(), 3);
    w.run_until(SimTime::from_secs(800));
    // everyone idles at ~0.863 W: all dead by ~590 s (the paper's number)
    let death = w.alive_series().first_time_at_or_below(0.0).unwrap();
    assert!((570.0..=600.0).contains(&death), "network death at {death}");
}

#[test]
fn grid_runs_are_deterministic() {
    let run = || {
        let mut w = grid_world(hosts_three_grids(), FlowSet::default(), 5);
        w.run_until(SimTime::from_secs(30));
        (
            *w.stats(),
            (0..6).map(|i| w.node_consumed_j(NodeId(i))).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run().0, run().0);
    assert_eq!(run().1, run().1);
}

#[test]
fn grid_single_host_becomes_gateway() {
    let mut w = grid_world(vec![still(950.0, 950.0)], FlowSet::default(), 6);
    w.run_until(SimTime::from_secs(5));
    assert!(w.protocol(NodeId(0)).is_gateway());
    assert_eq!(w.protocol(NodeId(0)).grid(), GridCoord::new(9, 9));
    assert_eq!(w.protocol(NodeId(0)).role(), GridRole::Gateway);
}
