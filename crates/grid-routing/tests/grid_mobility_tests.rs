//! GRID baseline under mobility: retire-on-move, search confinement, and
//! the contrast knobs that separate it from ECGRID.

use grid_routing::{GridConfig, GridProto};
use manet::{
    FlowSet, GridCoord, HostSetup, NodeId, Point2, RadioMode, SimDuration, SimTime, World, WorldConfig,
};
use mobility::{MobilityTrace, Segment};
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(2_000_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

fn world(hosts: Vec<HostSetup>, flows: FlowSet, seed: u64) -> World<GridProto> {
    World::new(WorldConfig::paper_default(seed), hosts, flows, |id| {
        GridProto::new(GridConfig::default(), id)
    })
}

#[test]
fn departing_gateway_hands_over_without_paging() {
    // node 0 wins grid (0,0), then drives away at t=20; node 1 must take
    // over — and since GRID never sleeps, no RAS page is ever sent
    let dwell = Segment::rest(SimTime::ZERO, SimTime::from_secs(20), Point2::new(50.0, 50.0));
    let drive = Segment::travel(dwell.end, dwell.from, Point2::new(450.0, 50.0), 10.0);
    let rest = Segment::rest(drive.end, HORIZON, drive.end_position());
    let hosts = vec![
        HostSetup::paper(MobilityTrace::new(vec![dwell, drive, rest])),
        still(30.0, 60.0),
    ];
    let mut w = world(hosts, FlowSet::default(), 1);
    w.run_until(SimTime::from_secs(80));
    assert!(w.protocol(NodeId(1)).is_gateway(), "stayer must inherit the grid");
    assert_eq!(w.node_cell(NodeId(1)), GridCoord::new(0, 0));
    assert!(w.protocol(NodeId(0)).stats.retires >= 1);
    assert_eq!(w.stats().pages_sent, 0, "GRID has no RAS");
    // and both hosts are still awake — GRID conserves nothing
    assert_eq!(w.node_mode(NodeId(0)), RadioMode::Idle);
    assert_eq!(w.node_mode(NodeId(1)), RadioMode::Idle);
}

#[test]
fn second_flow_packet_uses_learned_location() {
    // the first discovery is global (no location info); the RREP teaches
    // the source D's grid, so a *route-break-free* second discovery (after
    // the route expires) confines itself.  We approximate by checking the
    // route stays up and traffic flows with exactly one global flood.
    let hosts = vec![
        still(150.0, 150.0), // S gateway (1,1)
        still(250.0, 150.0), // relay (2,1)
        still(450.0, 150.0), // relay (4,1)
        still(650.0, 150.0), // D (6,1)
        still(150.0, 550.0), // far-off gateway (1,5): must not relay twice
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(3),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(30),
        burst: None,
    }]);
    let mut w = world(hosts, flows, 2);
    w.run_until(SimTime::from_secs(35));
    assert!(w.ledger().delivery_rate().unwrap() > 0.9);
    // the off-route gateway participated at most in the single global
    // round (the first discovery); subsequent discoveries are confined
    assert!(
        w.protocol(NodeId(4)).stats.rreqs_forwarded <= 1,
        "off-route gateway forwarded {} RREQs",
        w.protocol(NodeId(4)).stats.rreqs_forwarded
    );
}

#[test]
fn grid_gateway_election_ignores_battery() {
    // drain host 0 to lower level, but keep it closest to the center:
    // GRID (energy-blind) still elects it — the exact behaviour ECGRID's
    // rule 1 overrides
    let mut hosts = vec![still(52.0, 50.0), still(20.0, 30.0)];
    hosts[0].battery = manet::Battery::with_capacity(500.0);
    let mut w = world(hosts, FlowSet::default(), 3);
    // run long enough that host 0 falls to boundary/lower
    w.run_until(SimTime::from_secs(350));
    assert!(
        w.node_rbrc(NodeId(0)) < 0.6,
        "host 0 should have drained: {}",
        w.node_rbrc(NodeId(0))
    );
    assert!(
        w.protocol(NodeId(0)).is_gateway(),
        "GRID keeps the center-closest host as gateway regardless of battery"
    );
    // no load-balance rotation ever happened
    assert_eq!(w.protocol(NodeId(1)).stats.became_gateway, 0);
}

#[test]
fn whole_network_dies_together_regardless_of_roles() {
    let hosts = vec![still(50.0, 50.0), still(20.0, 30.0), still(80.0, 70.0)];
    let mut w = world(hosts, FlowSet::default(), 4);
    w.run_until(SimTime::from_secs(700));
    // gateway and members all idle at the same draw: deaths cluster tightly
    let death = w.alive_series().first_time_at_or_below(0.0).unwrap();
    let first_drop = w.alive_series().first_time_at_or_below(0.99).unwrap();
    assert!(death - first_drop <= 30.0, "deaths spread {first_drop}..{death}");
}
