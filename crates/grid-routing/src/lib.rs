//! # GRID — the location-aware baseline protocol
//!
//! The protocol ECGRID extends (Liao, Tseng & Sheu, *Telecommunication
//! Systems* 2001), as used for the paper's comparison: the field is
//! partitioned into logical grids, one gateway per grid forwards route
//! discovery and data grid-by-grid, and the gateway should be the host
//! nearest the physical center of the grid.
//!
//! Crucially for the evaluation, **GRID is not energy-aware**: every host
//! keeps its transceiver on at all times (burning the 830 mW idle power
//! continuously), the election ignores battery state, and there is no
//! load-balance rotation.  This is why the GRID network in Fig. 4 dies
//! wholesale at ≈590 s.
//!
//! The grid partition, HELLO beaconing, discovery (RREQ/RREP with search
//! rectangles) and grid-by-grid data forwarding are shared with ECGRID via
//! `grid-common`; what differs is exactly what the paper varies.

pub mod proto;

pub use proto::{GridConfig, GridProto, GridRole, GridStats};
