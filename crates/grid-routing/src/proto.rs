//! The GRID state machine: gateway election by distance, always-on hosts,
//! grid-by-grid discovery and forwarding.

use grid_common::{
    elect_gateway, HelloInfo, NeighborGateways, RouteSnapshot, RouteTable, Rrep, Rreq, RreqSeen,
    SearchStrategy,
};
use manet::{
    AppPacket, Ctx, EventKind, FrameKind, GridCoord, GridRect, NodeId, Protocol, SimDuration, SimTime,
    WireSize,
};
use rand::Rng;
use std::collections::{HashMap, VecDeque};

const DATA_TTL: u8 = 32;

/// GRID protocol parameters (a strict subset of ECGRID's; no sleep knobs).
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    pub hello_interval: f64,
    pub hello_jitter: f64,
    pub election_window: f64,
    pub gateway_silence: f64,
    pub discovery_timeout: f64,
    pub max_discovery_attempts: u32,
    pub route_ttl: f64,
    pub neighbor_ttl: f64,
    /// Search-area construction for the first discovery round.
    pub search: SearchStrategy,
    pub buffer_cap: usize,
    pub gw_response_min_gap: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            hello_interval: 1.0,
            hello_jitter: 0.1,
            election_window: 1.0,
            gateway_silence: 3.0,
            discovery_timeout: 0.5,
            max_discovery_attempts: 3,
            route_ttl: 60.0,
            neighbor_ttl: 3.5,
            search: SearchStrategy::CoveringRect,
            buffer_cap: 64,
            gw_response_min_gap: 0.2,
        }
    }
}

/// Messages on the air (no ACQ — nobody sleeps).
#[derive(Clone, Debug, PartialEq)]
pub enum GridMsg {
    Hello(HelloInfo),
    Retire {
        grid: GridCoord,
        routes: RouteSnapshot,
    },
    TableXfer {
        routes: RouteSnapshot,
        hosts: Vec<NodeId>,
    },
    Leave {
        grid: GridCoord,
    },
    Rreq(Rreq),
    Rrep(Rrep),
    Data {
        packet: AppPacket,
        src: NodeId,
        dst: NodeId,
        via_grid: GridCoord,
        ttl: u8,
    },
}

impl WireSize for GridMsg {
    fn wire_bytes(&self) -> u32 {
        match self {
            GridMsg::Hello(h) => h.wire_bytes(),
            GridMsg::Retire { routes, .. } => 12 + 20 * routes.len() as u32,
            GridMsg::TableXfer { routes, hosts } => 8 + 20 * routes.len() as u32 + 4 * hosts.len() as u32,
            GridMsg::Leave { .. } => 12,
            GridMsg::Rreq(r) => r.wire_bytes(),
            GridMsg::Rrep(r) => r.wire_bytes(),
            GridMsg::Data { packet, .. } => packet.bytes + 29,
        }
    }
}

/// GRID timers.
#[derive(Clone, Debug, PartialEq)]
pub enum GridTimer {
    Hello,
    ElectionDecide { epoch: u32 },
    GatewayWatch { epoch: u32 },
    DiscoveryTimeout { dst: NodeId, attempt: u32 },
}

/// Host role; there is no sleeping state in GRID.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridRole {
    Electing,
    Member,
    Gateway,
}

/// Per-host counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GridStats {
    pub elections_started: u64,
    pub became_gateway: u64,
    pub retires: u64,
    pub rreqs_sent: u64,
    pub rreqs_forwarded: u64,
    pub rreps_sent: u64,
    pub data_forwarded: u64,
    pub data_delivered: u64,
    pub data_dropped: u64,
}

/// One GRID instance.
pub struct GridProto {
    cfg: GridConfig,
    me: NodeId,
    role: GridRole,
    my_grid: GridCoord,
    gateway: Option<NodeId>,
    routes: RouteTable,
    seen: RreqSeen,
    neighbors: NeighborGateways,
    host_table: HashMap<NodeId, SimTime>,
    candidates: Vec<HelloInfo>,
    election_epoch: u32,
    watch_epoch: u32,
    my_seq: u32,
    rreq_counter: u32,
    pending_route: HashMap<NodeId, VecDeque<GridMsg>>,
    discovering: HashMap<NodeId, u32>,
    pending_own: Vec<(NodeId, AppPacket)>,
    dst_hints: HashMap<NodeId, GridCoord>,
    last_gw_hello: SimTime,
    last_own_hello: SimTime,
    /// The cell the trace recorder believes this host is gateway of
    /// (keeps GatewayElect/GatewayRetire strictly alternating per host).
    gw_traced: Option<GridCoord>,
    pub stats: GridStats,
}

impl GridProto {
    pub fn new(cfg: GridConfig, me: NodeId) -> Self {
        GridProto {
            cfg,
            me,
            role: GridRole::Electing,
            my_grid: GridCoord::new(0, 0),
            gateway: None,
            routes: RouteTable::new(SimDuration::from_secs_f64(cfg.route_ttl)),
            seen: RreqSeen::default(),
            neighbors: NeighborGateways::new(SimDuration::from_secs_f64(cfg.neighbor_ttl)),
            host_table: HashMap::new(),
            candidates: Vec::new(),
            election_epoch: 0,
            watch_epoch: 0,
            my_seq: 0,
            rreq_counter: 0,
            pending_route: HashMap::new(),
            discovering: HashMap::new(),
            pending_own: Vec::new(),
            dst_hints: HashMap::new(),
            last_gw_hello: SimTime::ZERO,
            last_own_hello: SimTime::ZERO,
            gw_traced: None,
            stats: GridStats::default(),
        }
    }

    pub fn role(&self) -> GridRole {
        self.role
    }

    pub fn is_gateway(&self) -> bool {
        self.role == GridRole::Gateway
    }

    pub fn gateway(&self) -> Option<NodeId> {
        self.gateway
    }

    pub fn grid(&self) -> GridCoord {
        self.my_grid
    }

    /// Location-service hook (see `Ecgrid::seed_location`).
    pub fn seed_location(&mut self, dst: NodeId, grid: GridCoord) {
        self.dst_hints.insert(dst, grid);
    }

    // ----- helpers -----------------------------------------------------

    /// Reconcile the trace's view of this host's gateway tenure with
    /// `role` (see the equivalent helper in `ecgrid`).
    fn sync_gateway_trace(&mut self, ctx: &mut Ctx<'_, Self>) {
        let me = self.me;
        let now_gw = self.role == GridRole::Gateway;
        match (self.gw_traced, now_gw) {
            (None, true) => {
                let cell = self.my_grid;
                self.gw_traced = Some(cell);
                ctx.emit(|| EventKind::GatewayElect { node: me, cell });
            }
            (Some(old), false) => {
                self.gw_traced = None;
                ctx.emit(|| EventKind::GatewayRetire { node: me, cell: old });
            }
            (Some(old), true) if old != self.my_grid => {
                let cell = self.my_grid;
                self.gw_traced = Some(cell);
                ctx.emit(|| EventKind::GatewayRetire { node: me, cell: old });
                ctx.emit(|| EventKind::GatewayElect { node: me, cell });
            }
            _ => {}
        }
    }

    fn my_hello(&self, ctx: &mut Ctx<'_, Self>, gflag: bool) -> HelloInfo {
        // level is carried but ignored by GRID's election (energy_aware=false)
        HelloInfo {
            id: self.me,
            grid: self.my_grid,
            gflag,
            level: ctx.level(),
            dist: ctx.dist_to_center(),
        }
    }

    fn send_hello(&mut self, ctx: &mut Ctx<'_, Self>, gflag: bool) {
        let h = self.my_hello(ctx, gflag);
        self.last_own_hello = ctx.now();
        ctx.broadcast(GridMsg::Hello(h));
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.stats.elections_started += 1;
        self.role = GridRole::Electing;
        self.gateway = None;
        self.candidates.clear();
        self.election_epoch += 1;
        self.send_hello(ctx, false);
        ctx.set_timer_secs(
            self.cfg.election_window,
            GridTimer::ElectionDecide {
                epoch: self.election_epoch,
            },
        );
        self.sync_gateway_trace(ctx);
    }

    fn arm_gateway_watch(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.watch_epoch += 1;
        ctx.set_timer_secs(
            self.cfg.gateway_silence,
            GridTimer::GatewayWatch {
                epoch: self.watch_epoch,
            },
        );
    }

    fn become_member(&mut self, ctx: &mut Ctx<'_, Self>, gateway: NodeId) {
        self.role = GridRole::Member;
        self.sync_gateway_trace(ctx);
        self.gateway = Some(gateway);
        self.last_gw_hello = ctx.now();
        self.host_table.clear();
        self.arm_gateway_watch(ctx);
        self.flush_pending_own(ctx);
    }

    fn become_gateway(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.stats.became_gateway += 1;
        self.role = GridRole::Gateway;
        self.sync_gateway_trace(ctx);
        self.gateway = Some(self.me);
        self.send_hello(ctx, true);
        let now = ctx.now();
        for c in &self.candidates {
            if c.id != self.me && c.grid == self.my_grid {
                self.host_table.insert(c.id, now);
            }
        }
        self.candidates.clear();
        let own: Vec<(NodeId, AppPacket)> = self.pending_own.drain(..).collect();
        for (dst, packet) in own {
            let msg = GridMsg::Data {
                packet,
                src: self.me,
                dst,
                via_grid: self.my_grid,
                ttl: DATA_TTL,
            };
            self.route_data(ctx, msg);
        }
    }

    fn flush_pending_own(&mut self, ctx: &mut Ctx<'_, Self>) {
        let Some(gw) = self.gateway else { return };
        let own: Vec<(NodeId, AppPacket)> = self.pending_own.drain(..).collect();
        for (dst, packet) in own {
            ctx.unicast(
                gw,
                GridMsg::Data {
                    packet,
                    src: self.me,
                    dst,
                    via_grid: self.my_grid,
                    ttl: DATA_TTL,
                },
            );
        }
    }

    fn enter_grid(&mut self, ctx: &mut Ctx<'_, Self>, new: GridCoord) {
        self.my_grid = new;
        self.host_table.clear();
        self.gateway = None;
        self.role = GridRole::Electing;
        self.sync_gateway_trace(ctx);
        self.candidates.clear();
        self.election_epoch += 1;
        self.send_hello(ctx, false);
        ctx.set_timer_secs(
            self.cfg.election_window,
            GridTimer::ElectionDecide {
                epoch: self.election_epoch,
            },
        );
    }

    // ----- data plane ---------------------------------------------------

    fn route_data(&mut self, ctx: &mut Ctx<'_, Self>, msg: GridMsg) {
        let GridMsg::Data {
            packet,
            src,
            dst,
            ttl,
            ..
        } = msg
        else {
            unreachable!("route_data only handles Data");
        };
        if dst == self.me {
            self.stats.data_delivered += 1;
            ctx.deliver_app(packet);
            return;
        }
        if ttl == 0 {
            self.stats.data_dropped += 1;
            return;
        }
        let now = ctx.now();
        if self.host_table.contains_key(&dst) {
            // everyone is always on in GRID: deliver directly
            self.stats.data_forwarded += 1;
            let me = self.me;
            ctx.emit(|| EventKind::PacketForwarded {
                node: me,
                flow: packet.flow,
                seq: packet.seq,
            });
            ctx.unicast(
                dst,
                GridMsg::Data {
                    packet,
                    src,
                    dst,
                    via_grid: self.my_grid,
                    ttl: ttl - 1,
                },
            );
            return;
        }
        if let Some(route) = self.routes.lookup(dst, now) {
            let next = self.neighbors.get(route.next_grid, now).unwrap_or(route.via_node);
            self.stats.data_forwarded += 1;
            let me = self.me;
            ctx.emit(|| EventKind::PacketForwarded {
                node: me,
                flow: packet.flow,
                seq: packet.seq,
            });
            ctx.unicast(
                next,
                GridMsg::Data {
                    packet,
                    src,
                    dst,
                    via_grid: route.next_grid,
                    ttl: ttl - 1,
                },
            );
            return;
        }
        let q = self.pending_route.entry(dst).or_default();
        if q.len() >= self.cfg.buffer_cap {
            q.pop_front();
            self.stats.data_dropped += 1;
        }
        q.push_back(GridMsg::Data {
            packet,
            src,
            dst,
            via_grid: self.my_grid,
            ttl,
        });
        self.start_discovery(ctx, dst, 0);
    }

    fn start_discovery(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, attempt: u32) {
        if attempt == 0 && self.discovering.contains_key(&dst) {
            return;
        }
        self.discovering.insert(dst, attempt);
        self.my_seq += 1;
        self.rreq_counter += 1;
        let range = if attempt == 0 {
            self.cfg
                .search
                .range_for(self.my_grid, self.dst_hints.get(&dst).copied())
        } else {
            GridRect::everywhere()
        };
        let rreq = Rreq {
            src: self.me,
            s_seq: self.my_seq,
            dst,
            d_seq: 0,
            id: self.rreq_counter,
            range,
            last_grid: self.my_grid,
        };
        self.seen.insert(self.me, self.rreq_counter);
        self.stats.rreqs_sent += 1;
        ctx.broadcast(GridMsg::Rreq(rreq));
        ctx.set_timer_secs(
            self.cfg.discovery_timeout,
            GridTimer::DiscoveryTimeout { dst, attempt },
        );
    }

    fn flush_route_buffer(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId) {
        let Some(q) = self.pending_route.remove(&dst) else {
            return;
        };
        for msg in q {
            self.route_data(ctx, msg);
        }
    }

    // ----- frame handlers ------------------------------------------------

    fn on_hello(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, h: HelloInfo) {
        let now = ctx.now();
        if h.gflag {
            self.neighbors.note(h.grid, h.id, now);
        } else if self.neighbors.get(h.grid, now) == Some(h.id) {
            self.neighbors.forget_grid(h.grid);
        }
        if h.grid != self.my_grid {
            if self.role == GridRole::Gateway {
                self.host_table.remove(&src);
            }
            return;
        }
        match self.role {
            GridRole::Electing => {
                if h.gflag {
                    self.election_epoch += 1;
                    self.become_member(ctx, h.id);
                } else {
                    self.candidates.retain(|c| c.id != h.id);
                    self.candidates.push(h);
                }
            }
            GridRole::Member => {
                if h.gflag {
                    self.gateway = Some(h.id);
                    self.last_gw_hello = now;
                    self.arm_gateway_watch(ctx);
                    if !self.pending_own.is_empty() {
                        self.flush_pending_own(ctx);
                    }
                }
            }
            GridRole::Gateway => {
                if h.gflag && src != self.me {
                    // stable conflict resolution: smallest id (distance
                    // drifts with motion and can deadlock the duel)
                    if h.id < self.me {
                        ctx.unicast(
                            h.id,
                            GridMsg::TableXfer {
                                routes: self.routes.snapshot(),
                                hosts: self.host_table.keys().copied().collect(),
                            },
                        );
                        self.host_table.clear();
                        self.become_member(ctx, h.id);
                    } else if now.since(self.last_own_hello).as_secs_f64() > self.cfg.gw_response_min_gap {
                        self.send_hello(ctx, true);
                    }
                } else if !h.gflag {
                    self.host_table.insert(src, now);
                    if now.since(self.last_own_hello).as_secs_f64() > self.cfg.gw_response_min_gap {
                        self.send_hello(ctx, true);
                    }
                }
            }
        }
    }

    fn on_rreq(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, r: Rreq) {
        let now = ctx.now();
        if r.dst == self.me {
            self.my_seq += 1;
            self.routes.upsert(r.src, r.last_grid, src, r.s_seq, now);
            let rep = Rrep {
                src: r.src,
                dst: self.me,
                d_seq: self.my_seq,
                from_grid: self.my_grid,
                dst_grid: self.my_grid,
            };
            self.stats.rreps_sent += 1;
            ctx.unicast(src, GridMsg::Rrep(rep));
            return;
        }
        if self.role != GridRole::Gateway {
            return;
        }
        if !r.range.contains(self.my_grid) {
            return;
        }
        if !self.seen.insert(r.src, r.id) {
            return;
        }
        self.routes.upsert(r.src, r.last_grid, src, r.s_seq, now);
        if self.host_table.contains_key(&r.dst) {
            self.my_seq += 1;
            let rep = Rrep {
                src: r.src,
                dst: r.dst,
                d_seq: self.my_seq,
                from_grid: self.my_grid,
                dst_grid: self.my_grid,
            };
            self.stats.rreps_sent += 1;
            ctx.unicast(src, GridMsg::Rrep(rep));
            return;
        }
        let mut fwd = r;
        fwd.last_grid = self.my_grid;
        self.stats.rreqs_forwarded += 1;
        ctx.broadcast(GridMsg::Rreq(fwd));
    }

    fn on_rrep(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, r: Rrep) {
        let now = ctx.now();
        self.routes.upsert(r.dst, r.from_grid, src, r.d_seq, now);
        self.dst_hints.insert(r.dst, r.dst_grid);
        if r.src == self.me {
            self.discovering.remove(&r.dst);
            self.flush_route_buffer(ctx, r.dst);
            return;
        }
        if let Some(back) = self.routes.lookup(r.src, now) {
            let next = self.neighbors.get(back.next_grid, now).unwrap_or(back.via_node);
            ctx.unicast(
                next,
                GridMsg::Rrep(Rrep {
                    from_grid: self.my_grid,
                    ..r
                }),
            );
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_, Self>, msg: GridMsg) {
        let GridMsg::Data { packet, dst, .. } = msg else {
            unreachable!()
        };
        if dst == self.me {
            self.stats.data_delivered += 1;
            ctx.deliver_app(packet);
            return;
        }
        match self.role {
            GridRole::Gateway => self.route_data(ctx, msg),
            GridRole::Member | GridRole::Electing => {
                if let (
                    Some(gw),
                    GridMsg::Data {
                        packet,
                        src,
                        dst,
                        ttl,
                        ..
                    },
                ) = (self.gateway, msg)
                {
                    if ttl > 0 && gw != self.me {
                        ctx.unicast(
                            gw,
                            GridMsg::Data {
                                packet,
                                src,
                                dst,
                                via_grid: self.my_grid,
                                ttl: ttl - 1,
                            },
                        );
                        return;
                    }
                }
                self.stats.data_dropped += 1;
            }
        }
    }
}

impl Protocol for GridProto {
    type Msg = GridMsg;
    type Timer = GridTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.my_grid = ctx.cell();
        let stagger = ctx.rng().gen_range(0.0..0.3);
        self.election_epoch += 1;
        self.role = GridRole::Electing;
        ctx.set_timer_secs(stagger, GridTimer::Hello);
        ctx.set_timer_secs(
            self.cfg.election_window + stagger,
            GridTimer::ElectionDecide {
                epoch: self.election_epoch,
            },
        );
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, _kind: FrameKind, msg: &GridMsg) {
        match msg {
            GridMsg::Hello(h) => self.on_hello(ctx, src, *h),
            GridMsg::Retire { grid, routes } => {
                self.neighbors.forget_grid(*grid);
                if *grid == self.my_grid && self.role != GridRole::Gateway {
                    self.routes.install(routes, ctx.now());
                    self.start_election(ctx);
                }
            }
            GridMsg::TableXfer { routes, hosts } => {
                let now = ctx.now();
                self.routes.install(routes, now);
                if self.role == GridRole::Gateway {
                    for h in hosts {
                        if *h != self.me {
                            self.host_table.entry(*h).or_insert(now);
                        }
                    }
                }
            }
            GridMsg::Leave { .. } => {
                if self.role == GridRole::Gateway {
                    self.host_table.remove(&src);
                }
            }
            GridMsg::Rreq(r) => self.on_rreq(ctx, src, *r),
            GridMsg::Rrep(r) => self.on_rrep(ctx, src, *r),
            GridMsg::Data { .. } => self.on_data(ctx, msg.clone()),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: GridTimer) {
        match timer {
            GridTimer::Hello => {
                let now = ctx.now();
                self.routes.purge(now);
                self.neighbors.purge(now);
                self.send_hello(ctx, self.role == GridRole::Gateway);
                let jitter = 1.0 + self.cfg.hello_jitter * (ctx.rng().gen::<f64>() * 2.0 - 1.0);
                ctx.set_timer_secs(self.cfg.hello_interval * jitter, GridTimer::Hello);
            }
            GridTimer::ElectionDecide { epoch } => {
                if epoch != self.election_epoch || self.role != GridRole::Electing {
                    return;
                }
                let mine = self.my_hello(ctx, false);
                self.candidates.retain(|c| c.id != self.me);
                self.candidates.push(mine);
                // GRID's election: nearest to the grid center, ignore energy
                let winner = elect_gateway(self.candidates.iter(), false).expect("self is a candidate");
                if winner == self.me {
                    self.become_gateway(ctx);
                } else {
                    self.candidates.clear();
                    self.become_member(ctx, winner);
                }
            }
            GridTimer::GatewayWatch { epoch } => {
                if epoch != self.watch_epoch || self.role != GridRole::Member {
                    return;
                }
                let silent = ctx.now().since(self.last_gw_hello).as_secs_f64();
                if silent >= self.cfg.gateway_silence {
                    self.start_election(ctx);
                } else {
                    self.watch_epoch += 1;
                    ctx.set_timer_secs(
                        self.cfg.gateway_silence - silent,
                        GridTimer::GatewayWatch {
                            epoch: self.watch_epoch,
                        },
                    );
                }
            }
            GridTimer::DiscoveryTimeout { dst, attempt } => {
                if self.discovering.get(&dst) != Some(&attempt) {
                    return;
                }
                if attempt + 1 < self.cfg.max_discovery_attempts {
                    self.start_discovery(ctx, dst, attempt + 1);
                } else {
                    self.discovering.remove(&dst);
                    let dropped = self.pending_route.remove(&dst).map(|q| q.len()).unwrap_or(0);
                    self.stats.data_dropped += dropped as u64;
                }
            }
        }
    }

    fn on_cell_change(&mut self, ctx: &mut Ctx<'_, Self>, old: GridCoord, new: GridCoord) {
        match self.role {
            GridRole::Gateway => {
                // hand the old grid its routing table; everyone is awake, so
                // no paging is needed — GRID retires immediately
                self.stats.retires += 1;
                ctx.broadcast(GridMsg::Retire {
                    grid: old,
                    routes: self.routes.snapshot(),
                });
                self.neighbors.forget_node(self.me);
                self.enter_grid(ctx, new);
            }
            GridRole::Member | GridRole::Electing => {
                if let Some(gw) = self.gateway {
                    if gw != self.me {
                        ctx.unicast(gw, GridMsg::Leave { grid: old });
                    }
                }
                self.enter_grid(ctx, new);
            }
        }
    }

    fn on_app_send(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, packet: AppPacket) {
        match self.role {
            GridRole::Gateway => {
                let msg = GridMsg::Data {
                    packet,
                    src: self.me,
                    dst,
                    via_grid: self.my_grid,
                    ttl: DATA_TTL,
                };
                self.route_data(ctx, msg);
            }
            GridRole::Member => {
                if let Some(gw) = self.gateway {
                    ctx.unicast(
                        gw,
                        GridMsg::Data {
                            packet,
                            src: self.me,
                            dst,
                            via_grid: self.my_grid,
                            ttl: DATA_TTL,
                        },
                    );
                } else {
                    self.pending_own.push((dst, packet));
                }
            }
            GridRole::Electing => self.pending_own.push((dst, packet)),
        }
    }

    fn on_unicast_failed(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, msg: &GridMsg) {
        match msg {
            GridMsg::Data {
                packet,
                src,
                dst: final_dst,
                ttl,
                ..
            } => {
                self.neighbors.forget_node(dst);
                self.routes.remove_via(dst);
                self.host_table.remove(&dst);
                if self.gateway == Some(dst) && self.role == GridRole::Member {
                    self.pending_own.push((*final_dst, *packet));
                    self.start_election(ctx);
                    return;
                }
                if self.role == GridRole::Gateway && *ttl > 0 {
                    let retry = GridMsg::Data {
                        packet: *packet,
                        src: *src,
                        dst: *final_dst,
                        via_grid: self.my_grid,
                        ttl: ttl - 1,
                    };
                    self.route_data(ctx, retry);
                } else {
                    self.stats.data_dropped += 1;
                }
            }
            GridMsg::Rrep(r) => {
                self.routes.remove(r.src);
                self.neighbors.forget_node(dst);
            }
            _ => {}
        }
    }
}
