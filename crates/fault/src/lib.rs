//! Deterministic, schedule-driven fault injection.
//!
//! A [`FaultPlan`] describes *what* adversity a run is subjected to —
//! probabilistic and burst (Gilbert–Elliott) frame loss on the data
//! channel, RAS page loss and delay, node crash/rejoin churn, battery
//! capacity variance and sudden drains, GPS position error.  A
//! [`FaultCtl`] is the runtime that answers the world's point queries
//! ("is this reception lost?", "when does host 7 crash next?").
//!
//! ## Determinism contract
//!
//! Every decision is a pure function of `(plan.seed, knob, node, virtual
//! time / event key)`, computed by hashing the tuple into a
//! [`SplitMix64`] draw.  No shared RNG stream is consumed: enabling a
//! fault knob never perturbs the draws any *other* subsystem (MAC
//! backoff, mobility, protocol jitter) sees, and a plan whose knobs are
//! all zero performs **no draws at all** — runs with such a plan are
//! bit-identical to runs without the fault layer (the golden-trace
//! fixtures hold this to account).  The one piece of retained state, the
//! per-node Gilbert–Elliott chain, advances one fixed slot at a time with
//! slot-keyed draws, so its state at slot `k` is also a pure function of
//! `(seed, node, k)` regardless of when or how often it is queried.

use sim_engine::{derive_seed, SplitMix64};

/// Gilbert–Elliott slot length: the channel's burst structure is piecewise
/// constant over 100 ms slots (a fade at pedestrian speeds spans many
/// frames, which is exactly the burstiness the two-state model captures).
pub const GE_SLOT_NS: u64 = 100_000_000;

/// Two-state Markov (Gilbert–Elliott) burst-loss channel parameters.
///
/// The chain sits in a *good* or *bad* state; each slot it moves
/// good→bad with `p_gb` and bad→good with `p_bg`.  Receptions are lost
/// with `loss_good` / `loss_bad` depending on the current state.  The
/// stationary loss rate is
/// `p_bg/(p_gb+p_bg) · loss_good + p_gb/(p_gb+p_bg) · loss_bad`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// P(good → bad) per slot.
    pub p_gb: f64,
    /// P(bad → good) per slot.
    pub p_bg: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Long-run fraction of time spent in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        }
    }

    /// Long-run loss rate the chain converges to.
    pub fn stationary_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        (1.0 - pb) * self.loss_good + pb * self.loss_bad
    }
}

/// A complete fault schedule for one run.  All-zero (the [`Default`]) is
/// the clean channel: provably zero-impact (see module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault layer's own draw space.  Changing it re-rolls
    /// *where* faults land without touching any other subsystem.  A
    /// nonzero seed with all-zero knobs is still perfectly clean.
    pub seed: u64,
    /// Independent per-reception frame-loss probability on the data
    /// channel (applied after collision resolution).
    pub loss: f64,
    /// Optional burst-loss overlay; composes with `loss` as independent
    /// loss processes.
    pub ge: Option<GilbertElliott>,
    /// Probability that a RAS page fails to reach an addressed host.
    pub page_fail: f64,
    /// Maximum extra paging-channel delay in milliseconds (uniform in
    /// `[0, max]`, drawn per page).
    pub page_delay_max_ms: f64,
    /// Node crash rate: expected crashes per node per second (exponential
    /// gaps).  A crashed host is silent — no retire, no handover.
    pub churn_rate: f64,
    /// Downtime of a crashed host before it reboots and rejoins, seconds.
    pub rejoin_secs: f64,
    /// Battery capacity variance: each finite battery's capacity is scaled
    /// by a factor uniform in `[1-var, 1+var]`.
    pub battery_var: f64,
    /// Sudden-drain rate: expected drain events per node per second.
    pub drain_rate: f64,
    /// Fraction of the *remaining* energy lost per sudden-drain event.
    pub drain_frac: f64,
    /// GPS position error: each host's advertised position is offset by a
    /// vector of magnitude uniform in `[0, err]` meters, re-rolled once
    /// per second.
    pub gps_error_m: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The clean channel: no faults whatsoever.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss: 0.0,
            ge: None,
            page_fail: 0.0,
            page_delay_max_ms: 0.0,
            churn_rate: 0.0,
            rejoin_secs: 10.0,
            battery_var: 0.0,
            drain_rate: 0.0,
            drain_frac: 0.5,
            gps_error_m: 0.0,
        }
    }

    /// Does any knob actually inject faults?  (`seed` and the shape
    /// parameters `rejoin_secs`/`drain_frac` alone do nothing.)
    pub fn is_active(&self) -> bool {
        self.loss > 0.0
            || self.ge.is_some()
            || self.page_fail > 0.0
            || self.page_delay_max_ms > 0.0
            || self.churn_rate > 0.0
            || self.battery_var > 0.0
            || self.drain_rate > 0.0
            || self.gps_error_m > 0.0
    }

    /// Re-seed the plan (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parse the `run_one --faults` syntax: comma-separated `key=value`
    /// pairs.
    ///
    /// | key           | meaning                                   |
    /// |---------------|-------------------------------------------|
    /// | `loss`        | per-reception frame-loss probability      |
    /// | `ge`          | burst loss `p_gb/p_bg/loss_bad` (good state is clean) |
    /// | `page_fail`   | RAS page loss probability                 |
    /// | `page_delay`  | max extra page delay, ms                  |
    /// | `churn`       | crashes per node per second               |
    /// | `rejoin`      | downtime before rejoin, s                 |
    /// | `battery_var` | capacity variance fraction                |
    /// | `drain`       | sudden drains per node per second         |
    /// | `drain_frac`  | remaining-energy fraction lost per drain  |
    /// | `gps`         | GPS error radius, m                       |
    /// | `seed`        | fault-layer seed                          |
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let num = |what: &str| -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("fault {what}=`{value}` is not a number"))
            };
            match key {
                "loss" => plan.loss = num(key)?,
                "page_fail" => plan.page_fail = num(key)?,
                "page_delay" => plan.page_delay_max_ms = num(key)?,
                "churn" => plan.churn_rate = num(key)?,
                "rejoin" => plan.rejoin_secs = num(key)?,
                "battery_var" => plan.battery_var = num(key)?,
                "drain" => plan.drain_rate = num(key)?,
                "drain_frac" => plan.drain_frac = num(key)?,
                "gps" => plan.gps_error_m = num(key)?,
                "seed" => {
                    plan.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("fault seed=`{value}` is not an integer"))?
                }
                "ge" => {
                    let fields: Vec<&str> = value.split('/').collect();
                    if fields.len() != 3 {
                        return Err(format!("fault ge=`{value}` wants p_gb/p_bg/loss_bad"));
                    }
                    let f = |i: usize| -> Result<f64, String> {
                        fields[i]
                            .parse::<f64>()
                            .map_err(|_| format!("fault ge field `{}` is not a number", fields[i]))
                    };
                    plan.ge = Some(GilbertElliott {
                        p_gb: f(0)?,
                        p_bg: f(1)?,
                        loss_good: 0.0,
                        loss_bad: f(2)?,
                    });
                }
                other => return Err(format!("unknown fault knob `{other}`")),
            }
        }
        let probs = [
            ("loss", plan.loss),
            ("page_fail", plan.page_fail),
            ("battery_var", plan.battery_var),
            ("drain_frac", plan.drain_frac),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault {name}={p} out of [0, 1]"));
            }
        }
        Ok(plan)
    }
}

/// One stateless draw in `[0, 1)`, keyed by `(seed, knob domain, a, b)`.
#[inline]
fn draw(seed: u64, domain: &str, a: u64, b: u64) -> f64 {
    SplitMix64::new(derive_seed(derive_seed(seed, domain, a), "fault.sub", b)).next_f64()
}

/// Per-node Gilbert–Elliott chain state (see [`GE_SLOT_NS`]).
#[derive(Clone, Copy, Debug)]
struct GeChain {
    /// Slot the chain has been advanced to.
    slot: u64,
    /// Currently in the bad state?
    bad: bool,
}

/// The runtime fault driver: owns the plan plus the per-node burst-chain
/// state.  All methods that *decide* a fault are deterministic point
/// functions (module docs); the world translates decisions into events.
#[derive(Clone, Debug)]
pub struct FaultCtl {
    plan: FaultPlan,
    chains: Vec<GeChain>,
}

impl FaultCtl {
    pub fn new(plan: FaultPlan, n_nodes: usize) -> Self {
        let chains = if plan.ge.is_some() {
            // every chain starts in the good state at slot 0
            vec![GeChain { slot: 0, bad: false }; n_nodes]
        } else {
            Vec::new()
        };
        FaultCtl { plan, chains }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Advance `node`'s burst chain to the slot containing `t_ns` and
    /// return its current loss probability.  One slot-keyed draw per slot
    /// advanced, so the state is query-pattern independent.
    fn ge_loss_prob(&mut self, node: u32, t_ns: u64) -> f64 {
        let Some(ge) = self.plan.ge else { return 0.0 };
        let target = t_ns / GE_SLOT_NS;
        let chain = &mut self.chains[node as usize];
        while chain.slot < target {
            chain.slot += 1;
            let u = draw(self.plan.seed, "ge", node as u64, chain.slot);
            chain.bad = if chain.bad { u >= ge.p_bg } else { u < ge.p_gb };
        }
        if chain.bad {
            ge.loss_bad
        } else {
            ge.loss_good
        }
    }

    /// Is the reception of transmission `tx_id` at `node` lost?  The
    /// independent and burst loss processes compose.
    pub fn frame_lost(&mut self, node: u32, tx_id: u64, t_ns: u64) -> bool {
        let ge_p = if self.plan.ge.is_some() {
            self.ge_loss_prob(node, t_ns)
        } else {
            0.0
        };
        if self.plan.loss <= 0.0 && ge_p <= 0.0 {
            return false;
        }
        let p = 1.0 - (1.0 - self.plan.loss) * (1.0 - ge_p);
        draw(self.plan.seed, "frame", node as u64, tx_id) < p
    }

    /// Does the RAS page arriving at `t_ns` fail to reach `node`?
    pub fn page_lost(&self, node: u32, t_ns: u64) -> bool {
        self.plan.page_fail > 0.0 && draw(self.plan.seed, "page", node as u64, t_ns) < self.plan.page_fail
    }

    /// Extra paging-channel latency for the page transmitted by `node` at
    /// `t_ns`, in nanoseconds (0 when the knob is off).
    pub fn page_extra_delay_ns(&self, node: u32, t_ns: u64) -> u64 {
        if self.plan.page_delay_max_ms <= 0.0 {
            return 0;
        }
        let u = draw(self.plan.seed, "page_delay", node as u64, t_ns);
        (u * self.plan.page_delay_max_ms * 1e6) as u64
    }

    /// Capacity scale factor for `node`'s battery (1.0 when the knob is
    /// off), uniform in `[1-var, 1+var]`, floored away from zero.
    pub fn battery_scale(&self, node: u32) -> f64 {
        if self.plan.battery_var <= 0.0 {
            return 1.0;
        }
        let u = draw(self.plan.seed, "battery", node as u64, 0);
        (1.0 + self.plan.battery_var * (2.0 * u - 1.0)).max(0.05)
    }

    /// Seconds from one crash-schedule reference point to `node`'s `k`-th
    /// crash (exponential gap; `None` when churn is off).
    pub fn crash_gap_secs(&self, node: u32, k: u64) -> Option<f64> {
        exp_gap(self.plan.seed, "crash", self.plan.churn_rate, node, k)
    }

    /// Downtime before a crashed node reboots.
    pub fn rejoin_secs(&self) -> f64 {
        self.plan.rejoin_secs.max(0.001)
    }

    /// Seconds to `node`'s `k`-th sudden-drain event (`None` when off).
    pub fn drain_gap_secs(&self, node: u32, k: u64) -> Option<f64> {
        exp_gap(self.plan.seed, "drain", self.plan.drain_rate, node, k)
    }

    /// Remaining-energy fraction lost per sudden drain.
    pub fn drain_frac(&self) -> f64 {
        self.plan.drain_frac.clamp(0.0, 1.0)
    }

    /// GPS error offset `(dx, dy)` in meters for `node` at `t_ns`,
    /// piecewise constant over 1 s (a consumer-GPS fix rate).
    pub fn gps_offset_m(&self, node: u32, t_ns: u64) -> (f64, f64) {
        if self.plan.gps_error_m <= 0.0 {
            return (0.0, 0.0);
        }
        let slot = t_ns / 1_000_000_000;
        let r = self.plan.gps_error_m * draw(self.plan.seed, "gps_r", node as u64, slot);
        let theta = std::f64::consts::TAU * draw(self.plan.seed, "gps_a", node as u64, slot);
        (r * theta.cos(), r * theta.sin())
    }
}

/// Exponential inter-event gap with `rate` events/s, keyed by
/// `(seed, domain, node, k)`.  Floored at 10 ms so a pathological draw
/// cannot produce a zero-delay event storm.
fn exp_gap(seed: u64, domain: &str, rate: f64, node: u32, k: u64) -> Option<f64> {
    if rate <= 0.0 {
        return None;
    }
    let u = draw(seed, domain, node as u64, k);
    Some((-(1.0 - u).ln() / rate).max(0.01))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_inactive_and_decides_nothing() {
        let mut ctl = FaultCtl::new(FaultPlan::none(), 8);
        assert!(!ctl.is_active());
        for t in [0u64, 1_000_000_000, 77_000_000_000] {
            assert!(!ctl.frame_lost(3, t / 7, t));
            assert!(!ctl.page_lost(3, t));
            assert_eq!(ctl.page_extra_delay_ns(3, t), 0);
            assert_eq!(ctl.gps_offset_m(3, t), (0.0, 0.0));
        }
        assert_eq!(ctl.battery_scale(0), 1.0);
        assert_eq!(ctl.crash_gap_secs(0, 0), None);
        assert_eq!(ctl.drain_gap_secs(0, 0), None);
        // a nonzero seed alone changes nothing
        let seeded = FaultPlan::none().with_seed(999);
        assert!(!seeded.is_active());
    }

    #[test]
    fn decisions_are_pure_functions_of_their_keys() {
        let plan = FaultPlan {
            loss: 0.3,
            page_fail: 0.2,
            page_delay_max_ms: 10.0,
            churn_rate: 0.01,
            gps_error_m: 20.0,
            seed: 42,
            ..FaultPlan::none()
        };
        let a = FaultCtl::new(plan, 4);
        let b = FaultCtl::new(plan, 4);
        for node in 0..4u32 {
            for k in 0..64u64 {
                let t = k * 123_456_789;
                assert_eq!(a.page_lost(node, t), b.page_lost(node, t));
                assert_eq!(a.page_extra_delay_ns(node, t), b.page_extra_delay_ns(node, t));
                assert_eq!(a.gps_offset_m(node, t), b.gps_offset_m(node, t));
                assert_eq!(a.crash_gap_secs(node, k), b.crash_gap_secs(node, k));
            }
        }
        // ...and a different seed re-rolls them
        let c = FaultCtl::new(plan.with_seed(43), 4);
        let mut diff = 0;
        for k in 0..256u64 {
            if a.page_lost(1, k * 1_000_000) != c.page_lost(1, k * 1_000_000) {
                diff += 1;
            }
        }
        assert!(diff > 0, "re-seeding must move the faults");
    }

    #[test]
    fn independent_loss_hits_near_its_probability() {
        let plan = FaultPlan {
            loss: 0.25,
            seed: 7,
            ..FaultPlan::none()
        };
        let mut ctl = FaultCtl::new(plan, 1);
        let n = 100_000;
        let mut lost = 0;
        for tx in 0..n {
            if ctl.frame_lost(0, tx, tx * 1_000_000) {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn gilbert_elliott_stationary_loss_within_two_percent() {
        // π_bad = 0.05/(0.05+0.2) = 0.2; loss = 0.2 · 0.5 = 0.10.
        let ge = GilbertElliott {
            p_gb: 0.05,
            p_bg: 0.2,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        let plan = FaultPlan {
            ge: Some(ge),
            seed: 11,
            ..FaultPlan::none()
        };
        let expected = ge.stationary_loss();
        assert!((expected - 0.10).abs() < 1e-12);
        let mut ctl = FaultCtl::new(plan, 1);
        let draws = 100_000u64;
        let mut lost = 0u64;
        for slot in 0..draws {
            // one reception per slot
            if ctl.frame_lost(0, slot, slot * GE_SLOT_NS) {
                lost += 1;
            }
        }
        let rate = lost as f64 / draws as f64;
        assert!(
            (rate - expected).abs() < 0.02,
            "stationary loss {rate} vs configured {expected}"
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Under the same stationary rate, GE losses must clump: the
        // conditional P(loss at k+1 | loss at k) far exceeds the marginal.
        let plan = FaultPlan {
            ge: Some(GilbertElliott {
                p_gb: 0.05,
                p_bg: 0.2,
                loss_good: 0.0,
                loss_bad: 0.5,
            }),
            seed: 5,
            ..FaultPlan::none()
        };
        let mut ctl = FaultCtl::new(plan, 1);
        let draws = 100_000u64;
        let mut outcomes = Vec::with_capacity(draws as usize);
        for slot in 0..draws {
            outcomes.push(ctl.frame_lost(0, slot, slot * GE_SLOT_NS));
        }
        let marginal = outcomes.iter().filter(|&&x| x).count() as f64 / draws as f64;
        let mut after_loss = 0u64;
        let mut loss_then_loss = 0u64;
        for w in outcomes.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    loss_then_loss += 1;
                }
            }
        }
        let conditional = loss_then_loss as f64 / after_loss as f64;
        assert!(
            conditional > 1.5 * marginal,
            "conditional {conditional} vs marginal {marginal}: not bursty"
        );
    }

    #[test]
    fn chain_state_is_query_pattern_independent() {
        let plan = FaultPlan {
            ge: Some(GilbertElliott {
                p_gb: 0.1,
                p_bg: 0.3,
                loss_good: 0.0,
                loss_bad: 1.0,
            }),
            seed: 3,
            ..FaultPlan::none()
        };
        // dense queries vs one late query must agree on the final state
        let mut dense = FaultCtl::new(plan, 1);
        for slot in 0..5_000u64 {
            dense.ge_loss_prob(0, slot * GE_SLOT_NS);
        }
        let mut sparse = FaultCtl::new(plan, 1);
        let last = 4_999 * GE_SLOT_NS;
        assert_eq!(dense.ge_loss_prob(0, last), sparse.ge_loss_prob(0, last));
    }

    #[test]
    fn crash_gaps_are_exponential_with_the_right_mean() {
        let plan = FaultPlan {
            churn_rate: 0.02, // mean gap 50 s
            seed: 1,
            ..FaultPlan::none()
        };
        let ctl = FaultCtl::new(plan, 64);
        let mut total = 0.0;
        let mut n = 0;
        for node in 0..64u32 {
            for k in 0..100u64 {
                total += ctl.crash_gap_secs(node, k).unwrap();
                n += 1;
            }
        }
        let mean = total / n as f64;
        assert!((mean - 50.0).abs() < 3.0, "mean crash gap {mean}");
    }

    #[test]
    fn battery_scale_spans_the_variance_band() {
        let plan = FaultPlan {
            battery_var: 0.3,
            seed: 9,
            ..FaultPlan::none()
        };
        let ctl = FaultCtl::new(plan, 256);
        let scales: Vec<f64> = (0..256).map(|i| ctl.battery_scale(i)).collect();
        assert!(scales.iter().all(|s| (0.7..=1.3).contains(s)));
        let lo = scales.iter().cloned().fold(f64::MAX, f64::min);
        let hi = scales.iter().cloned().fold(f64::MIN, f64::max);
        assert!(lo < 0.8 && hi > 1.2, "variance band unused: [{lo}, {hi}]");
    }

    #[test]
    fn gps_offsets_are_bounded_and_refresh_per_second() {
        let plan = FaultPlan {
            gps_error_m: 25.0,
            seed: 2,
            ..FaultPlan::none()
        };
        let ctl = FaultCtl::new(plan, 4);
        let (dx, dy) = ctl.gps_offset_m(1, 500_000_000);
        assert!((dx * dx + dy * dy).sqrt() <= 25.0);
        // constant within a second, re-rolled across seconds
        assert_eq!(ctl.gps_offset_m(1, 100_000_000), ctl.gps_offset_m(1, 900_000_000));
        let mut moved = 0;
        for s in 0..32u64 {
            if ctl.gps_offset_m(1, s * 1_000_000_000) != ctl.gps_offset_m(1, (s + 1) * 1_000_000_000) {
                moved += 1;
            }
        }
        assert!(moved > 16);
    }

    #[test]
    fn parse_round_trips_the_cli_syntax() {
        let plan = FaultPlan::parse(
            "loss=0.1, churn=0.01, page_fail=0.05, page_delay=20, rejoin=30, gps=25, seed=7",
        )
        .unwrap();
        assert_eq!(plan.loss, 0.1);
        assert_eq!(plan.churn_rate, 0.01);
        assert_eq!(plan.page_fail, 0.05);
        assert_eq!(plan.page_delay_max_ms, 20.0);
        assert_eq!(plan.rejoin_secs, 30.0);
        assert_eq!(plan.gps_error_m, 25.0);
        assert_eq!(plan.seed, 7);
        assert!(plan.is_active());

        let ge = FaultPlan::parse("ge=0.05/0.2/0.5").unwrap().ge.unwrap();
        assert_eq!(ge.p_gb, 0.05);
        assert_eq!(ge.p_bg, 0.2);
        assert_eq!(ge.loss_bad, 0.5);
        assert_eq!(ge.loss_good, 0.0);

        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert!(FaultPlan::parse("loss=2.0").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("loss").is_err());
        assert!(FaultPlan::parse("ge=0.1/0.2").is_err());
    }
}
