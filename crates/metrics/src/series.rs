//! Sampled time series: alive-host fraction and aen curves.

/// One sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimePoint {
    pub t_secs: f64,
    pub value: f64,
}

/// A time-ordered series of samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<TimePoint>,
}

impl TimeSeries {
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample; time must not go backwards.
    pub fn push(&mut self, t_secs: f64, value: f64) {
        if let Some(last) = self.points.last() {
            assert!(t_secs >= last.t_secs, "series time went backwards");
        }
        self.points.push(TimePoint { t_secs, value });
    }

    #[inline]
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last sampled value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Value at time `t` by step interpolation (last sample at or before
    /// `t`); `None` before the first sample.
    pub fn value_at(&self, t_secs: f64) -> Option<f64> {
        let idx = self.points.partition_point(|p| p.t_secs <= t_secs);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].value)
        }
    }

    /// First time the series drops to or below `threshold`; `None` if it
    /// never does.  (Network-death time = first time alive fraction hits 0.)
    pub fn first_time_at_or_below(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.value <= threshold)
            .map(|p| p.t_secs)
    }

    /// Point-wise mean of several series sampled at identical times
    /// (replica averaging).  Panics if lengths or timestamps differ.
    pub fn mean_of(series: &[TimeSeries]) -> TimeSeries {
        assert!(!series.is_empty());
        let n = series[0].len();
        for s in series {
            assert_eq!(s.len(), n, "replica series length mismatch");
        }
        let mut out = TimeSeries::new();
        for i in 0..n {
            let t = series[0].points[i].t_secs;
            let mut sum = 0.0;
            for s in series {
                debug_assert!((s.points[i].t_secs - t).abs() < 1e-9, "sample time mismatch");
                sum += s.points[i].value;
            }
            out.push(t, sum / series.len() as f64);
        }
        out
    }

    /// Point-wise mean over the *shared prefix* of several series: the
    /// graceful sibling of [`TimeSeries::mean_of`] for supervised sweeps,
    /// where a surviving replica set may mix full-length runs with ones a
    /// watchdog truncated.  Averages the first `min(len)` samples instead
    /// of panicking on a length mismatch; an empty input (or any empty
    /// series) yields an empty series.
    pub fn mean_of_common(series: &[TimeSeries]) -> TimeSeries {
        let Some(n) = series.iter().map(|s| s.len()).min() else {
            return TimeSeries::new();
        };
        let mut out = TimeSeries::new();
        for i in 0..n {
            let t = series[0].points[i].t_secs;
            let mut sum = 0.0;
            for s in series {
                debug_assert!((s.points[i].t_secs - t).abs() < 1e-9, "sample time mismatch");
                sum += s.points[i].value;
            }
            out.push(t, sum / series.len() as f64);
        }
        out
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let s: TimeSeries = [(0.0, 1.0), (10.0, 0.8), (20.0, 0.5)].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.value_at(-1.0), None);
        assert_eq!(s.value_at(0.0), Some(1.0));
        assert_eq!(s.value_at(9.9), Some(1.0));
        assert_eq!(s.value_at(10.0), Some(0.8));
        assert_eq!(s.value_at(100.0), Some(0.5));
        assert_eq!(s.last_value(), Some(0.5));
    }

    #[test]
    fn death_time_detection() {
        let s: TimeSeries = [(0.0, 1.0), (580.0, 0.2), (590.0, 0.0), (600.0, 0.0)]
            .into_iter()
            .collect();
        assert_eq!(s.first_time_at_or_below(0.0), Some(590.0));
        assert_eq!(s.first_time_at_or_below(0.25), Some(580.0));
        assert_eq!(s.first_time_at_or_below(-1.0), None);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn non_monotone_time_panics() {
        let mut s = TimeSeries::new();
        s.push(5.0, 1.0);
        s.push(4.0, 1.0);
    }

    #[test]
    fn ragged_mean_uses_shared_prefix() {
        let a: TimeSeries = [(0.0, 1.0), (1.0, 0.5), (2.0, 0.0)].into_iter().collect();
        let b: TimeSeries = [(0.0, 0.0), (1.0, 1.5)].into_iter().collect();
        let m = TimeSeries::mean_of_common(&[a, b]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.value_at(0.0), Some(0.5));
        assert_eq!(m.value_at(1.0), Some(1.0));
        assert!(TimeSeries::mean_of_common(&[]).is_empty());
    }

    #[test]
    fn replica_mean() {
        let a: TimeSeries = [(0.0, 1.0), (1.0, 0.5)].into_iter().collect();
        let b: TimeSeries = [(0.0, 0.0), (1.0, 1.5)].into_iter().collect();
        let m = TimeSeries::mean_of(&[a, b]);
        assert_eq!(m.points()[0].value, 0.5);
        assert_eq!(m.points()[1].value, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn replica_mean_checks_shape() {
        let a: TimeSeries = [(0.0, 1.0)].into_iter().collect();
        let b: TimeSeries = [(0.0, 1.0), (1.0, 1.0)].into_iter().collect();
        TimeSeries::mean_of(&[a, b]);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.last_value(), None);
        assert_eq!(s.value_at(0.0), None);
        assert_eq!(s.first_time_at_or_below(0.0), None);
    }
}
