//! Small summary-statistics helpers for experiment reports.

/// Arithmetic mean; `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (n-1 denominator); `None` with fewer than two
/// samples.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Percentile by nearest-rank on a *sorted* slice; `q` in `[0, 100]`.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let rank = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(stddev(&[1.0]), None);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.138).abs() < 1e-3);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_percentile_panics() {
        percentile(&[1.0], 101.0);
    }
}
