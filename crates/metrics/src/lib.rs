//! Measurement: time series, packet accounting, and summary statistics —
//! everything needed to regenerate the paper's Figs. 4–8.

pub mod drops;
pub mod ledger;
pub mod series;
pub mod stats;

pub use drops::{DropCounter, DropStats};
pub use ledger::PacketLedger;
pub use series::{TimePoint, TimeSeries};
pub use stats::{mean, percentile, stddev};
