//! Loss accounting for lossy delivery paths.
//!
//! The sweep service's subscriber buffers are bounded: when a consumer
//! falls behind, frames are dropped rather than letting backpressure
//! reach the simulation worker.  Dropping silently would make "I saw
//! every event" an unfalsifiable claim, so every lossy edge carries a
//! [`DropCounter`] — delivered and dropped totals that the service
//! reports per subscriber and in aggregate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Delivered/dropped totals for one lossy edge.  All operations are
/// `Relaxed` atomics: the counter is an accounting side channel shared
/// between producer and consumer threads, not a synchronization point.
#[derive(Debug, Default)]
pub struct DropCounter {
    delivered: AtomicU64,
    dropped: AtomicU64,
}

/// A snapshot of one [`DropCounter`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropStats {
    pub delivered: u64,
    pub dropped: u64,
}

impl DropStats {
    /// Frames the producer offered (delivered + dropped).
    pub fn offered(&self) -> u64 {
        self.delivered + self.dropped
    }

    /// Fraction of offered frames that were dropped (0 when nothing was
    /// offered).
    pub fn loss_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

impl DropCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// One frame made it into the consumer's buffer.
    #[inline]
    pub fn note_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// One frame was dropped because the consumer's buffer was full.
    #[inline]
    pub fn note_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> DropStats {
        DropStats {
            delivered: self.delivered(),
            dropped: self.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_independently() {
        let c = DropCounter::new();
        c.note_delivered();
        c.note_delivered();
        c.note_dropped();
        let s = c.snapshot();
        assert_eq!(
            s,
            DropStats {
                delivered: 2,
                dropped: 1
            }
        );
        assert_eq!(s.offered(), 3);
        assert!((s.loss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_has_zero_loss() {
        let s = DropCounter::new().snapshot();
        assert_eq!(s.offered(), 0);
        assert_eq!(s.loss_rate(), 0.0);
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(DropCounter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.note_delivered();
                }
                c.note_dropped();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.delivered(), 4000);
        assert_eq!(c.dropped(), 4);
    }
}
