//! Per-packet accounting: delivery rate and end-to-end latency.
//!
//! "The packet delivery rate is defined as the number of data packets
//! actually received by the destination, divided by the number of packets
//! issued by the corresponding source host.  The average packet delivery
//! latency is defined as the average time elapsed between packet
//! transmission and reception." (§4C)

use sim_engine::SimTime;
use std::collections::HashMap;

/// Key identifying an application packet: (flow id, sequence number).
pub type PacketKey = (u32, u64);

/// Records every packet issued and delivered during a run.
///
/// ```
/// use metrics::PacketLedger;
/// use sim_engine::SimTime;
///
/// let mut ledger = PacketLedger::new();
/// ledger.record_sent((0, 0), SimTime::from_millis(1000));
/// ledger.record_sent((0, 1), SimTime::from_millis(2000));
/// ledger.record_delivered((0, 0), SimTime::from_millis(1009));
/// assert_eq!(ledger.delivery_rate(), Some(0.5));
/// assert_eq!(ledger.mean_latency_ms(), Some(9.0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PacketLedger {
    sent: HashMap<PacketKey, SimTime>,
    delivered: HashMap<PacketKey, SimTime>,
    duplicates: u64,
}

impl PacketLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a packet leaving its source application.
    pub fn record_sent(&mut self, key: PacketKey, at: SimTime) {
        let prev = self.sent.insert(key, at);
        debug_assert!(prev.is_none(), "packet {key:?} sent twice");
    }

    /// Record a packet arriving at its destination application.  Duplicate
    /// deliveries (retransmission races) count once, at the first arrival.
    pub fn record_delivered(&mut self, key: PacketKey, at: SimTime) {
        debug_assert!(self.sent.contains_key(&key), "delivered unsent packet {key:?}");
        match self.delivered.get(&key) {
            Some(&prev) => {
                self.duplicates += 1;
                // keep the earliest delivery time
                if at < prev {
                    self.delivered.insert(key, at);
                }
            }
            None => {
                self.delivered.insert(key, at);
            }
        }
    }

    #[inline]
    pub fn sent_count(&self) -> u64 {
        self.sent.len() as u64
    }

    #[inline]
    pub fn delivered_count(&self) -> u64 {
        self.delivered.len() as u64
    }

    #[inline]
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Packet delivery rate in `[0, 1]`; `None` when nothing was sent.
    pub fn delivery_rate(&self) -> Option<f64> {
        (self.sent_count() > 0).then(|| self.delivered_count() as f64 / self.sent_count() as f64)
    }

    /// Per-packet latencies in milliseconds (delivered packets only).
    pub fn latencies_ms(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .delivered
            .iter()
            .map(|(key, &recv)| {
                let sent = self.sent[key];
                recv.since(sent).as_millis_f64()
            })
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Mean end-to-end latency in milliseconds; `None` with no deliveries.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        let lat = self.latencies_ms();
        (!lat.is_empty()).then(|| lat.iter().sum::<f64>() / lat.len() as f64)
    }

    /// Packets sent but never delivered.
    pub fn lost_keys(&self) -> Vec<PacketKey> {
        let mut v: Vec<PacketKey> = self
            .sent
            .keys()
            .filter(|k| !self.delivered.contains_key(*k))
            .copied()
            .collect();
        v.sort();
        v
    }

    /// `(flow, sent, delivered)` per flow id, ascending — the scenario
    /// runner folds these into per-group delivery rates.
    pub fn per_flow(&self) -> Vec<(u32, u64, u64)> {
        let mut map: HashMap<u32, (u64, u64)> = HashMap::new();
        for key in self.sent.keys() {
            map.entry(key.0).or_default().0 += 1;
        }
        for key in self.delivered.keys() {
            map.entry(key.0).or_default().1 += 1;
        }
        let mut v: Vec<(u32, u64, u64)> = map.into_iter().map(|(f, (s, d))| (f, s, d)).collect();
        v.sort_unstable();
        v
    }

    /// Restrict accounting to packets sent strictly before `cutoff` —
    /// the paper compares delivery quality at simulation time 590 s
    /// "since the network hosts that run GRID exhaust all their energy"
    /// then.
    pub fn before(&self, cutoff: SimTime) -> PacketLedger {
        let sent: HashMap<PacketKey, SimTime> = self
            .sent
            .iter()
            .filter(|(_, &t)| t < cutoff)
            .map(|(k, &t)| (*k, t))
            .collect();
        let delivered = self
            .delivered
            .iter()
            .filter(|(k, _)| sent.contains_key(*k))
            .map(|(k, &t)| (*k, t))
            .collect();
        PacketLedger {
            sent,
            delivered,
            duplicates: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pdr_and_latency() {
        let mut l = PacketLedger::new();
        l.record_sent((0, 0), t(1000));
        l.record_sent((0, 1), t(2000));
        l.record_sent((1, 0), t(2500));
        l.record_delivered((0, 0), t(1008));
        l.record_delivered((0, 1), t(2012));
        assert_eq!(l.sent_count(), 3);
        assert_eq!(l.delivered_count(), 2);
        assert!((l.delivery_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((l.mean_latency_ms().unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(l.lost_keys(), vec![(1, 0)]);
    }

    #[test]
    fn duplicates_count_once_at_first_arrival() {
        let mut l = PacketLedger::new();
        l.record_sent((0, 0), t(0));
        l.record_delivered((0, 0), t(10));
        l.record_delivered((0, 0), t(15));
        assert_eq!(l.delivered_count(), 1);
        assert_eq!(l.duplicate_count(), 1);
        assert!((l.mean_latency_ms().unwrap() - 10.0).abs() < 1e-9);
        // an even earlier duplicate (out-of-order race) keeps the earliest
        l.record_delivered((0, 0), t(5));
        assert!((l.mean_latency_ms().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_reports_none() {
        let l = PacketLedger::new();
        assert_eq!(l.delivery_rate(), None);
        assert_eq!(l.mean_latency_ms(), None);
        assert!(l.lost_keys().is_empty());
    }

    #[test]
    fn cutoff_restricts_to_early_packets() {
        let mut l = PacketLedger::new();
        l.record_sent((0, 0), t(100));
        l.record_delivered((0, 0), t(110));
        l.record_sent((0, 1), t(700_000)); // after cutoff, lost
        let early = l.before(SimTime::from_secs(590));
        assert_eq!(early.sent_count(), 1);
        assert_eq!(early.delivery_rate(), Some(1.0));
        // full ledger sees the loss
        assert_eq!(l.delivery_rate(), Some(0.5));
    }

    #[test]
    fn latencies_are_sorted() {
        let mut l = PacketLedger::new();
        l.record_sent((0, 0), t(0));
        l.record_sent((0, 1), t(100));
        l.record_delivered((0, 1), t(103));
        l.record_delivered((0, 0), t(9));
        assert_eq!(l.latencies_ms(), vec![3.0, 9.0]);
    }
}
