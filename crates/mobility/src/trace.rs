//! A whole trajectory: consecutive segments covering `[0, horizon]`.

use crate::segment::Segment;
use geo::{crossing_out_of_cell, GridCoord, GridMap, Point2, Vec2};
use sim_engine::{SimDuration, SimTime};

/// Piecewise-linear trajectory.  Segments are contiguous in time and
/// continuous in space; the last segment's end is the trace horizon (the
/// host rests there afterwards).
#[derive(Clone, Debug)]
pub struct MobilityTrace {
    segments: Vec<Segment>,
}

impl MobilityTrace {
    /// Build from contiguous segments.  Panics if the list is empty, not
    /// time-contiguous, or spatially discontinuous.
    pub fn new(segments: Vec<Segment>) -> Self {
        assert!(!segments.is_empty(), "trace needs at least one segment");
        assert_eq!(segments[0].start, SimTime::ZERO, "trace must start at t=0");
        for w in segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must be time-contiguous");
            let gap = w[0].end_position().distance(w[1].from);
            assert!(gap < 1e-6, "segments must be spatially continuous (gap {gap})");
        }
        MobilityTrace { segments }
    }

    /// A host that never moves.
    pub fn stationary(at: Point2, horizon: SimTime) -> Self {
        MobilityTrace::new(vec![Segment::rest(SimTime::ZERO, horizon, at)])
    }

    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    #[inline]
    pub fn horizon(&self) -> SimTime {
        self.segments.last().unwrap().end
    }

    /// Index of the segment active at `t` (the last one for `t` past the
    /// horizon).
    fn segment_index_at(&self, t: SimTime) -> usize {
        // segments are sorted by start; find the last with start <= t
        match self.segments.binary_search_by(|s| s.start.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    #[inline]
    pub fn segment_at(&self, t: SimTime) -> &Segment {
        &self.segments[self.segment_index_at(t)]
    }

    /// Position at any instant (rests at the final position past the
    /// horizon).
    #[inline]
    pub fn position_at(&self, t: SimTime) -> Point2 {
        self.segment_at(t).position_at(t)
    }

    /// Instantaneous velocity at `t` (zero past the horizon).
    #[inline]
    pub fn velocity_at(&self, t: SimTime) -> Vec2 {
        if t >= self.horizon() {
            return Vec2::ZERO;
        }
        self.segment_at(t).velocity
    }

    /// The grid cell occupied at `t`.
    #[inline]
    pub fn cell_at(&self, map: &GridMap, t: SimTime) -> GridCoord {
        map.cell_of(self.position_at(t))
    }

    /// First grid-boundary crossing strictly after `t`: returns the
    /// crossing instant and the cell being entered.  `None` if the host
    /// never changes cell again before the horizon.
    pub fn next_cell_crossing(&self, map: &GridMap, t: SimTime) -> Option<(SimTime, GridCoord)> {
        let start_cell = self.cell_at(map, t);
        let mut idx = self.segment_index_at(t);
        let mut now = t;
        let mut guard = 0u32;
        loop {
            guard += 1;
            if guard > 100_000 {
                // degenerate float configuration (host pinned to a cell
                // boundary); report no crossing rather than spinning
                return None;
            }
            let seg = &self.segments[idx];
            let p = seg.position_at(now);
            if let Some(c) = crossing_out_of_cell(map, p, seg.velocity) {
                let at = now + SimDuration::from_secs_f64(c.dt);
                if at < seg.end {
                    // crossing happens inside this segment
                    if c.next_cell != start_cell {
                        return Some((at, c.next_cell));
                    }
                    // re-entered the starting cell boundary glitch; continue
                    // with guaranteed forward progress
                    now = SimTime(at.as_nanos().max(now.as_nanos() + 1));
                    continue;
                }
            }
            // no crossing within this segment; hop to the next one
            idx += 1;
            if idx >= self.segments.len() {
                return None;
            }
            now = self.segments[idx].start;
            // a waypoint may sit exactly on a boundary: detect cell change
            // at the segment junction itself
            let cell_here = map.cell_of(self.segments[idx].from);
            if cell_here != start_cell {
                return Some((now, cell_here));
            }
        }
    }

    /// The dwell duration the paper's sleepers compute (§3.2): time from
    /// `t` until the host expects to leave its current grid, estimated from
    /// *current* position and velocity only (GPS snapshot), capped at
    /// `horizon_secs`.
    pub fn estimated_dwell(&self, map: &GridMap, t: SimTime, horizon_secs: f64) -> f64 {
        let p = self.position_at(t);
        let v = self.velocity_at(t);
        geo::crossing::dwell_duration(map, p, v, horizon_secs)
    }

    /// Total path length in meters (diagnostic).
    pub fn path_length(&self) -> f64 {
        self.segments.iter().map(|s| s.speed() * s.duration_secs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_leg_trace() -> MobilityTrace {
        // east 100 m at 10 m/s, pause 5 s, north 50 m at 5 m/s
        let s1 = Segment::travel(
            SimTime::ZERO,
            Point2::new(50.0, 50.0),
            Point2::new(150.0, 50.0),
            10.0,
        );
        let s2 = Segment::rest(s1.end, s1.end + SimDuration::from_secs(5), s1.end_position());
        let s3 = Segment::travel(s2.end, s2.from, Point2::new(150.0, 110.0), 5.0);
        MobilityTrace::new(vec![s1, s2, s3])
    }

    #[test]
    fn position_and_velocity_lookup() {
        let tr = two_leg_trace();
        assert_eq!(tr.position_at(SimTime::ZERO), Point2::new(50.0, 50.0));
        let p = tr.position_at(SimTime::from_secs(5));
        assert!((p.x - 100.0).abs() < 1e-6);
        // during the pause
        let p = tr.position_at(SimTime::from_secs(12));
        assert!((p.x - 150.0).abs() < 1e-6);
        assert_eq!(tr.velocity_at(SimTime::from_secs(12)), Vec2::ZERO);
        // past the horizon: rests at final position, zero velocity
        let p = tr.position_at(SimTime::from_secs(1000));
        assert!((p.y - 110.0).abs() < 1e-6);
        assert_eq!(tr.velocity_at(SimTime::from_secs(1000)), Vec2::ZERO);
    }

    #[test]
    fn cell_crossing_during_motion() {
        let tr = two_leg_trace();
        let map = GridMap::paper_default();
        assert_eq!(tr.cell_at(&map, SimTime::ZERO), GridCoord::new(0, 0));
        let (at, cell) = tr.next_cell_crossing(&map, SimTime::ZERO).unwrap();
        assert_eq!(cell, GridCoord::new(1, 0));
        assert!((at.as_secs_f64() - 5.0).abs() < 1e-3, "{at:?}");
    }

    #[test]
    fn cell_crossing_across_pause() {
        let tr = two_leg_trace();
        let map = GridMap::paper_default();
        // after the first crossing (t≈5), host sits at x=150 in cell (1,0)
        // until t=15, then moves north crossing into (1,1) at y=100:
        // 10 s of travel after t=15 → t=25
        let (at1, _) = tr.next_cell_crossing(&map, SimTime::ZERO).unwrap();
        let (at2, cell2) = tr.next_cell_crossing(&map, at1).unwrap();
        assert_eq!(cell2, GridCoord::new(1, 1));
        assert!((at2.as_secs_f64() - 25.0).abs() < 1e-3, "{at2:?}");
        // no further crossings
        assert!(tr.next_cell_crossing(&map, at2).is_none());
    }

    #[test]
    fn stationary_trace_never_crosses() {
        let map = GridMap::paper_default();
        let tr = MobilityTrace::stationary(Point2::new(555.0, 555.0), SimTime::from_secs(100));
        assert!(tr.next_cell_crossing(&map, SimTime::ZERO).is_none());
        assert_eq!(tr.cell_at(&map, SimTime::from_secs(99)), GridCoord::new(5, 5));
        assert_eq!(tr.path_length(), 0.0);
    }

    #[test]
    fn estimated_dwell_uses_instantaneous_velocity() {
        let tr = two_leg_trace();
        let map = GridMap::paper_default();
        // at t=0: 50 m to the boundary at 10 m/s → 5 s
        let d = tr.estimated_dwell(&map, SimTime::ZERO, 300.0);
        assert!((d - 5.0).abs() < 1e-6);
        // during the pause the estimate is the horizon (zero velocity)
        let d = tr.estimated_dwell(&map, SimTime::from_secs(12), 300.0);
        assert_eq!(d, 300.0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_segments_panic() {
        let s1 = Segment::rest(SimTime::ZERO, SimTime::from_secs(5), Point2::ORIGIN);
        let s2 = Segment::rest(SimTime::from_secs(6), SimTime::from_secs(7), Point2::ORIGIN);
        MobilityTrace::new(vec![s1, s2]);
    }

    #[test]
    #[should_panic(expected = "continuous")]
    fn teleporting_segments_panic() {
        let s1 = Segment::rest(SimTime::ZERO, SimTime::from_secs(5), Point2::ORIGIN);
        let s2 = Segment::rest(
            SimTime::from_secs(5),
            SimTime::from_secs(7),
            Point2::new(9.0, 9.0),
        );
        MobilityTrace::new(vec![s1, s2]);
    }

    #[test]
    fn path_length_sums_travel() {
        let tr = two_leg_trace();
        assert!((tr.path_length() - 160.0).abs() < 1e-6);
    }
}
