//! One leg of a piecewise-linear trajectory.

use geo::{Point2, Vec2};
use sim_engine::SimTime;

/// Constant-velocity motion over a half-open time interval
/// `[start, end)`; a pause is a segment with zero velocity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    pub start: SimTime,
    pub end: SimTime,
    pub from: Point2,
    pub velocity: Vec2,
}

impl Segment {
    /// A zero-velocity segment (pause or permanent rest).
    pub fn rest(start: SimTime, end: SimTime, at: Point2) -> Self {
        Segment {
            start,
            end,
            from: at,
            velocity: Vec2::ZERO,
        }
    }

    /// A motion segment from `from` towards `to` at `speed` m/s.
    /// `end` is derived from the travel time.
    pub fn travel(start: SimTime, from: Point2, to: Point2, speed: f64) -> Self {
        assert!(speed > 0.0, "travel requires positive speed");
        let disp = to - from;
        let dist = disp.norm();
        let secs = dist / speed;
        let velocity = if dist == 0.0 {
            Vec2::ZERO
        } else {
            disp * (speed / dist)
        };
        Segment {
            start,
            end: start + sim_engine::SimDuration::from_secs_f64(secs),
            from,
            velocity,
        }
    }

    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Position at `t`, clamped into the segment's interval.
    #[inline]
    pub fn position_at(&self, t: SimTime) -> Point2 {
        let t = t.clamp(self.start, self.end);
        let dt = t.since(self.start).as_secs_f64();
        self.from + self.velocity * dt
    }

    /// Final position of the segment.
    #[inline]
    pub fn end_position(&self) -> Point2 {
        self.position_at(self.end)
    }

    #[inline]
    pub fn duration_secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }

    #[inline]
    pub fn speed(&self) -> f64 {
        self.velocity.norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn travel_segment_geometry() {
        let s = Segment::travel(SimTime::ZERO, Point2::new(0.0, 0.0), Point2::new(30.0, 40.0), 5.0);
        assert!((s.duration_secs() - 10.0).abs() < 1e-9);
        assert!((s.speed() - 5.0).abs() < 1e-9);
        let mid = s.position_at(SimTime::from_secs(5));
        assert!((mid.x - 15.0).abs() < 1e-6 && (mid.y - 20.0).abs() < 1e-6);
        let end = s.end_position();
        assert!((end.x - 30.0).abs() < 1e-6 && (end.y - 40.0).abs() < 1e-6);
    }

    #[test]
    fn position_clamps_outside_interval() {
        let s = Segment::travel(
            SimTime::from_secs(10),
            Point2::ORIGIN,
            Point2::new(10.0, 0.0),
            1.0,
        );
        assert_eq!(s.position_at(SimTime::ZERO), Point2::ORIGIN);
        assert_eq!(s.position_at(SimTime::from_secs(100)).x, 10.0);
    }

    #[test]
    fn rest_segment_never_moves() {
        let p = Point2::new(5.0, 5.0);
        let s = Segment::rest(SimTime::ZERO, SimTime::from_secs(60), p);
        assert_eq!(s.position_at(SimTime::from_secs(30)), p);
        assert_eq!(s.speed(), 0.0);
        assert!(s.contains(SimTime::from_secs(59)));
        assert!(!s.contains(SimTime::from_secs(60)));
    }

    #[test]
    fn zero_distance_travel_is_instant_rest() {
        let p = Point2::new(1.0, 1.0);
        let s = Segment::travel(SimTime::ZERO, p, p, 2.0);
        assert_eq!(s.start, s.end);
        assert_eq!(s.velocity, Vec2::ZERO);
    }
}
