//! Host mobility: the random waypoint model and analytic motion traces.
//!
//! The paper's hosts "move according to the random waypoint model, in which
//! the hosts randomly choose a speed and move to a randomly chosen position.
//! Then the hosts wait at the position for the pause time" (§4).  The two
//! evaluation speed ranges are U(0, 1] m/s and U(0, 10] m/s, with pause
//! times from 0 (constant mobility) to 600 s.
//!
//! Instead of ticking positions, a node's whole trajectory is precomputed
//! as a piecewise-linear [`MobilityTrace`]; positions, velocities and
//! grid-boundary crossing times at any instant are closed-form.  This is
//! both faster than sampling and *exactly* what ECGRID's dwell-timer logic
//! needs (§3.2: sleep until the host expects to leave its grid).

pub mod models;
pub mod segment;
pub mod trace;

pub use models::{
    Convoy, GaussMarkov, HotspotConvergence, ManhattanGrid, MobilityModel, RandomWalk, RandomWaypoint,
    Stationary,
};
pub use segment::Segment;
pub use trace::MobilityTrace;
