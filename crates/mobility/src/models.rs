//! Mobility models that generate [`MobilityTrace`]s.

use crate::segment::Segment;
use crate::trace::MobilityTrace;
use geo::Point2;
use rand::Rng;
use sim_engine::{SimDuration, SimTime};

/// A mobility model builds a full trajectory for one host.
pub trait MobilityModel {
    /// Generate a trace covering at least `[0, horizon]`, deterministic in
    /// the supplied RNG stream.
    fn build_trace<R: Rng>(&self, rng: &mut R, horizon: SimTime) -> MobilityTrace;
}

/// The random waypoint model (§4): pick a uniform destination in the field,
/// travel at a uniform speed in `(0, max_speed]`, pause, repeat.
///
/// ```
/// use mobility::{MobilityModel, RandomWaypoint};
/// use rand::SeedableRng;
/// use sim_engine::SimTime;
///
/// let model = RandomWaypoint::paper(1.0, 0.0); // up to 1 m/s, no pauses
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let trace = model.build_trace(&mut rng, SimTime::from_secs(2000));
/// let p = trace.position_at(SimTime::from_secs(1234));
/// assert!((0.0..=1000.0).contains(&p.x) && (0.0..=1000.0).contains(&p.y));
/// ```
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    pub field_w: f64,
    pub field_h: f64,
    /// Maximum speed in m/s; actual speeds are U(min_speed, max_speed].
    pub max_speed: f64,
    /// Lower speed bound.  The literal paper text is "uniformly distributed
    /// between 0 and v"; a strict 0 lower bound makes the expected leg time
    /// infinite (the classic RWP speed-decay pathology), so the customary
    /// tiny positive floor is applied.
    pub min_speed: f64,
    /// Pause at every waypoint, seconds ("pause time" in Figs. 6–7).
    pub pause_secs: f64,
}

impl RandomWaypoint {
    /// Paper defaults: 1000x1000 m field.
    pub fn paper(max_speed: f64, pause_secs: f64) -> Self {
        RandomWaypoint {
            field_w: 1000.0,
            field_h: 1000.0,
            max_speed,
            min_speed: (0.01 * max_speed).max(1e-3),
            pause_secs,
        }
    }

    fn random_point<R: Rng>(&self, rng: &mut R) -> Point2 {
        Point2::new(
            rng.gen_range(0.0..=self.field_w),
            rng.gen_range(0.0..=self.field_h),
        )
    }
}

impl MobilityModel for RandomWaypoint {
    fn build_trace<R: Rng>(&self, rng: &mut R, horizon: SimTime) -> MobilityTrace {
        assert!(self.max_speed > 0.0 && self.min_speed > 0.0);
        assert!(self.min_speed <= self.max_speed);
        let mut segments = Vec::new();
        let mut now = SimTime::ZERO;
        let mut pos = self.random_point(rng);
        while now < horizon {
            // travel leg
            let dest = self.random_point(rng);
            let speed = rng.gen_range(self.min_speed..=self.max_speed);
            let leg = Segment::travel(now, pos, dest, speed);
            if leg.end > leg.start {
                now = leg.end;
                pos = leg.end_position();
                segments.push(leg);
            }
            // pause leg
            if self.pause_secs > 0.0 && now < horizon {
                let end = now + SimDuration::from_secs_f64(self.pause_secs);
                segments.push(Segment::rest(now, end, pos));
                now = end;
            }
            if segments.len() > 4_000_000 {
                panic!("runaway trace generation");
            }
        }
        if segments.is_empty() {
            return MobilityTrace::stationary(pos, horizon);
        }
        MobilityTrace::new(segments)
    }
}

/// A host that never moves (placed uniformly at random).
#[derive(Clone, Debug)]
pub struct Stationary {
    pub field_w: f64,
    pub field_h: f64,
}

impl MobilityModel for Stationary {
    fn build_trace<R: Rng>(&self, rng: &mut R, horizon: SimTime) -> MobilityTrace {
        let p = Point2::new(
            rng.gen_range(0.0..=self.field_w),
            rng.gen_range(0.0..=self.field_h),
        );
        MobilityTrace::stationary(p, horizon)
    }
}

/// A simple random-walk model (extension beyond the paper): fixed-length
/// epochs with a fresh uniform direction and speed each epoch, reflecting
/// off field edges by re-targeting the walk into the field.
#[derive(Clone, Debug)]
pub struct RandomWalk {
    pub field_w: f64,
    pub field_h: f64,
    pub max_speed: f64,
    pub epoch_secs: f64,
}

impl MobilityModel for RandomWalk {
    fn build_trace<R: Rng>(&self, rng: &mut R, horizon: SimTime) -> MobilityTrace {
        assert!(self.max_speed > 0.0 && self.epoch_secs > 0.0);
        let mut segments = Vec::new();
        let mut now = SimTime::ZERO;
        let mut pos = Point2::new(
            rng.gen_range(0.0..=self.field_w),
            rng.gen_range(0.0..=self.field_h),
        );
        while now < horizon {
            let speed = rng.gen_range(0.1 * self.max_speed..=self.max_speed);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let step = speed * self.epoch_secs;
            // clamp target into the field: walk toward the clamped point
            let target = Point2::new(pos.x + step * theta.cos(), pos.y + step * theta.sin())
                .clamp_to(self.field_w, self.field_h);
            if target.distance(pos) < 1e-9 {
                let end = now + SimDuration::from_secs_f64(self.epoch_secs);
                segments.push(Segment::rest(now, end, pos));
                now = end;
                continue;
            }
            let leg = Segment::travel(now, pos, target, speed);
            now = leg.end;
            pos = leg.end_position();
            segments.push(leg);
        }
        MobilityTrace::new(segments)
    }
}

/// Gauss–Markov mobility (extension beyond the paper): speed and heading
/// evolve as first-order autoregressive processes, giving smooth,
/// temporally-correlated motion without random waypoint's well-known
/// speed-decay and density-concentration pathologies.  `alpha` tunes the
/// memory: 1 = straight-line cruise, 0 = memoryless jitter.
#[derive(Clone, Debug)]
pub struct GaussMarkov {
    pub field_w: f64,
    pub field_h: f64,
    /// Long-run mean speed, m/s.
    pub mean_speed: f64,
    /// Memory parameter in [0, 1].
    pub alpha: f64,
    /// Update period, seconds (one segment per epoch).
    pub epoch_secs: f64,
}

impl GaussMarkov {
    pub fn paper_field(mean_speed: f64) -> Self {
        GaussMarkov {
            field_w: 1000.0,
            field_h: 1000.0,
            mean_speed,
            alpha: 0.85,
            epoch_secs: 5.0,
        }
    }
}

impl MobilityModel for GaussMarkov {
    fn build_trace<R: Rng>(&self, rng: &mut R, horizon: SimTime) -> MobilityTrace {
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0,1]");
        assert!(self.mean_speed > 0.0 && self.epoch_secs > 0.0);
        let a = self.alpha;
        let noise = (1.0 - a * a).sqrt();
        let mut segments = Vec::new();
        let mut now = SimTime::ZERO;
        let mut pos = Point2::new(
            rng.gen_range(0.0..=self.field_w),
            rng.gen_range(0.0..=self.field_h),
        );
        let mut speed = self.mean_speed;
        let mut heading = rng.gen_range(0.0..std::f64::consts::TAU);
        // mean heading drifts toward the field center near edges so hosts
        // reflect smoothly instead of sticking to walls
        while now < horizon {
            // AR(1) updates (gaussian noise via Box-Muller from two uniforms)
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
            let g1 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let g2 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).sin();
            speed = a * speed + (1.0 - a) * self.mean_speed + noise * (self.mean_speed * 0.3) * g1;
            speed = speed.clamp(0.05 * self.mean_speed, 3.0 * self.mean_speed);
            let edge_margin = 0.1 * self.field_w.min(self.field_h);
            let mean_heading = if pos.x < edge_margin
                || pos.y < edge_margin
                || pos.x > self.field_w - edge_margin
                || pos.y > self.field_h - edge_margin
            {
                // aim at the center
                (self.field_h / 2.0 - pos.y).atan2(self.field_w / 2.0 - pos.x)
            } else {
                heading
            };
            heading = a * heading + (1.0 - a) * mean_heading + noise * 0.4 * g2;

            let step = speed * self.epoch_secs;
            let target = Point2::new(pos.x + step * heading.cos(), pos.y + step * heading.sin())
                .clamp_to(self.field_w, self.field_h);
            if target.distance(pos) < 1e-9 {
                let end = now + SimDuration::from_secs_f64(self.epoch_secs);
                segments.push(Segment::rest(now, end, pos));
                now = end;
                continue;
            }
            let leg = Segment::travel(now, pos, target, speed);
            now = leg.end;
            pos = leg.end_position();
            segments.push(leg);
        }
        MobilityTrace::new(segments)
    }
}

/// Manhattan-grid street mobility (urban extension): motion is constrained
/// to a street lattice with `block_m` spacing.  A host starts at a random
/// intersection and repeatedly travels one block along a street at a
/// uniform speed, preferring not to reverse at intersections (the classic
/// straight-bias variant), optionally pausing at each intersection.
#[derive(Clone, Debug)]
pub struct ManhattanGrid {
    pub field_w: f64,
    pub field_h: f64,
    /// Street spacing in meters.
    pub block_m: f64,
    pub max_speed: f64,
    pub min_speed: f64,
    /// Pause at every intersection, seconds.
    pub pause_secs: f64,
}

impl ManhattanGrid {
    /// Paper-field lattice (1000×1000 m) with `block_m` streets.
    pub fn paper(max_speed: f64, pause_secs: f64, block_m: f64) -> Self {
        ManhattanGrid {
            field_w: 1000.0,
            field_h: 1000.0,
            block_m,
            max_speed,
            min_speed: (0.01 * max_speed).max(1e-3),
            pause_secs,
        }
    }
}

impl MobilityModel for ManhattanGrid {
    fn build_trace<R: Rng>(&self, rng: &mut R, horizon: SimTime) -> MobilityTrace {
        assert!(self.max_speed > 0.0 && self.block_m > 0.0);
        // intersections at (i·block, j·block), clamped inside the field
        let nx = (self.field_w / self.block_m).floor() as i64 + 1;
        let ny = (self.field_h / self.block_m).floor() as i64 + 1;
        let (mut ix, mut iy) = (rng.gen_range(0..nx), rng.gen_range(0..ny));
        let point = |ix: i64, iy: i64| Point2::new(ix as f64 * self.block_m, iy as f64 * self.block_m);
        let mut segments = Vec::new();
        let mut now = SimTime::ZERO;
        let mut pos = point(ix, iy);
        // (dx, dy) of the previous block, to bias against U-turns
        let mut prev: Option<(i64, i64)> = None;
        while now < horizon {
            let mut dirs: Vec<(i64, i64)> = [(1, 0), (-1, 0), (0, 1), (0, -1)]
                .into_iter()
                .filter(|(dx, dy)| (0..nx).contains(&(ix + dx)) && (0..ny).contains(&(iy + dy)))
                .collect();
            if let Some((px, py)) = prev {
                if dirs.len() > 1 {
                    dirs.retain(|&(dx, dy)| (dx, dy) != (-px, -py));
                }
            }
            let (dx, dy) = dirs[rng.gen_range(0..dirs.len())];
            ix += dx;
            iy += dy;
            prev = Some((dx, dy));
            let dest = point(ix, iy);
            let speed = rng.gen_range(self.min_speed..=self.max_speed);
            let leg = Segment::travel(now, pos, dest, speed);
            now = leg.end;
            pos = leg.end_position();
            segments.push(leg);
            if self.pause_secs > 0.0 && now < horizon {
                let end = now + SimDuration::from_secs_f64(self.pause_secs);
                segments.push(Segment::rest(now, end, pos));
                now = end;
            }
            if segments.len() > 4_000_000 {
                panic!("runaway trace generation");
            }
        }
        MobilityTrace::new(segments)
    }
}

/// Reference-point group (convoy) mobility: the whole group follows one
/// shared reference trajectory, and each member random-walks an offset
/// within `group_radius_m` of the moving reference point.  The reference
/// trace is built once per group (from a group-level RNG stream) and
/// shared by every member's model; the per-member RNG only drives the
/// offset jitter, so members stay clustered for the entire run.
#[derive(Clone, Debug)]
pub struct Convoy {
    /// The group's shared reference trajectory.
    pub reference: MobilityTrace,
    pub field_w: f64,
    pub field_h: f64,
    /// Maximum member distance from the reference point.
    pub group_radius_m: f64,
    /// Offset re-sampling period, seconds.
    pub epoch_secs: f64,
}

impl Convoy {
    pub fn around(reference: MobilityTrace, field_w: f64, field_h: f64, group_radius_m: f64) -> Self {
        Convoy {
            reference,
            field_w,
            field_h,
            group_radius_m,
            epoch_secs: 10.0,
        }
    }
}

impl MobilityModel for Convoy {
    fn build_trace<R: Rng>(&self, rng: &mut R, horizon: SimTime) -> MobilityTrace {
        assert!(self.group_radius_m > 0.0 && self.epoch_secs > 0.0);
        let r = self.group_radius_m;
        // persistent offset random-walking inside the group disc
        let mut off = (rng.gen_range(-r..=r) * 0.5, rng.gen_range(-r..=r) * 0.5);
        let mut segments = Vec::new();
        let mut now = SimTime::ZERO;
        let mut pos = sum_clamped(self.reference.position_at(now), off, self.field_w, self.field_h);
        while now < horizon {
            let end = now + SimDuration::from_secs_f64(self.epoch_secs);
            off.0 = (off.0 + rng.gen_range(-r..=r) * 0.4).clamp(-r, r);
            off.1 = (off.1 + rng.gen_range(-r..=r) * 0.4).clamp(-r, r);
            let target = sum_clamped(self.reference.position_at(end), off, self.field_w, self.field_h);
            let dist = target.distance(pos);
            if dist < 1e-9 {
                segments.push(Segment::rest(now, end, pos));
            } else {
                segments.push(Segment::travel(now, pos, target, dist / self.epoch_secs));
            }
            now = end;
            pos = target;
        }
        MobilityTrace::new(segments)
    }
}

fn sum_clamped(p: Point2, off: (f64, f64), w: f64, h: f64) -> Point2 {
    Point2::new(p.x + off.0, p.y + off.1).clamp_to(w, h)
}

/// Disaster-relief hotspot convergence: hosts repeatedly travel to one of
/// a small set of shared attraction points (incident sites), dwell there,
/// and move on.  The hotspot set is a property of the scenario (built
/// once per group from a group-level RNG stream); the per-member RNG
/// picks which hotspot, the approach point, and the travel speed.
#[derive(Clone, Debug)]
pub struct HotspotConvergence {
    pub field_w: f64,
    pub field_h: f64,
    /// Shared attraction points.
    pub spots: Vec<Point2>,
    pub max_speed: f64,
    pub min_speed: f64,
    /// Dwell time at each hotspot, seconds.
    pub dwell_secs: f64,
    /// Hosts stop within this radius of the hotspot center, so a crowd
    /// spreads out instead of stacking at one coordinate.
    pub crowd_radius_m: f64,
}

impl HotspotConvergence {
    pub fn new(field_w: f64, field_h: f64, spots: Vec<Point2>, max_speed: f64, dwell_secs: f64) -> Self {
        HotspotConvergence {
            field_w,
            field_h,
            spots,
            max_speed,
            min_speed: (0.01 * max_speed).max(1e-3),
            dwell_secs,
            crowd_radius_m: 25.0,
        }
    }

    /// Draw `n` shared hotspot positions, inset from the field edges.
    pub fn random_spots<R: Rng>(rng: &mut R, field_w: f64, field_h: f64, n: u32) -> Vec<Point2> {
        (0..n)
            .map(|_| {
                Point2::new(
                    rng.gen_range(0.1 * field_w..=0.9 * field_w),
                    rng.gen_range(0.1 * field_h..=0.9 * field_h),
                )
            })
            .collect()
    }
}

impl MobilityModel for HotspotConvergence {
    fn build_trace<R: Rng>(&self, rng: &mut R, horizon: SimTime) -> MobilityTrace {
        assert!(!self.spots.is_empty() && self.max_speed > 0.0 && self.dwell_secs > 0.0);
        let mut segments = Vec::new();
        let mut now = SimTime::ZERO;
        let mut pos = Point2::new(
            rng.gen_range(0.0..=self.field_w),
            rng.gen_range(0.0..=self.field_h),
        );
        while now < horizon {
            let spot = self.spots[rng.gen_range(0..self.spots.len())];
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let rad = rng.gen_range(0.0..=self.crowd_radius_m);
            let dest = Point2::new(spot.x + rad * theta.cos(), spot.y + rad * theta.sin())
                .clamp_to(self.field_w, self.field_h);
            let speed = rng.gen_range(self.min_speed..=self.max_speed);
            let leg = Segment::travel(now, pos, dest, speed);
            if leg.end > leg.start {
                now = leg.end;
                pos = leg.end_position();
                segments.push(leg);
            }
            if now < horizon {
                let end = now + SimDuration::from_secs_f64(self.dwell_secs);
                segments.push(Segment::rest(now, end, pos));
                now = end;
            }
            if segments.len() > 4_000_000 {
                panic!("runaway trace generation");
            }
        }
        if segments.is_empty() {
            return MobilityTrace::stationary(pos, horizon);
        }
        MobilityTrace::new(segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rwp_trace_covers_horizon_and_stays_in_field() {
        let model = RandomWaypoint::paper(10.0, 30.0);
        let horizon = SimTime::from_secs(2000);
        let tr = model.build_trace(&mut rng(7), horizon);
        assert!(tr.horizon() >= horizon);
        for s in [0u64, 100, 500, 999, 1500, 2000] {
            let p = tr.position_at(SimTime::from_secs(s));
            assert!((0.0..=1000.0).contains(&p.x), "{p:?}");
            assert!((0.0..=1000.0).contains(&p.y), "{p:?}");
        }
    }

    #[test]
    fn rwp_is_deterministic_per_seed() {
        let model = RandomWaypoint::paper(1.0, 0.0);
        let a = model.build_trace(&mut rng(42), SimTime::from_secs(500));
        let b = model.build_trace(&mut rng(42), SimTime::from_secs(500));
        assert_eq!(a.segments().len(), b.segments().len());
        for t in [0u64, 100, 250, 499] {
            assert_eq!(
                a.position_at(SimTime::from_secs(t)),
                b.position_at(SimTime::from_secs(t))
            );
        }
        let c = model.build_trace(&mut rng(43), SimTime::from_secs(500));
        assert_ne!(a.position_at(SimTime::ZERO), c.position_at(SimTime::ZERO));
    }

    #[test]
    fn rwp_speed_bounds_hold() {
        let model = RandomWaypoint::paper(10.0, 5.0);
        let tr = model.build_trace(&mut rng(3), SimTime::from_secs(1000));
        for s in tr.segments() {
            let v = s.speed();
            assert!(
                v == 0.0 || (model.min_speed - 1e-9..=10.0 + 1e-9).contains(&v),
                "speed {v}"
            );
        }
    }

    #[test]
    fn rwp_zero_pause_has_no_rest_segments() {
        let model = RandomWaypoint::paper(5.0, 0.0);
        let tr = model.build_trace(&mut rng(11), SimTime::from_secs(300));
        assert!(tr.segments().iter().all(|s| s.speed() > 0.0));
    }

    #[test]
    fn rwp_pause_alternates_rest_and_travel() {
        let model = RandomWaypoint::paper(5.0, 60.0);
        let tr = model.build_trace(&mut rng(11), SimTime::from_secs(600));
        let mut saw_rest = false;
        for w in tr.segments().windows(2) {
            if w[0].speed() > 0.0 && w[1].speed() == 0.0 {
                saw_rest = true;
                assert!((w[1].duration_secs() - 60.0).abs() < 1e-9);
            }
        }
        assert!(saw_rest, "expected pauses in the trace");
    }

    #[test]
    fn stationary_model_rests_forever() {
        let model = Stationary {
            field_w: 100.0,
            field_h: 100.0,
        };
        let tr = model.build_trace(&mut rng(5), SimTime::from_secs(50));
        assert_eq!(tr.path_length(), 0.0);
        assert_eq!(
            tr.position_at(SimTime::ZERO),
            tr.position_at(SimTime::from_secs(50))
        );
    }

    #[test]
    fn random_walk_stays_in_field() {
        let model = RandomWalk {
            field_w: 200.0,
            field_h: 200.0,
            max_speed: 15.0,
            epoch_secs: 10.0,
        };
        let tr = model.build_trace(&mut rng(9), SimTime::from_secs(500));
        for s in 0..=500 {
            let p = tr.position_at(SimTime::from_secs(s));
            let eps = 1e-6; // float round-off at reflecting edges
            assert!(
                (-eps..=200.0 + eps).contains(&p.x) && (-eps..=200.0 + eps).contains(&p.y),
                "{p:?} at {s}"
            );
        }
    }

    #[test]
    fn gauss_markov_stays_in_field_and_moves_smoothly() {
        let model = GaussMarkov::paper_field(5.0);
        let tr = model.build_trace(&mut rng(21), SimTime::from_secs(1000));
        let mut prev = tr.position_at(SimTime::ZERO);
        for s in 1..=1000u64 {
            let p = tr.position_at(SimTime::from_secs(s));
            assert!((-1e-6..=1000.0 + 1e-6).contains(&p.x), "{p:?}");
            assert!((-1e-6..=1000.0 + 1e-6).contains(&p.y), "{p:?}");
            // bounded instantaneous speed (3x mean cap)
            assert!(p.distance(prev) <= 15.0 + 1e-6, "jump {}", p.distance(prev));
            prev = p;
        }
        // it actually roams (not stuck): total path length substantial
        assert!(tr.path_length() > 1000.0, "path {}", tr.path_length());
    }

    #[test]
    fn gauss_markov_heading_is_correlated() {
        // with high alpha, consecutive epochs keep similar direction:
        // net displacement over 60 s should be a large fraction of the
        // path length (unlike a memoryless random walk)
        let model = GaussMarkov {
            alpha: 0.95,
            ..GaussMarkov::paper_field(5.0)
        };
        let tr = model.build_trace(&mut rng(4), SimTime::from_secs(60));
        let a = tr.position_at(SimTime::ZERO);
        let b = tr.position_at(SimTime::from_secs(60));
        let net = a.distance(b);
        let path: f64 = tr
            .segments()
            .iter()
            .filter(|s| s.start < SimTime::from_secs(60))
            .map(|s| s.speed() * s.duration_secs())
            .sum();
        assert!(
            net > 0.35 * path,
            "net {net:.1} of path {path:.1} — too diffusive"
        );
    }

    #[test]
    fn gauss_markov_is_deterministic_per_seed() {
        let model = GaussMarkov::paper_field(3.0);
        let a = model.build_trace(&mut rng(9), SimTime::from_secs(100));
        let b = model.build_trace(&mut rng(9), SimTime::from_secs(100));
        assert_eq!(
            a.position_at(SimTime::from_secs(77)),
            b.position_at(SimTime::from_secs(77))
        );
    }

    #[test]
    fn manhattan_moves_only_along_streets() {
        let model = ManhattanGrid::paper(10.0, 5.0, 100.0);
        let tr = model.build_trace(&mut rng(13), SimTime::from_secs(800));
        for s in tr.segments() {
            let a = s.from;
            let b = s.end_position();
            // every leg is axis-aligned between lattice points
            assert!(
                (a.x - b.x).abs() < 1e-6 || (a.y - b.y).abs() < 1e-6,
                "diagonal leg {a:?} -> {b:?}"
            );
            for p in [a, b] {
                let on_x = (p.x / 100.0 - (p.x / 100.0).round()).abs() < 1e-6;
                let on_y = (p.y / 100.0 - (p.y / 100.0).round()).abs() < 1e-6;
                assert!(on_x && on_y, "off-lattice point {p:?}");
                let eps = 1e-6; // ns-quantized segment ends round off slightly
                assert!((-eps..=1000.0 + eps).contains(&p.x) && (-eps..=1000.0 + eps).contains(&p.y));
            }
        }
    }

    #[test]
    fn manhattan_is_deterministic_per_seed() {
        let model = ManhattanGrid::paper(5.0, 0.0, 125.0);
        let a = model.build_trace(&mut rng(3), SimTime::from_secs(400));
        let b = model.build_trace(&mut rng(3), SimTime::from_secs(400));
        for t in [0u64, 99, 250, 399] {
            assert_eq!(
                a.position_at(SimTime::from_secs(t)),
                b.position_at(SimTime::from_secs(t))
            );
        }
    }

    #[test]
    fn convoy_members_stay_within_the_group_radius() {
        let reference = RandomWaypoint::paper(5.0, 0.0).build_trace(&mut rng(77), SimTime::from_secs(620));
        let model = Convoy::around(reference.clone(), 1000.0, 1000.0, 50.0);
        let member = model.build_trace(&mut rng(8), SimTime::from_secs(600));
        for s in (0..=600).step_by(10) {
            let t = SimTime::from_secs(s);
            let d = member.position_at(t).distance(reference.position_at(t));
            // radius + one epoch of drift while the reference moves
            assert!(
                d <= 50.0 + 5.0 * 10.0 + 1e-6,
                "member {d:.1} m from reference at {s} s"
            );
        }
    }

    #[test]
    fn convoy_members_differ_but_share_the_reference() {
        let reference = RandomWaypoint::paper(2.0, 0.0).build_trace(&mut rng(1), SimTime::from_secs(320));
        let model = Convoy::around(reference, 1000.0, 1000.0, 40.0);
        let a = model.build_trace(&mut rng(10), SimTime::from_secs(300));
        let b = model.build_trace(&mut rng(11), SimTime::from_secs(300));
        let t = SimTime::from_secs(150);
        assert_ne!(a.position_at(t), b.position_at(t));
        // distinct members still cluster: within one diameter of each other
        assert!(a.position_at(t).distance(b.position_at(t)) <= 80.0 + 1e-6);
    }

    #[test]
    fn hotspot_hosts_dwell_near_shared_spots() {
        let spots = HotspotConvergence::random_spots(&mut rng(55), 1000.0, 1000.0, 3);
        let model = HotspotConvergence::new(1000.0, 1000.0, spots.clone(), 10.0, 120.0);
        let tr = model.build_trace(&mut rng(6), SimTime::from_secs(1000));
        // every rest segment sits within the crowd radius of some hotspot
        let mut rests = 0;
        for s in tr.segments() {
            if s.speed() == 0.0 {
                rests += 1;
                let p = s.from;
                let near = spots.iter().any(|q| q.distance(p) <= 25.0 + 1e-6);
                assert!(near, "rest at {p:?} far from every hotspot");
            }
        }
        assert!(rests >= 2, "expected repeated dwells, saw {rests}");
    }

    #[test]
    fn hotspot_is_deterministic_per_seed() {
        let spots = HotspotConvergence::random_spots(&mut rng(2), 500.0, 500.0, 2);
        let model = HotspotConvergence::new(500.0, 500.0, spots, 5.0, 30.0);
        let a = model.build_trace(&mut rng(4), SimTime::from_secs(200));
        let b = model.build_trace(&mut rng(4), SimTime::from_secs(200));
        assert_eq!(
            a.position_at(SimTime::from_secs(123)),
            b.position_at(SimTime::from_secs(123))
        );
    }

    #[test]
    fn mean_speed_roughly_uniform_midpoint() {
        // sanity: time-weighted mean speed of U(0.1, 10] legs is pulled
        // toward the harmonic mean (slow legs last longer) but must stay
        // well above the floor and below the cap
        let model = RandomWaypoint::paper(10.0, 0.0);
        let tr = model.build_trace(&mut rng(1), SimTime::from_secs(2000));
        let travel_time: f64 = tr.segments().iter().map(|s| s.duration_secs()).sum();
        let mean_speed = tr.path_length() / travel_time;
        assert!((0.5..9.0).contains(&mean_speed), "mean speed {mean_speed}");
    }
}
