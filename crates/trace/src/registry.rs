//! Counter / gauge / histogram registry.
//!
//! Names are dotted paths ("mac.tx_started", "app.latency_ms"); storage is
//! `BTreeMap`, so iteration — and therefore any report built from it — is
//! deterministic.  Counters are monotone by construction: the API offers
//! increment only, never decrement or reset.

use std::collections::BTreeMap;

/// A recorded sample distribution with nearest-rank percentiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.  Non-finite samples are rejected (a NaN would
    /// poison every percentile).
    pub fn record(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            self.sorted = true;
        }
    }

    /// Nearest-rank percentile: the smallest sample such that at least
    /// `q` of the distribution is ≤ it.  `q` is clamped to [0, 1];
    /// `None` on an empty histogram.  Monotone in `q` and always bounded
    /// by `min()`/`max()` — properties the test suite enforces.
    pub fn percentile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }
}

/// The registry: named counters, gauges and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a counter (creating it at zero).  Counters only go up.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to its latest observed value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a sample into a histogram (creating it empty).
    pub fn histogram_record(&mut self, name: &str, sample: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// All counters in name order (deterministic).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histogram names in order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(|k| k.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        assert_eq!(r.counter("mac.tx"), 0);
        r.counter_add("mac.tx", 2);
        r.counter_add("mac.tx", 3);
        assert_eq!(r.counter("mac.tx"), 5);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut r = Registry::new();
        r.gauge_set("alive", 1.0);
        r.gauge_set("alive", 0.7);
        assert_eq!(r.gauge("alive"), Some(0.7));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut h = Histogram::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(x);
        }
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(0.5), Some(3.0));
        assert_eq!(h.percentile(1.0), Some(5.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.mean(), Some(3.0));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        h.record(f64::NAN); // rejected
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_iteration_is_name_ordered() {
        let mut r = Registry::new();
        r.counter_add("b", 1);
        r.counter_add("a", 1);
        r.counter_add("c", 1);
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
