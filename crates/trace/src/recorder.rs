//! The event sink: digest always, buffering on request.

use crate::digest::{Fnv64, TraceDigest};
use crate::event::Event;
use crate::profile::SchedProfile;
use std::fmt;
use std::io::{self, Write};
use std::sync::Arc;

/// A live event tap: called with every recorded event, in recording
/// order, from the simulation thread.  Implementations must never block
/// (the sweep service hands events to bounded per-subscriber buffers that
/// drop-and-count on overflow precisely so a slow consumer cannot stall
/// the simulation through this hook).
pub type EventSink = Arc<dyn Fn(&Event) + Send + Sync>;

/// How much a [`Recorder`] keeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// Fold every event into the digest, keep nothing else.  O(1) memory;
    /// this is what the golden-trace regression tests use.
    DigestOnly,
    /// Digest plus an in-memory event buffer for JSONL export and
    /// invariant checking.  A dense 2000 s × 100 host run produces
    /// millions of events — use for focused scenarios and exports.
    Full,
}

/// Collects the event stream of one run.
///
/// The world holds an `Option<Recorder>`; with `None` the emission sites
/// compile down to a branch on a discriminant and construct no event
/// (zero-cost-when-disabled, same discipline as `Ctx::note`).
#[derive(Clone)]
pub struct Recorder {
    digest: Fnv64,
    count: u64,
    buf: Option<Vec<Event>>,
    profile: SchedProfile,
    sink: Option<EventSink>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("digest", &self.digest)
            .field("count", &self.count)
            .field("buf", &self.buf)
            .field("profile", &self.profile)
            .field("sink", &self.sink.as_ref().map(|_| "EventSink"))
            .finish()
    }
}

impl Recorder {
    pub fn new(mode: TraceMode) -> Self {
        Recorder {
            digest: Fnv64::new(),
            count: 0,
            buf: match mode {
                TraceMode::DigestOnly => None,
                TraceMode::Full => Some(Vec::new()),
            },
            profile: SchedProfile::new(),
            sink: None,
        }
    }

    /// Attach a live event tap (the sweep service's streaming hook).  The
    /// sink sees every subsequent event in recording order; it does not
    /// affect the digest, the buffer, or the profile.
    pub fn set_sink(&mut self, sink: EventSink) {
        self.sink = Some(sink);
    }

    #[inline]
    pub fn record(&mut self, ev: Event) {
        ev.fold(&mut self.digest);
        self.count += 1;
        if let Some(buf) = &mut self.buf {
            buf.push(ev);
        }
        if let Some(sink) = &self.sink {
            sink(&ev);
        }
    }

    /// Digest of everything recorded so far.
    pub fn digest(&self) -> TraceDigest {
        TraceDigest(self.digest.finish())
    }

    /// Number of events recorded (buffered or not).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Buffered events (empty in [`TraceMode::DigestOnly`]).
    pub fn events(&self) -> &[Event] {
        self.buf.as_deref().unwrap_or(&[])
    }

    pub fn profile(&self) -> &SchedProfile {
        &self.profile
    }

    pub fn profile_mut(&mut self) -> &mut SchedProfile {
        &mut self.profile
    }

    /// Write the buffered events as JSONL (one object per line) under the
    /// run-wide `protocol` label.  Returns the number of lines written —
    /// zero in digest-only mode, where nothing was buffered.
    pub fn write_jsonl<W: Write>(&self, protocol: &str, w: &mut W) -> io::Result<u64> {
        let mut n = 0;
        for e in self.events() {
            writeln!(w, "{}", e.to_jsonl(protocol))?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use radio::NodeId;
    use sim_engine::SimTime;

    fn ev(ms: u64, seq: u64) -> Event {
        Event {
            t: SimTime::from_millis(ms),
            kind: EventKind::PacketSent {
                src: NodeId(0),
                flow: 0,
                seq,
            },
        }
    }

    #[test]
    fn digest_only_and_full_agree_on_digest() {
        let mut a = Recorder::new(TraceMode::DigestOnly);
        let mut b = Recorder::new(TraceMode::Full);
        for i in 0..100 {
            a.record(ev(i, i));
            b.record(ev(i, i));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.count(), 100);
        assert!(a.events().is_empty());
        assert_eq!(b.events().len(), 100);
    }

    #[test]
    fn digest_depends_on_order_and_content() {
        let mut a = Recorder::new(TraceMode::DigestOnly);
        a.record(ev(1, 1));
        a.record(ev(2, 2));
        let mut b = Recorder::new(TraceMode::DigestOnly);
        b.record(ev(2, 2));
        b.record(ev(1, 1));
        assert_ne!(a.digest(), b.digest());
        let mut c = Recorder::new(TraceMode::DigestOnly);
        c.record(ev(1, 1));
        c.record(ev(2, 3));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut r = Recorder::new(TraceMode::Full);
        r.record(ev(1, 1));
        r.record(ev(2, 2));
        let mut out = Vec::new();
        let n = r.write_jsonl("ECGRID", &mut out).unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
