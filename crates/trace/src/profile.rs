//! Scheduler profiling: what the event loop spent its dispatches on.
//!
//! Profiling data is intentionally **not** part of the trace digest — it
//! describes how the host machine executed the run (queue depths, wall
//! rates), not what the simulated network did, and must never perturb the
//! replay oracle.

/// Per-run scheduler profile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SchedProfile {
    /// (domain name, dispatch count), in first-seen order.  Domains are
    /// the world's event kinds ("mac_try_tx", "timer", …); the set is
    /// small, so a linear scan beats hashing.
    domains: Vec<(&'static str, u64)>,
    /// Total events dispatched.
    pub dispatched: u64,
    /// High-water mark of the pending-event queue.
    pub max_queue_depth: usize,
}

impl SchedProfile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one dispatch under `domain`.
    #[inline]
    pub fn bump(&mut self, domain: &'static str) {
        self.dispatched += 1;
        for d in &mut self.domains {
            if d.0 == domain {
                d.1 += 1;
                return;
            }
        }
        self.domains.push((domain, 1));
    }

    /// Record an observed queue depth (keeps the maximum).
    #[inline]
    pub fn observe_depth(&mut self, depth: usize) {
        if depth > self.max_queue_depth {
            self.max_queue_depth = depth;
        }
    }

    /// Dispatch count of one domain.
    pub fn count(&self, domain: &str) -> u64 {
        self.domains
            .iter()
            .find(|d| d.0 == domain)
            .map(|d| d.1)
            .unwrap_or(0)
    }

    /// All (domain, count) pairs, sorted by descending count then name —
    /// a deterministic order for reports.
    pub fn by_domain(&self) -> Vec<(&'static str, u64)> {
        let mut v = self.domains.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Dispatched events per wall-clock second.
    pub fn events_per_sec(&self, wall_secs: f64) -> f64 {
        if wall_secs > 0.0 {
            self.dispatched as f64 / wall_secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_accumulates_per_domain() {
        let mut p = SchedProfile::new();
        p.bump("timer");
        p.bump("mac_try_tx");
        p.bump("timer");
        assert_eq!(p.dispatched, 3);
        assert_eq!(p.count("timer"), 2);
        assert_eq!(p.count("mac_try_tx"), 1);
        assert_eq!(p.count("unknown"), 0);
        assert_eq!(p.by_domain()[0], ("timer", 2));
    }

    #[test]
    fn depth_keeps_high_water() {
        let mut p = SchedProfile::new();
        p.observe_depth(5);
        p.observe_depth(3);
        p.observe_depth(9);
        assert_eq!(p.max_queue_depth, 9);
    }

    #[test]
    fn rate_is_guarded_against_zero_wall() {
        let mut p = SchedProfile::new();
        p.bump("x");
        assert_eq!(p.events_per_sec(0.0), 0.0);
        assert_eq!(p.events_per_sec(0.5), 2.0);
    }
}
